"""Ablation benches: which SlimIO design decision buys what.

Beyond the paper's tables: each test isolates one design choice from
§4 and asserts the direction of its effect. These are the
"design-choice benches" DESIGN.md calls out.
"""

import dataclasses

import pytest

from repro import LoggingPolicy, SnapshotKind, build_slimio
from repro.bench.report import format_table
from repro.workloads import RedisBenchWorkload


def run_config(scale, snapshot_fraction=None, ops=None, **overrides):
    cfg = scale.system_config(gc_pressure=True,
                              policy=LoggingPolicy.ALWAYS, **overrides)
    system = build_slimio(config=cfg)
    workload = RedisBenchWorkload(
        clients=scale.redis_clients,
        total_ops=ops or max(scale.redis_ops // 2, 2000),
        key_count=scale.redis_keys,
        value_size=scale.redis_value,
        snapshot_at_fraction=snapshot_fraction,
    )
    rep = workload.run(system, warmup_ops=scale.warmup_ops // 2)
    return rep, system


def test_ablation_sqpoll(benchmark, scale):
    """SQPOLL removes submission syscalls: Always-Log latency drops."""

    def body(scale):
        out = {}
        for sqpoll in (True, False):
            rep, system = run_config(scale, sqpoll=sqpoll)
            out[sqpoll] = (rep, system.wal_ring.counters["enter_syscalls"])
            system.stop()
        return out

    out = benchmark.pedantic(body, args=(scale,), iterations=1, rounds=1)
    rep_on, syscalls_on = out[True]
    rep_off, syscalls_off = out[False]
    print()
    print(format_table(
        ["SQPOLL", "RPS", "SET p999 (ms)", "ring syscalls"],
        [["on", rep_on.rps, rep_on.set_p999 * 1e3, syscalls_on],
         ["off", rep_off.rps, rep_off.set_p999 * 1e3, syscalls_off]]))
    assert syscalls_on == 0
    assert syscalls_off > 0
    # syscall savings are small per op but never negative
    assert rep_on.rps >= rep_off.rps * 0.98


def test_ablation_shared_ring(benchmark, scale):
    """Separate SQ/CQ pairs (write isolation) vs one shared ring."""

    def body(scale):
        out = {}
        for shared in (False, True):
            rep, system = run_config(scale, snapshot_fraction=0.5,
                                     shared_ring=shared)
            out[shared] = rep
            system.stop()
        return out

    out = benchmark.pedantic(body, args=(scale,), iterations=1, rounds=1)
    print()
    print(format_table(
        ["Rings", "Avg RPS", "Snap time (ms)", "SET p999 (ms)"],
        [["separate", out[False].rps,
          out[False].mean_snapshot_time * 1e3, out[False].set_p999 * 1e3],
         ["shared", out[True].rps,
          out[True].mean_snapshot_time * 1e3, out[True].set_p999 * 1e3]]))
    # a shared ring couples the snapshot's bulk writes with WAL
    # submissions: snapshots must not get faster, and the combined
    # run must not improve
    assert out[False].mean_snapshot_time <= out[True].mean_snapshot_time * 1.1
    assert out[False].rps >= out[True].rps * 0.95


def test_ablation_fdp_waf(benchmark, scale):
    """FDP lifetime separation is what keeps WAF at exactly 1.0."""

    def body(scale):
        out = {}
        for fdp in (True, False):
            rep, system = run_config(scale, snapshot_fraction=0.3, fdp=fdp)
            out[fdp] = (rep, system.device.ftl.stats.gc_pages_copied)
            system.stop()
        return out

    out = benchmark.pedantic(body, args=(scale,), iterations=1, rounds=1)
    print()
    print(format_table(
        ["Device", "WAF", "GC pages copied", "Avg RPS"],
        [["FDP", out[True][0].waf, out[True][1], out[True][0].rps],
         ["conventional", out[False][0].waf, out[False][1],
          out[False][0].rps]]))
    assert out[True][0].waf == pytest.approx(1.0)
    assert out[True][1] == 0
    assert out[False][0].waf >= out[True][0].waf


def test_ablation_recovery_readahead(benchmark, scale):
    """Recovery read-ahead window sweep (Table 5's mechanism)."""

    def body(scale):
        from repro.bench.experiments import _fill_store, _quiesce

        results = {}
        for window in (1, 8, 64):
            cfg = dataclasses.replace(
                scale.system_config(gc_pressure=False, trigger=False),
                recovery_readahead_pages=window,
            )
            system = build_slimio(config=cfg)
            _fill_store(system, scale.redis_keys, scale.redis_value)
            _quiesce(system)
            proc = system.server.start_snapshot(SnapshotKind.ON_DEMAND)
            system.env.run(until=proc)
            system.crash()
            rec = system.env.run(until=system.env.process(
                system.recover(SnapshotKind.ON_DEMAND)))
            system.stop()
            assert len(rec.data) == scale.redis_keys
            results[window] = rec
        return results

    results = benchmark.pedantic(body, args=(scale,), iterations=1, rounds=1)
    print()
    print(format_table(
        ["Read-ahead (pages)", "Recovery time (ms)", "Throughput (MB/s)"],
        [[w, r.duration * 1e3, r.throughput / 1e6]
         for w, r in sorted(results.items())]))
    # deeper windows overlap more device time with decode CPU
    assert results[64].duration < results[1].duration
