"""Sensitivity sweep (beyond the paper): where does SlimIO's edge move?

Sweeps value size under Always-Log — the paper's two workloads are two
points of this curve (4096 B redis-bench, 2048 B YCSB) — and checks
that SlimIO's relative gain behaves monotonically sensibly: the
fsync-per-write tax it removes is per-operation, so smaller values
(more ops per byte) should benefit at least as much as larger ones.
"""

from repro import LoggingPolicy, build_baseline, build_slimio
from repro.bench.report import format_table
from repro.bench.sweep import sweep
from repro.workloads import ClosedLoopWorkload


def test_value_size_sensitivity(benchmark, scale):
    def runner(params):
        out = {}
        for name, builder in (("baseline", build_baseline),
                              ("slimio", build_slimio)):
            system = builder(config=scale.system_config(
                gc_pressure=False, policy=LoggingPolicy.ALWAYS))
            workload = ClosedLoopWorkload(
                clients=scale.redis_clients,
                total_ops=max(scale.redis_ops // 4, 1500),
                key_count=scale.redis_keys,
                value_size=params["value_size"],
            )
            rep = workload.run(system)
            system.stop()
            out[name] = rep.rps
        return {
            "baseline_rps": out["baseline"],
            "slimio_rps": out["slimio"],
            "gain": out["slimio"] / out["baseline"],
        }

    def body(scale):
        return sweep({"value_size": [512, 2048, 4096]}, runner)

    result = benchmark.pedantic(body, args=(scale,), iterations=1, rounds=1)
    print()
    print(format_table(
        ["value_size", "baseline_rps", "slimio_rps", "gain"],
        [[r["value_size"], r["baseline_rps"], r["slimio_rps"], r["gain"]]
         for r in result.rows]))
    # SlimIO wins at every point of the sweep
    assert all(r["gain"] > 1.0 for r in result.rows)
    # and the best gain is at least as large as the worst by a margin
    gains = [r["gain"] for r in result.rows]
    assert max(gains) >= min(gains)
