"""Regenerates Table 2: FS write-path CPU share of the snapshot process."""

from repro.bench.experiments import table2

from benchmarks.conftest import run_experiment


def test_table2_fs_cpu_share(benchmark, scale):
    run_experiment(benchmark, table2, scale)
