"""Regenerates Figure 4: runtime RPS, baseline vs SlimIO without FDP."""

from repro.bench.experiments import figure4

from benchmarks.conftest import run_experiment


def test_figure4_gc_nosedives(benchmark, scale):
    run_experiment(benchmark, figure4, scale)
