"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures. The
default scale is ``test`` (seconds per experiment); set
``SLIMIO_BENCH_SCALE=bench`` for the fuller runs recorded in
EXPERIMENTS.md.

Every benchmark prints its paper-vs-measured report and asserts that
the paper's *shape* holds (who wins, directions of deltas).
"""

import os

import pytest

from repro.bench.scales import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale(os.environ.get("SLIMIO_BENCH_SCALE", "test"))


def run_experiment(benchmark, fn, scale):
    """Run one experiment under pytest-benchmark and report it."""
    result = benchmark.pedantic(fn, args=(scale,), iterations=1, rounds=1)
    print()
    print(result.format())
    failed = [d for d, ok in result.shape_checks if not ok]
    assert not failed, f"paper-shape checks failed: {failed}"
    return result
