"""Regenerates Table 4: overall evaluation, YCSB-A workload."""

from repro.bench.experiments import table4

from benchmarks.conftest import run_experiment


def test_table4_overall_ycsb(benchmark, scale):
    run_experiment(benchmark, table4, scale)
