"""Regenerates Table 5: recovery time and throughput."""

from repro.bench.experiments import table5

from benchmarks.conftest import run_experiment


def test_table5_recovery(benchmark, scale):
    run_experiment(benchmark, table5, scale)
