"""Regenerates Figure 5: runtime RPS stability with FDP."""

from repro.bench.experiments import figure5

from benchmarks.conftest import run_experiment


def test_figure5_fdp_stability(benchmark, scale):
    run_experiment(benchmark, figure5, scale)
