"""Regenerates Table 3: overall evaluation, redis-benchmark workload."""

from repro.bench.experiments import table3

from benchmarks.conftest import run_experiment


def test_table3_overall_redisbench(benchmark, scale):
    run_experiment(benchmark, table3, scale)
