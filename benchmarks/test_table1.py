"""Regenerates Table 1: snapshot-period degradation on EXT4/F2FS."""

from repro.bench.experiments import table1

from benchmarks.conftest import run_experiment


def test_table1_snapshot_degradation(benchmark, scale):
    run_experiment(benchmark, table1, scale)
