"""Regenerates Figure 2: snapshot time distribution and throughput."""

from repro.bench.experiments import figure2a, figure2b

from benchmarks.conftest import run_experiment


def test_figure2a_time_distribution(benchmark, scale):
    run_experiment(benchmark, figure2a, scale)


def test_figure2b_throughput_analysis(benchmark, scale):
    run_experiment(benchmark, figure2b, scale)
