"""Optional compiled build of the simulation engine.

``repro.sim.engine`` is deliberately plain Python — no metaclasses, no
dynamic attribute tricks on the hot path — so it compiles under
`mypyc <https://mypyc.readthedocs.io/>`_ unchanged. The compiled
extension lands next to ``engine.py`` (``engine.<soabi>.so``), where
the import system prefers it automatically; nothing else in the tree
changes, and deleting the artifact restores the pure-Python engine.

The compiler is strictly optional. Everything here degrades cleanly:

* no mypy/mypyc installed → :func:`build` raises
  :class:`CompilerUnavailable` (the CLI prints why and exits 0 with
  ``--if-available``), imports keep using the pure source;
* ``SLIMIO_NO_COMPILED=1`` → ``repro.sim`` pins the pure-Python
  source into ``sys.modules`` before anything can import a shadowing
  extension — the escape hatch when a stale artifact survives a
  source change;
* :func:`engine_backend` reports which engine actually loaded, and
  the bench perf harness records it next to every measurement.

CLI::

    python -m repro.sim.compiled status            # which backend runs
    python -m repro.sim.compiled build             # compile (hard fail)
    python -m repro.sim.compiled build --if-available
    python -m repro.sim.compiled clean             # drop artifacts
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys
from pathlib import Path

__all__ = [
    "CompilerUnavailable",
    "compiler_available",
    "engine_backend",
    "build",
    "clean",
    "load_pure_engine",
]

_SIM_DIR = Path(__file__).resolve().parent
_ENGINE_SRC = _SIM_DIR / "engine.py"


class CompilerUnavailable(RuntimeError):
    """mypyc (or its mypy substrate) is not importable."""


def compiler_available() -> bool:
    """True when a mypyc toolchain is importable in this interpreter."""
    return (
        importlib.util.find_spec("mypyc") is not None
        and importlib.util.find_spec("mypy") is not None
    )


def artifacts() -> list[Path]:
    """Compiled engine extensions currently shadowing ``engine.py``."""
    return sorted(_SIM_DIR.glob("engine.*.so")) + sorted(
        _SIM_DIR.glob("engine.*.pyd")
    )


def engine_backend() -> str:
    """``"compiled"`` or ``"pure-python"`` for the loaded engine."""
    import repro.sim.engine as eng

    f = getattr(eng, "__file__", "") or ""
    return "compiled" if f.endswith((".so", ".pyd")) else "pure-python"


def load_pure_engine() -> None:
    """Pin the pure-Python engine source into ``sys.modules``.

    Must run before anything imports ``repro.sim.engine``; called from
    ``repro.sim`` when ``SLIMIO_NO_COMPILED`` is set so a stale
    compiled artifact can never shadow fresh source.
    """
    name = "repro.sim.engine"
    mod = sys.modules.get(name)
    if mod is not None:
        f = getattr(mod, "__file__", "") or ""
        if not f.endswith((".so", ".pyd")):
            return
        raise RuntimeError(
            "SLIMIO_NO_COMPILED set after the compiled engine was "
            "already imported; set it before importing repro"
        )
    spec = importlib.util.spec_from_file_location(name, _ENGINE_SRC)
    assert spec is not None and spec.loader is not None
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)


def build(force: bool = False) -> Path:
    """Compile ``engine.py`` with mypyc; returns the artifact path.

    Runs ``python -m mypyc`` in a subprocess with the source tree as
    the working directory so the extension lands inside the package.
    Raises :class:`CompilerUnavailable` when the toolchain is absent
    and :class:`subprocess.CalledProcessError` when compilation fails.
    """
    if not compiler_available():
        raise CompilerUnavailable(
            "mypyc is not installed in this environment; the engine "
            "runs pure-Python (install mypy>=1.0 to enable the "
            "compiled lane)"
        )
    existing = artifacts()
    if existing and not force:
        return existing[0]
    clean()
    src_root = _SIM_DIR.parents[1]  # .../src
    rel = _ENGINE_SRC.relative_to(src_root)
    subprocess.run(
        [sys.executable, "-m", "mypyc", str(rel)],
        cwd=src_root,
        check=True,
    )
    built = artifacts()
    if not built:
        raise RuntimeError(
            "mypyc reported success but produced no engine.*.so "
            f"under {_SIM_DIR}"
        )
    return built[0]


def clean() -> int:
    """Remove compiled engine artifacts; returns how many were removed."""
    removed = 0
    for p in artifacts():
        p.unlink()
        removed += 1
    return removed


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.sim.compiled",
        description=__doc__.split("\n\n")[0],
    )
    sub = ap.add_subparsers(dest="cmd", required=True)
    sub.add_parser("status", help="report the active engine backend")
    b = sub.add_parser("build", help="compile the engine with mypyc")
    b.add_argument("--force", action="store_true",
                   help="rebuild even if an artifact exists")
    b.add_argument("--if-available", action="store_true",
                   help="exit 0 (with a note) when mypyc is missing")
    sub.add_parser("clean", help="remove compiled engine artifacts")
    args = ap.parse_args(argv)

    if args.cmd == "status":
        print(f"engine backend: {engine_backend()}")
        print(f"compiler available: {compiler_available()}")
        for p in artifacts():
            print(f"artifact: {p}")
        return 0
    if args.cmd == "build":
        try:
            out = build(force=args.force)
        except CompilerUnavailable as e:
            print(f"compiled engine skipped: {e}", file=sys.stderr)
            return 0 if args.if_available else 1
        print(f"built {out}")
        return 0
    if args.cmd == "clean":
        print(f"removed {clean()} artifact(s)")
        return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
