"""Lightweight event tracing for simulation debugging.

A :class:`Tracer` collects timestamped records from any component that
chooses to emit them; traces can be filtered by component and rendered
as a merged chronology. The overhead is one list append per record and
nothing at all when disabled, so instrumentation can stay in place.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.sim.engine import Environment

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    t: float
    component: str
    event: str
    detail: Any = None

    def render(self) -> str:
        detail = f" {self.detail}" if self.detail is not None else ""
        return f"[{self.t * 1e3:10.4f} ms] {self.component:12s} {self.event}{detail}"


class Tracer:
    """A per-environment trace buffer.

    With a ``capacity`` the buffer is a ring: overflow evicts the
    *oldest* record, so the tail of the run — where failures usually
    are — is always retained. ``dropped`` counts evictions.
    """

    def __init__(self, env: Environment, enabled: bool = True,
                 capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.enabled = enabled
        self.capacity = capacity
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, component: str, event: str, detail: Any = None) -> None:
        if not self.enabled:
            return
        if (
            self.capacity is not None
            and len(self._records) >= self.capacity
        ):
            self.dropped += 1  # the append below evicts the oldest
        self._records.append(
            TraceRecord(self.env.now, component, event, detail)
        )

    def __len__(self) -> int:
        return len(self._records)

    def records(self, component: str | None = None,
                since: float = 0.0) -> list[TraceRecord]:
        return [
            r for r in self._records
            if (component is None or r.component == component)
            and r.t >= since
        ]

    def components(self) -> set[str]:
        return {r.component for r in self._records}

    def render(self, component: str | None = None, last: int = 0) -> str:
        recs = self.records(component)
        if last:
            recs = recs[-last:]
        return "\n".join(r.render() for r in recs)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0
