"""Core event loop: environment, events, timeouts, processes.

The design follows the classic process-interaction style (as in simpy):

* :class:`Event` — a one-shot occurrence with callbacks and a value.
* :class:`Timeout` — an event scheduled ``delay`` time units ahead.
* :class:`Process` — wraps a generator; each ``yield``ed event suspends
  the process until the event fires, at which point the event's value
  is sent back into the generator (or its exception thrown).
* :class:`Environment` — the clock plus the pending-event heap.

Time is a float. The engine is single-threaded and deterministic:
events scheduled for the same instant fire in FIFO order of scheduling
(stable tiebreak by a monotonically increasing sequence number).

Fast path
---------

The hot loop is tuned for bulk simulation without changing observable
ordering:

* heap entries are 3-tuples ``(when, key, event)`` where ``key`` folds
  the (priority, seq) tiebreak into one integer — less tuple churn per
  schedule/pop;
* :meth:`Environment.timeout` recycles :class:`Timeout` objects from a
  pool once their callbacks have run and no outside reference remains
  (checked via ``sys.getrefcount``, so user-held timeouts — e.g.
  members of an :class:`AnyOf` deadline — are never reused);
* when a process yields an event that is *already processed*,
  :meth:`Process._resume` continues the generator inline instead of
  scheduling a synthetic wake-up event — but only when that is
  provably order-identical to the heap round-trip: the resume must be
  the last callback of the firing event and no other event may be
  scheduled at the current instant (``fast_resume=True``, the
  default; ``fast_resume=False`` keeps the classic round-trip as the
  determinism reference).

Quiescence fast-forward
-----------------------

``fast_forward=True`` arms a second, stricter closed-form lane on top
of the fast path: pure delays are *absorbed* — the clock advances
immediately and the waiting code continues inline — whenever the
engine can prove the heap round-trip would have been a no-op:

* the caller is running in the last callback of the current dispatch
  (``_cb_last``, the same gate the inline resume uses), so no sibling
  callback still expects the old ``now``;
* no event is scheduled at or before the target instant, so nothing
  else could have run in between; and
* the target instant does not overrun the active ``run(until=t)``
  bound, so a time-bounded run still parks exactly where the classic
  lane would.

Every absorbed delay is counted in :attr:`Environment.events_absorbed`
so ``events_processed + events_absorbed`` — the *logical* event total
reported by :func:`tracked_event_total` — is invariant across the
fast-forward axis. :meth:`Environment.idle_wait` extends the same
contract to periodic polling loops: consecutive idle poll ticks whose
predicate provably cannot change (no dispatch can occur before the
next foreign event) collapse into one scheduled wake-up.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from collections.abc import Callable
from sys import getrefcount
from typing import Any

__all__ = [
    "SimulationError",
    "Interrupt",
    "StopProcess",
    "Event",
    "Timeout",
    "Process",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Environment",
    "track_environments",
    "tracked_event_total",
]

#: when enabled (perf harness only), every Environment created registers
#: itself here so a measurement shell can total events_processed across
#: all the environments an experiment builds internally.
_tracked_envs: list["Environment"] | None = None


def track_environments(enable: bool) -> None:
    """Start (or stop) recording every Environment created from now on.

    Measurement hook for :mod:`repro.bench.perf`: an experiment may
    build many systems, each with its own environment; tracking lets
    the harness sum dispatched events without threading a counter
    through every constructor. Disabling clears the list.
    """
    global _tracked_envs
    _tracked_envs = [] if enable else None


def tracked_event_total() -> int:
    """Total logical events executed by environments created while
    tracking: heap dispatches plus closed-form absorptions, so the
    figure is invariant across the fast-forward axis."""
    return sum(
        env.events_processed + env.events_absorbed
        for env in _tracked_envs or ()
    )


class SimulationError(Exception):
    """Raised for misuse of the engine (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised internally to stop a process early with a return value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot event.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, scheduling its callbacks to run at the current
    simulation time. Processes wait on events by ``yield``ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_state", "_defused")

    def __init__(self, env: Environment):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._state = _PENDING
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (valid once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("value of untriggered event")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> Event:
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> Event:
        """Trigger the event with an exception.

        A failed event that nobody waits on raises at the end of the
        run unless :meth:`defused` was set by a waiter.
        """
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._exc = exc
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        if callbacks:
            env = self.env
            if len(callbacks) == 1:
                env._cb_last = True
                callbacks[0](self)
            else:
                # _cb_last gates Process._resume's inline fast path: a
                # resume that is not the final callback must keep the
                # heap round-trip so its siblings run first.
                env._cb_last = False
                for cb in callbacks[:-1]:
                    cb(self)
                env._cb_last = True
                callbacks[-1](self)
        if self._exc is not None and not self._defused:
            raise self._exc

    def __repr__(self) -> str:
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}[
            self._state
        ]
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: Environment, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = _TRIGGERED
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal: starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: Environment, process: Process):
        super().__init__(env)
        self.callbacks.append(process._resume)  # type: ignore[union-attr]
        self._value = None
        self._state = _TRIGGERED
        env._schedule(self, priority=0)


class Process(Event):
    """A running process; also an event that fires when it terminates.

    The wrapped generator yields :class:`Event` instances. When a
    yielded event succeeds, its value is sent into the generator; when
    it fails, the exception is thrown in (and the event is defused, so
    the failure does not crash the run unless it escapes the process).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: Environment,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process is rescheduled immediately; the event it was
        waiting on stays pending (the process may re-wait on it).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume)  # type: ignore[union-attr]
        interrupt_ev.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        # Detach from the event we were waiting for (on interrupt, the
        # original target may still be pending; drop our callback).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        if not self.is_alive:
            return

        env = self.env
        while True:
            env._active = self
            try:
                if event._exc is None:
                    next_ev = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_ev = self._generator.throw(event._exc)
            except StopIteration as stop:
                env._active = None
                self.succeed(stop.value)
                return
            except StopProcess as stop:
                env._active = None
                self._generator.close()
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active = None
                self.fail(exc)
                return
            env._active = None

            if not isinstance(next_ev, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}"
                )
            if next_ev.env is not env:
                raise SimulationError(
                    "yielded event belongs to another environment"
                )
            if next_ev.callbacks is None:
                # Already processed. Continuing the generator inline is
                # order-identical to the classic synthetic wake-up event
                # only when that wake-up would have been the very next
                # thing to run: we are the firing event's last callback
                # and nothing else is scheduled at this instant.
                if (
                    env._fast_resume
                    and env._cb_last
                    and (not env._heap or env._heap[0][0] > env._now)
                ):
                    event = next_ev
                    continue
                # Fallback: resume via the heap at the current time.
                immediate = Event(env)
                immediate.callbacks.append(self._resume)  # type: ignore[union-attr]
                self._target = immediate
                if next_ev._exc is None:
                    immediate.succeed(next_ev._value)
                else:
                    next_ev._defused = True
                    immediate.fail(next_ev._exc)
            else:
                next_ev.callbacks.append(self._resume)
                self._target = next_ev
            return


class ConditionValue:
    """Ordered mapping of event -> value for fired condition members."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events}


class _Condition(Event):
    """Base for AllOf/AnyOf — fires when ``_check`` is satisfied."""

    __slots__ = ("_events", "_fired_count")

    def __init__(self, env: Environment, events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._fired_count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition spans environments")
        # Register after validation so no callbacks dangle on error.
        for ev in self._events:
            if ev.callbacks is None:
                self._on_member(ev)
            else:
                ev.callbacks.append(self._on_member)
        if not self._events and self._state == _PENDING:
            self.succeed(ConditionValue())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _on_member(self, event: Event) -> None:
        if self._state != _PENDING:
            if event._exc is not None:
                event._defused = True
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
            return
        self._fired_count += 1
        if self._satisfied():
            value = ConditionValue()
            for ev in self._events:
                # A Timeout is "triggered" from birth (it is scheduled);
                # only count members whose callbacks have actually run.
                if ev.processed and ev._exc is None:
                    value.events.append(ev)
            self.succeed(value)


class AllOf(_Condition):
    """Fires when every member event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired_count == len(self._events)


class AnyOf(_Condition):
    """Fires when at least one member event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired_count >= 1


# Initialize events (priority 0) must sort before ordinary events
# (priority 1) at the same instant regardless of sequence number; the
# bias folds that two-level tiebreak into a single integer key.
_INIT_BIAS = 1 << 62

#: upper bound on recycled Timeout objects kept per environment
_TIMEOUT_POOL_MAX = 4096


class Environment:
    """The simulation clock and event heap.

    ``fast_resume=True`` (default) enables the order-exact inline
    resume and timeout-recycling fast paths (see module docstring);
    ``fast_resume=False`` runs the classic schedule-everything loop
    and serves as the determinism reference in tests.
    ``fast_forward=True`` additionally arms the quiescence
    fast-forward lane (closed-form delay absorption, see module
    docstring); it composes with either ``fast_resume`` setting.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        fast_resume: bool = True,
        fast_forward: bool = False,
    ):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active: Process | None = None
        self._fast_resume = fast_resume
        self._ff = fast_forward
        self._cb_last = True
        self._until = float("inf")
        self._timeout_pool: list[Timeout] = []
        #: number of heap events dispatched so far (perf accounting)
        self.events_processed = 0
        #: number of events the fast-forward lane absorbed in closed
        #: form (each one a heap dispatch the classic lane would pay)
        self.events_absorbed = 0
        if _tracked_envs is not None:
            _tracked_envs.append(self)

    @property
    def fast_forward(self) -> bool:
        """Whether the quiescence fast-forward lane is armed."""
        return self._ff

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            to = pool.pop()
            to.delay = delay
            to._value = value
            to._exc = None
            to._defused = False
            to.callbacks = []
            to._state = _TRIGGERED
            self._schedule(to, delay=delay)
            return to
        return Timeout(self, delay, value)

    def at(self, when: float, value: Any = None) -> Event:
        """An event that fires at the *absolute* simulation time ``when``.

        Unlike :meth:`timeout`, the firing instant is stored exactly as
        given instead of being recomputed as ``now + delay`` — so two
        code paths that schedule from different "now"s still fire at
        bit-identical instants when they compute ``when`` with the same
        arithmetic. The batched NAND model relies on this to keep its
        closed-form completions byte-identical to the per-page
        realization.
        """
        if when < self._now:
            raise ValueError(f"at({when}) is in the past (now={self._now})")
        ev = Event(self)
        ev._value = value
        ev._state = _TRIGGERED
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (when, seq, ev))
        return ev

    # -- quiescence fast-forward --------------------------------------------
    def ff_advance(self, dt: float) -> bool:
        """Absorb a pure delay in closed form; True if the clock moved.

        Equivalent to dispatching a fresh ``timeout(dt)`` that nothing
        else observes: allowed only when the caller runs in the last
        callback of the current dispatch, no event is scheduled at or
        before ``now + dt`` (strict — a tie would have dispatched
        first), and the target stays within the active ``run(until=t)``
        bound. On success the absorbed dispatch is credited to
        :attr:`events_absorbed`, keeping the logical event total
        lane-invariant.
        """
        if not self._ff or not self._cb_last or dt <= 0:
            return False
        t = self._now + dt
        if t > self._until:
            return False
        heap = self._heap
        if heap and heap[0][0] <= t:
            return False
        self._now = t
        self.events_absorbed += 1
        return True

    def ff_credit(self, events: int) -> None:
        """Record ``events`` heap dispatches replayed in closed form.

        Used by cooperative periodic sources (e.g. the WAL flusher's
        idle-tick absorber) that collapse a run of provably side-effect
        -replayed wake-ups into one scheduled event.
        """
        self.events_absorbed += events

    def ff_absorb_ticks(
        self, interval: float, max_ticks: int = 4096
    ) -> tuple[int, Event | None]:
        """Closed-form run of periodic wake-ups: how many future ticks
        (``now+i, now+2i, ...``) land strictly before the next scheduled
        event and within the run bound, plus the event firing at the
        last of them. Returns ``(0, None)`` when even the first tick
        could be raced by a foreign event (ties lose: an equal-time
        event was scheduled earlier and dispatches first).

        Wake instants accumulate iteratively (``wake += interval``) so
        they stay bit-identical to the tick-by-tick realization. The
        caller owns replaying the per-tick side effects and crediting
        the absorbed dispatches via :meth:`ff_credit`.
        """
        wake = self._now
        horizon = self._heap[0][0] if self._heap else float("inf")
        until = self._until
        k = 0
        while k < max_ticks:
            nxt = wake + interval
            if nxt >= horizon or nxt > until:
                break
            wake = nxt
            k += 1
        if k:
            return k, self.at(wake)
        return 0, None

    def idle_wait(self, interval: float) -> Event:
        """One poll tick that fast-forwards across provably idle ticks.

        Drop-in for ``timeout(interval)`` inside state-polling loops of
        the form ``while pred(): yield env.idle_wait(dt)`` where
        ``pred`` reads only simulation state (never ``env.now``): when
        fast-forward is armed and k consecutive wake-ups would land
        strictly before the next scheduled event, the predicate cannot
        change in between (state only moves on dispatches), so the loop
        wakes once at the k-th tick instead.
        """
        if interval <= 0:
            raise ValueError(f"non-positive poll interval {interval}")
        if not self._ff:
            return self.timeout(interval)
        k, ev = self.ff_absorb_ticks(interval)
        if k > 1:
            # one dispatch (the returned event) stands in for k ticks
            self.events_absorbed += k - 1
            return ev
        if k == 1:
            return ev  # type: ignore[return-value]
        return self.timeout(interval)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap,
            (self._now + delay, seq if priority else seq - _INIT_BIAS, event),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def _recycle(self, event: Event) -> None:
        """Return a spent Timeout to the pool if nothing references it.

        Exactly two references exist when the pop locals are the only
        holders (the caller's variable plus getrefcount's argument), so
        timeouts stashed by user code — deadline members of a
        condition, re-waited timeouts — are never recycled.
        """
        if (
            type(event) is Timeout
            and getrefcount(event) == 3
            and len(self._timeout_pool) < _TIMEOUT_POOL_MAX
        ):
            self._timeout_pool.append(event)

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap:
            raise SimulationError("no more events")
        when, _key, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        event._run_callbacks()
        self._recycle(event)

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until=None`` — run until the heap empties.
        * number — run until the clock reaches that time.
        * :class:`Event` — run until it fires; returns its value.
        """
        heap = self._heap
        pool = self._timeout_pool
        heappop = heapq.heappop
        dispatched = 0
        try:
            if until is None:
                while heap:
                    when, _key, event = heappop(heap)
                    self._now = when
                    dispatched += 1
                    event._run_callbacks()
                    if (
                        type(event) is Timeout
                        and getrefcount(event) == 2
                        and len(pool) < _TIMEOUT_POOL_MAX
                    ):
                        pool.append(event)
                return None
            if isinstance(until, Event):
                sentinel: list[Any] = []
                if until.callbacks is not None:
                    until.callbacks.append(lambda ev: sentinel.append(ev))
                else:
                    sentinel.append(until)
                while not sentinel:
                    if not heap:
                        raise SimulationError(
                            "event heap exhausted before awaited event fired"
                        )
                    when, _key, event = heappop(heap)
                    self._now = when
                    dispatched += 1
                    event._run_callbacks()
                    if (
                        type(event) is Timeout
                        and getrefcount(event) == 2
                        and len(pool) < _TIMEOUT_POOL_MAX
                    ):
                        pool.append(event)
                return until.value
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} is in the past (now={self._now})"
                )
            # the fast-forward lane must not absorb a delay (or replay a
            # periodic tick) past the run bound: the classic lane would
            # have parked there with the wait still pending
            prev_until = self._until
            self._until = stop_at
            try:
                while heap and heap[0][0] <= stop_at:
                    when, _key, event = heappop(heap)
                    self._now = when
                    dispatched += 1
                    event._run_callbacks()
                    if (
                        type(event) is Timeout
                        and getrefcount(event) == 2
                        and len(pool) < _TIMEOUT_POOL_MAX
                    ):
                        pool.append(event)
                self._now = stop_at
            finally:
                self._until = prev_until
            return None
        finally:
            self.events_processed += dispatched
