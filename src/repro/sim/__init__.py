"""Discrete-event simulation engine.

A small, dependency-free simpy-style kernel: an :class:`Environment`
advances a virtual clock over a heap of scheduled events, and
generator-based :class:`Process` objects cooperate by yielding events
(timeouts, locks, queues, other processes).

Everything in the SlimIO reproduction that has a *duration* — NAND page
programs, syscalls, journal commits, fork page copies — is expressed as
events on this engine, so all performance results are deterministic and
machine-independent.
"""

import os as _os

if _os.environ.get("SLIMIO_NO_COMPILED"):
    # escape hatch: force the pure-Python engine source even when a
    # compiled engine.*.so (repro.sim.compiled) shadows it
    from repro.sim.compiled import load_pure_engine as _load_pure

    _load_pure()

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Lock, PriorityResource, Resource, Store
from repro.sim.tracing import TraceRecord, Tracer
from repro.sim.stats import (
    Counter,
    IntervalRate,
    LatencyRecorder,
    TimeSeries,
    TimeWeighted,
    percentile,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Lock",
    "PriorityResource",
    "Resource",
    "Store",
    "Counter",
    "IntervalRate",
    "LatencyRecorder",
    "TimeSeries",
    "TimeWeighted",
    "percentile",
    "Tracer",
    "TraceRecord",
]
