"""Measurement primitives: counters, latencies, time series.

All heavy aggregation (percentiles, binned rates) is vectorized with
numpy per the HPC guides — samples are appended to plain lists during
the run and converted to arrays once at analysis time.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "percentile",
    "Counter",
    "LatencyRecorder",
    "TimeSeries",
    "TimeWeighted",
    "IntervalRate",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """Percentile ``q`` in [0, 100] of ``samples`` (nearest-rank style).

    Returns ``nan`` for an empty sample set rather than raising, so
    reports can render partial runs.
    """
    if len(samples) == 0:
        return float("nan")
    return float(
        np.percentile(np.asarray(samples, dtype=np.float64), q, method="higher")
    )


class Counter:
    """Named monotonically increasing counters (dict with ergonomics)."""

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._counts)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts


class LatencyRecorder:
    """Collects individual latency samples; summarizes with numpy.

    Used for per-request SET/GET latency (p50/p99/p999 in the paper's
    Tables 3-4).
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples: list[float] = []

    def record(self, latency: float) -> None:
        self._samples.append(latency)

    def extend(self, latencies: Sequence[float]) -> None:
        self._samples.extend(latencies)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> np.ndarray:
        return np.asarray(self._samples, dtype=np.float64)

    def mean(self) -> float:
        return float(self.samples.mean()) if self._samples else float("nan")

    def max(self) -> float:
        return float(self.samples.max()) if self._samples else float("nan")

    def p(self, q: float) -> float:
        return percentile(self._samples, q)

    def summary(self) -> dict[str, float]:
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "p50": self.p(50),
            "p99": self.p(99),
            "p999": self.p(99.9),
            "max": self.max(),
        }


class TimeSeries:
    """(time, value) samples, e.g. instantaneous queue depth, memory."""

    def __init__(self, name: str = "series"):
        self.name = name
        self._t: list[float] = []
        self._v: list[float] = []

    def record(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ValueError("TimeSeries timestamps must be non-decreasing")
        self._t.append(t)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v, dtype=np.float64)

    def last(self) -> float:
        return self._v[-1] if self._v else float("nan")

    def max(self) -> float:
        return float(np.max(self.values)) if self._v else float("nan")


class TimeWeighted:
    """Time-weighted statistic of a piecewise-constant signal.

    Tracks mean and peak of a value that changes at discrete instants —
    e.g. resident memory during a run (paper Tables 1, 3, 4 report peak
    and steady memory usage).
    """

    def __init__(self, t0: float = 0.0, value: float = 0.0):
        self._last_t = t0
        self._value = value
        self._area = 0.0
        self._t0 = t0
        self.peak = value

    @property
    def value(self) -> float:
        return self._value

    def update(self, t: float, value: float) -> None:
        if t < self._last_t:
            raise ValueError("time went backwards")
        self._area += self._value * (t - self._last_t)
        self._last_t = t
        self._value = value
        if value > self.peak:
            self.peak = value

    def add(self, t: float, delta: float) -> None:
        self.update(t, self._value + delta)

    def mean(self, t_end: float | None = None) -> float:
        t = self._last_t if t_end is None else t_end
        if t < self._last_t:
            raise ValueError("t_end before last update")
        area = self._area + self._value * (t - self._last_t)
        span = t - self._t0
        return area / span if span > 0 else self._value


class IntervalRate:
    """Event timestamps → binned rate timeline (RPS curves, Figs 4-5).

    ``record`` appends an event time (optionally a weight); ``rate``
    bins them into fixed-width intervals and returns
    (bin_centers, events_per_time_unit).
    """

    def __init__(self, name: str = "rate"):
        self.name = name
        self._t: list[float] = []
        self._w: list[float] = []

    def record(self, t: float, weight: float = 1.0) -> None:
        self._t.append(t)
        self._w.append(weight)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def timestamps(self) -> np.ndarray:
        return np.asarray(self._t, dtype=np.float64)

    @property
    def count(self) -> float:
        return float(np.sum(self._w)) if self._w else 0.0

    def rate(
        self, bin_width: float, t0: float | None = None, t1: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if not self._t:
            return np.array([]), np.array([])
        t = np.asarray(self._t, dtype=np.float64)
        w = np.asarray(self._w, dtype=np.float64)
        lo = t[0] if t0 is None else t0
        hi = t[-1] if t1 is None else t1
        if hi <= lo:
            hi = lo + bin_width
        # Window semantics must match mean_rate's mask (lo <= t <= hi):
        # events outside [lo, hi] are excluded up front, and the last
        # bin edge is pinned at >= hi so an event exactly at hi cannot
        # fall off the histogram to float rounding in the edge grid.
        mask = (t >= lo) & (t <= hi)
        t, w = t[mask], w[mask]
        n_bins = max(1, int(np.ceil((hi - lo) / bin_width - 1e-9)))
        edges = lo + np.arange(n_bins + 1, dtype=np.float64) * bin_width
        edges[-1] = max(edges[-1], hi)
        counts, edges = np.histogram(t, bins=edges, weights=w)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, counts / bin_width

    def mean_rate(self, t0: float | None = None, t1: float | None = None) -> float:
        """Average events per time unit over [t0, t1]."""
        if not self._t:
            return 0.0
        t = np.asarray(self._t, dtype=np.float64)
        w = np.asarray(self._w, dtype=np.float64)
        lo = t[0] if t0 is None else t0
        hi = t[-1] if t1 is None else t1
        mask = (t >= lo) & (t <= hi)
        span = hi - lo
        return float(w[mask].sum() / span) if span > 0 else 0.0
