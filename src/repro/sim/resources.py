"""Shared resources for processes: locks, capacity pools, queues.

These model the contention points in the reproduction:

* :class:`Lock` — the EXT4 journal commit lock, the fork/CoW page lock.
* :class:`Resource` — bounded service slots (e.g. NVMe die occupancy).
* :class:`PriorityResource` — the sync-priority block scheduler, where
  WAL (synchronous) writes overtake queued snapshot writes.
* :class:`Store` — FIFO queues (submission/completion rings, mailboxes).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.sim.engine import _PROCESSED, Environment, Event

__all__ = ["Request", "Release", "Resource", "PriorityResource", "Lock", "Store"]


class Request(Event):
    """Pending acquisition of a resource slot.

    Fires when the slot is granted. Must be paired with
    ``resource.release(request)``. Supports use as a context manager in
    process code::

        req = resource.request()
        yield req
        ...critical section...
        resource.release(req)

    An uncontended request is granted *at birth*: it comes back already
    processed (yielding it resumes the process straight away) without a
    trip through the event heap. Contended requests queue and fire when
    a slot frees, exactly as before. Birth grants are unconditional
    (not gated on ``fast_resume``): burst code in the NAND layer runs
    grant continuations synchronously at creation time, and the grant
    instant must not depend on engine tuning flags.
    """

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: Resource, priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        # Invariant: a non-empty wait queue implies all slots are held
        # (every release immediately re-grants), so a free slot means
        # this request can be granted synchronously.
        if len(resource.users) < resource.capacity and not resource.queue_len:
            resource.users.append(self)
            self._state = _PROCESSED
            self.callbacks = None
        else:
            resource._enqueue(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (e.g. after an Interrupt)."""
        if not self.triggered:
            self.resource._remove(self)


class Release(Event):
    """Immediate event confirming a release.

    Born already processed: nothing ever waits on a release, so it
    skips the heap entirely (yielding one resumes immediately).
    """

    __slots__ = ()

    def __init__(self, env: Environment):
        super().__init__(env)
        self._state = _PROCESSED
        self.callbacks = None


class Resource:
    """A pool of ``capacity`` identical slots with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self._queue: deque[Request] = deque()
        self._release_ev: Release | None = None

    # queue discipline hooks -------------------------------------------------
    def _enqueue(self, request: Request) -> None:
        self._queue.append(request)

    def _dequeue(self) -> Request | None:
        return self._queue.popleft() if self._queue else None

    def _remove(self, request: Request) -> None:
        try:
            self._queue.remove(request)
        except ValueError:
            pass

    # public API --------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self, priority: float = 0.0) -> Request:
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        if request not in self.users:
            raise ValueError("releasing a request that does not hold the resource")
        self.users.remove(request)
        # A Release is stateless (born processed, no callbacks), so one
        # shared instance per resource serves every confirmation.
        ev = self._release_ev
        if ev is None:
            ev = self._release_ev = Release(self.env)
        self._trigger()
        return ev

    def _trigger(self) -> None:
        while len(self.users) < self.capacity:
            nxt = self._dequeue()
            if nxt is None:
                return
            self.users.append(nxt)
            nxt.succeed()


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by ``priority`` (lower first).

    Ties break FIFO via the per-resource sequence number.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._pqueue: list[tuple[tuple[float, int], Request]] = []
        self._seq = 0

    def _enqueue(self, request: Request) -> None:
        # The FIFO tie-break key is assigned here, not at request
        # creation: only queued requests ever need one, and enqueue
        # order equals creation order.
        request._key = (request.priority, self._seq)
        self._seq += 1
        heapq.heappush(self._pqueue, (request._key, request))

    def _dequeue(self) -> Request | None:
        if self._pqueue:
            _key, req = heapq.heappop(self._pqueue)
            return req
        return None

    def _remove(self, request: Request) -> None:
        for i, (_k, req) in enumerate(self._pqueue):
            if req is request:
                self._pqueue.pop(i)
                heapq.heapify(self._pqueue)
                return

    @property
    def queue_len(self) -> int:
        return len(self._pqueue)


class Lock(Resource):
    """Convenience: a capacity-1 resource with hold-time accounting.

    ``held_time`` accumulates total time the lock was held and
    ``contended_time`` accumulates waiter-observed waiting time, which
    feeds the file-system contention tables (paper Table 2).
    """

    def __init__(self, env: Environment):
        super().__init__(env, capacity=1)
        self.held_time = 0.0
        self.contended_time = 0.0
        self._acquired_at: dict[Request, float] = {}
        self._requested_at: dict[Request, float] = {}

    def request(self, priority: float = 0.0) -> Request:
        req = super().request(priority)
        if not req.triggered:
            self._requested_at[req] = self.env.now

        def _on_grant(ev: Event) -> None:
            self._acquired_at[req] = self.env.now
            t0 = self._requested_at.pop(req, None)
            if t0 is not None:
                self.contended_time += self.env.now - t0

        if req.triggered:
            self._acquired_at[req] = self.env.now
        else:
            req.callbacks.append(_on_grant)  # type: ignore[union-attr]
        return req

    def release(self, request: Request) -> Release:
        t0 = self._acquired_at.pop(request, None)
        if t0 is not None:
            self.held_time += self.env.now - t0
        return super().release(request)

    @property
    def locked(self) -> bool:
        return self.count > 0


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: Store, item: Any):
        super().__init__(store.env)
        self.item = item
        # Accepted at birth when there is room and no earlier put is
        # blocked (FIFO fairness); the heap is only involved when the
        # put must wait for space.
        if not store._puts and len(store.items) < store.capacity:
            store.items.append(item)
            self._state = _PROCESSED
            self.callbacks = None
            if store._gets:
                store._trigger()
        else:
            store._puts.append(self)
            store._trigger()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: Store):
        super().__init__(store.env)
        if not store._gets and store.items:
            self._value = store.items.popleft()
            self._state = _PROCESSED
            self.callbacks = None
            if store._puts:
                store._trigger()
        else:
            store._gets.append(self)
            store._trigger()


class Store:
    """FIFO item queue with optional capacity (blocking puts when full).

    Models SQ/CQ rings and inter-process mailboxes. ``put`` returns an
    event that fires once the item is accepted; ``get`` returns an event
    that fires with the next item.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._puts: deque[StorePut] = deque()
        self._gets: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def try_get(self) -> Any:
        """Non-blocking pop; returns the item or None if empty."""
        if self.items:
            item = self.items.popleft()
            self._trigger()
            return item
        return None

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._puts and len(self.items) < self.capacity:
                put = self._puts.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            while self._gets and self.items:
                get = self._gets.popleft()
                get.succeed(self.items.popleft())
                progressed = True
