"""Calibrated kernel cost model.

Single source of truth for every CPU-side latency in the traditional
and io_uring paths. Values are rough medians from the literature the
paper cites (Didona et al. SYSTOR'22 on storage API overheads; Ren &
Trivedi CHEOPS'23; the I/O passthru FAST'24 paper) and are deliberately
conservative — the reproduction's claims are about *relative* effects.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCosts"]

US = 1e-6
GIB = 1024**3


@dataclass(frozen=True)
class KernelCosts:
    """All CPU-side costs, in seconds (rates in bytes/second)."""

    #: user↔kernel mode switch + register save/restore per syscall
    syscall_overhead: float = 1.6 * US
    #: copy_{from,to}_user bandwidth (write() data copy into the cache)
    copy_bandwidth: float = 8.0 * GIB
    #: CPU time to look up/insert one page in the page cache xarray
    pagecache_page_op: float = 0.15 * US
    #: block-layer request setup (bio alloc, plug, queue insert)
    bio_submit_cost: float = 0.7 * US
    #: io_uring SQE preparation + ring doorbell from user space
    uring_sqe_prep: float = 0.10 * US
    #: io_uring_enter() syscall when not in SQPOLL mode
    uring_enter_cost: float = 1.2 * US
    #: SQPOLL kernel-thread pickup latency (poll granularity)
    sqpoll_pickup: float = 1.0 * US
    #: CQE reap cost per completion
    cqe_reap_cost: float = 0.10 * US
    #: process context switch (blocking I/O wakeup path)
    context_switch: float = 1.2 * US

    def copy_time(self, nbytes: int) -> float:
        """Time to memcpy ``nbytes`` across the user/kernel boundary."""
        return nbytes / self.copy_bandwidth

    def __post_init__(self) -> None:
        if self.copy_bandwidth <= 0:
            raise ValueError("copy_bandwidth must be positive")
        for name in (
            "syscall_overhead",
            "pagecache_page_op",
            "bio_submit_cost",
            "uring_sqe_prep",
            "uring_enter_cost",
            "sqpoll_pickup",
            "cqe_reap_cost",
            "context_switch",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
