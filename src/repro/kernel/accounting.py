"""Per-process, per-component CPU attribution.

The paper's Table 2 reports "CPU usage of the file-system write path in
the snapshot process" and Figure 2a splits snapshot time into
in-memory / kernel-I/O / SSD components. To regenerate those, every
simulated CPU cost is charged to a :class:`CpuAccount` under a
component label ("syscall", "copy", "fs", "pagecache", "block",
"uring"), and device wait time under "ssd_wait".
"""

from __future__ import annotations

from repro.sim import Environment
from repro.sim.stats import Counter

__all__ = ["CpuAccount"]


class CpuAccount:
    """CPU/wait-time ledger for one simulated OS process."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self._components = Counter()
        self._started_at = env.now

    def charge(self, component: str, dt: float):
        """Spend ``dt`` CPU seconds attributed to ``component``.

        Returns the timeout event to ``yield`` on, or ``None`` when the
        charge is free — or when the environment's quiescence
        fast-forward lane absorbed the delay in closed form (the clock
        has already advanced; there is nothing left to wait for).
        Returning the event directly instead of delegating through a
        one-yield generator keeps the hot path (one charge per op per
        layer) free of a trampoline per call; callers MUST use the
        guarded pattern ``ev = acct.charge(...); if ev is not None:
        yield ev`` — a bare ``yield acct.charge(...)`` would yield
        ``None`` whenever the fast-forward lane fires.
        """
        if dt < 0:
            raise ValueError("negative charge")
        self._components.add(component, dt)
        if dt > 0:
            env = self.env
            if env.ff_advance(dt):
                return None
            return env.timeout(dt)
        return None

    def note(self, component: str, dt: float) -> None:
        """Attribute ``dt`` without consuming simulated time.

        Used for wait-time categories where the caller already paid the
        wall-clock (e.g. time blocked on the device).
        """
        if dt < 0:
            raise ValueError("negative note")
        self._components.add(component, dt)

    def time_in(self, component: str) -> float:
        return self._components.get(component)

    def total_charged(self) -> float:
        return sum(self._components.as_dict().values())

    def breakdown(self) -> dict[str, float]:
        return self._components.as_dict()

    def share_of(self, component: str, wall_time: float) -> float:
        """Fraction of ``wall_time`` spent in ``component`` (Table 2)."""
        if wall_time <= 0:
            return 0.0
        return self.time_in(component) / wall_time
