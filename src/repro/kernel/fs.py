"""File systems for the traditional path: VFS, EXT4, F2FS.

Implements the pieces of a journaling file system that matter to the
paper's §3.1 analysis:

* **extent allocation** over the device's LBA space (first-fit over a
  free-extent list; files grow in multi-megabyte extents so the
  sequential WAL/snapshot streams stay mostly contiguous);
* **a shared commit lock** — EXT4's journal (jbd2) commit lock or
  F2FS's log-allocation lock. Both the WAL process and the snapshot
  process must take it on metadata-touching operations, which is the
  §3.1.2 scalability bottleneck. EXT4 holds it longer than F2FS,
  matching the paper's "F2FS scales better but not perfectly";
* **per-operation file-system CPU** in the write path (Table 2's
  11–14 % snapshot-process share);
* buffered data flow through the :class:`~repro.kernel.pagecache.PageCache`,
  and fsync via journal commit + synchronous flush;
* TRIM on unlink (``discard`` mount option), so deleting an old
  snapshot invalidates its pages inside the SSD.

:class:`PosixFile` is the syscall surface used by the baseline engine:
each call pays syscall overhead and is charged to the calling process's
:class:`~repro.kernel.accounting.CpuAccount`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator

from repro.kernel.accounting import CpuAccount
from repro.kernel.blocklayer import BlockLayer
from repro.kernel.costs import KernelCosts
from repro.kernel.pagecache import PageCache
from repro.nvme import DeallocateCmd
from repro.sim import Environment, Lock
from repro.sim.stats import Counter

__all__ = ["Filesystem", "Ext4", "F2fs", "PosixFile", "Inode"]

US = 1e-6


@dataclass
class Inode:
    """On-"disk" file metadata."""

    file_id: int
    name: str
    extents: list[tuple[int, int]] = field(default_factory=list)  # (lba, npages)
    size: int = 0

    def allocated_pages(self) -> int:
        return sum(n for _, n in self.extents)

    def page_to_lba(self, page_idx: int) -> int:
        off = page_idx
        for lba, n in self.extents:
            if off < n:
                return lba + off
            off -= n
        raise ValueError(
            f"page {page_idx} beyond allocation of file {self.name!r}"
        )


class _ExtentAllocator:
    """First-fit allocator over a contiguous LBA range."""

    def __init__(self, start: int, num_lbas: int):
        self._free: list[tuple[int, int]] = [(start, num_lbas)]

    def alloc(self, npages: int) -> int:
        for i, (start, n) in enumerate(self._free):
            if n >= npages:
                if n == npages:
                    self._free.pop(i)
                else:
                    self._free[i] = (start + npages, n - npages)
                return start
        raise OSError("filesystem out of space")

    def free(self, lba: int, npages: int) -> None:
        self._free.append((lba, npages))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for start, n in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + n)
            else:
                merged.append((start, n))
        self._free = merged

    @property
    def free_pages(self) -> int:
        return sum(n for _, n in self._free)


class Filesystem:
    """Base journaling file system over one block layer + page cache.

    Subclasses set the contention profile via class attributes.
    """

    #: human name ("ext4" / "f2fs")
    fs_name = "genericfs"
    #: time the shared commit lock is held per metadata commit
    commit_hold_time = 0.6 * US
    #: file-system CPU burned per write call (alloc, tree update)
    write_path_cpu = 1.2 * US
    #: file-system CPU per read call
    read_path_cpu = 0.4 * US
    #: whether plain buffered write() takes the commit lock
    journal_on_write = True
    #: journal blocks written to the device per fsync commit
    #: (jbd2 descriptor+commit for EXT4; F2FS node/summary block)
    journal_io_pages = 2

    def __init__(
        self,
        env: Environment,
        block_layer: BlockLayer,
        pagecache: PageCache | None = None,
        costs: KernelCosts | None = None,
        extent_pages: int = 1024,
    ):
        self.env = env
        self.block = block_layer
        self.costs = costs or KernelCosts()
        self.cache = pagecache or PageCache(env, block_layer, self.costs)
        self.extent_pages = extent_pages
        self.page_size = block_layer.device.lba_size
        self.commit_lock = Lock(env)
        # the journal lives in the last pages of the device; fsync
        # commits cycle through it (real device writes — the baseline's
        # extra I/O that passthru does not pay)
        self._journal_pages = min(64, block_layer.device.num_lbas // 8)
        self._journal_base = block_layer.device.num_lbas - self._journal_pages
        self._journal_cursor = 0
        self._alloc = _ExtentAllocator(0, self._journal_base)
        self._files: dict[str, Inode] = {}
        self._next_id = 1
        self.counters = Counter()
        self.obs = None

    def attach_obs(self, registry) -> None:
        """Register instruments: commit-lock wait + journal traffic.

        The lock-wait histogram includes uncontended (zero-wait)
        commits, so its mean is the true per-commit tax and its p99
        exposes the §3.1.2 contention tail.
        """
        self.obs = registry
        self._obs_lock_wait = registry.histogram(
            "fs_commit_lock_wait_seconds", fs=self.fs_name
        )
        self._obs_commits = registry.counter(
            "fs_journal_commits_total", fs=self.fs_name
        )
        self._obs_journal_pages = registry.counter(
            "fs_journal_pages_total", fs=self.fs_name
        )

    # ------------------------------------------------------------------ namespace
    def create(self, name: str) -> PosixFile:
        if name in self._files:
            raise FileExistsError(name)
        inode = Inode(file_id=self._next_id, name=name)
        self._next_id += 1
        self._files[name] = inode
        self.cache.register_file(inode.file_id, inode.page_to_lba)
        return PosixFile(self, inode)

    def open(self, name: str) -> PosixFile:
        inode = self._files.get(name)
        if inode is None:
            raise FileNotFoundError(name)
        return PosixFile(self, inode)

    def exists(self, name: str) -> bool:
        return name in self._files

    def rename(self, old: str, new: str) -> None:
        """Atomic rename (how baseline Redis publishes a snapshot)."""
        inode = self._files.pop(old, None)
        if inode is None:
            raise FileNotFoundError(old)
        victim = self._files.pop(new, None)
        if victim is not None:
            self._destroy(victim)
        inode.name = new
        self._files[new] = inode

    def unlink(self, name: str) -> None:
        inode = self._files.pop(name, None)
        if inode is None:
            raise FileNotFoundError(name)
        self._destroy(inode)

    def _destroy(self, inode: Inode) -> None:
        self.cache.drop_file(inode.file_id)
        for lba, npages in inode.extents:
            self._alloc.free(lba, npages)
            # discard mount option: TRIM freed extents inside the SSD
            self.env.process(
                self._discard(lba, npages), name=f"discard-{inode.name}"
            )
        inode.extents.clear()
        inode.size = 0

    def _discard(self, lba: int, npages: int) -> Generator:
        yield from self.block.submit(DeallocateCmd(lba=lba, nlb=npages))
        self.counters.add("discarded_pages", npages)

    def file_size(self, name: str) -> int:
        inode = self._files.get(name)
        if inode is None:
            raise FileNotFoundError(name)
        return inode.size

    @property
    def free_bytes(self) -> int:
        return self._alloc.free_pages * self.page_size

    # ------------------------------------------------------------------ internals
    def _commit(self, account: CpuAccount) -> Generator:
        """Take the shared commit lock (jbd2 / log allocation)."""
        t0 = self.env.now
        req = self.commit_lock.request()
        yield req
        wait = self.env.now - t0
        if wait > 0:
            account.note("fs_lock_wait", wait)
        if self.obs is not None:
            self._obs_lock_wait.observe(wait)
        _cpu_ev = account.charge("fs", self.commit_hold_time)
        if _cpu_ev is not None:
            yield _cpu_ev
        self.commit_lock.release(req)
        self.counters.add("commits")

    def _commit_io(self, account: CpuAccount) -> Generator:
        """A journaled commit with its device writes (fsync path)."""
        t0 = self.env.now
        req = self.commit_lock.request()
        yield req
        wait = self.env.now - t0
        if wait > 0:
            account.note("fs_lock_wait", wait)
        if self.obs is not None:
            self._obs_lock_wait.observe(wait)
        try:
            _cpu_ev = account.charge("fs", self.commit_hold_time)
            if _cpu_ev is not None:
                yield _cpu_ev
            from repro.nvme import WriteCmd

            for _ in range(self.journal_io_pages):
                lba = self._journal_base + self._journal_cursor
                self._journal_cursor = (
                    self._journal_cursor + 1
                ) % self._journal_pages
                t_io = self.env.now
                yield from self.block.submit(
                    WriteCmd(lba=lba, nlb=1), sync=True
                )
                account.note("ssd_wait", self.env.now - t_io)
        finally:
            self.commit_lock.release(req)
        self.counters.add("journal_commits")
        self.counters.add("journal_pages", self.journal_io_pages)
        if self.obs is not None:
            self._obs_commits.inc()
            self._obs_journal_pages.inc(self.journal_io_pages)

    def _ensure_allocated(self, inode: Inode, upto_bytes: int,
                          account: CpuAccount) -> Generator:
        needed_pages = -(-upto_bytes // self.page_size)
        while inode.allocated_pages() < needed_pages:
            # grow one extent at a time: resilient to free-list
            # fragmentation, and keeps large files in multiple extents
            grow = self.extent_pages
            lba = self._alloc.alloc(grow)
            inode.extents.append((lba, grow))
            _cpu_ev = account.charge("fs", self.write_path_cpu)
            if _cpu_ev is not None:
                yield _cpu_ev
            self.counters.add("extent_allocs")


class Ext4(Filesystem):
    """EXT4-flavoured contention: jbd2 journal on every write path op."""

    fs_name = "ext4"
    commit_hold_time = 0.9 * US
    write_path_cpu = 1.4 * US
    read_path_cpu = 0.4 * US
    journal_on_write = True
    journal_io_pages = 2


class F2fs(Filesystem):
    """F2FS-flavoured: log-structured, lighter but non-zero contention."""

    fs_name = "f2fs"
    commit_hold_time = 0.35 * US
    write_path_cpu = 1.1 * US
    read_path_cpu = 0.4 * US
    journal_on_write = True
    journal_io_pages = 1


class PosixFile:
    """A file descriptor: the blocking syscall API of the baseline.

    All methods are simulation generators and need the calling
    process's :class:`CpuAccount` — one OS process may hold many
    descriptors, but each call runs on the caller's CPU.
    """

    def __init__(self, fs: Filesystem, inode: Inode):
        self.fs = fs
        self.inode = inode
        self._append_pos = inode.size

    @property
    def name(self) -> str:
        return self.inode.name

    @property
    def size(self) -> int:
        return self.inode.size

    def write(self, data: bytes, account: CpuAccount) -> Generator:
        """Appending ``write()`` — syscall + journal + buffered copy."""
        yield from self._pwrite(self._append_pos, data, account)
        self._append_pos += len(data)

    def pwrite(self, offset: int, data: bytes, account: CpuAccount) -> Generator:
        yield from self._pwrite(offset, data, account)

    def _pwrite(self, offset: int, data: bytes, account: CpuAccount) -> Generator:
        fs = self.fs
        _cpu_ev = account.charge("syscall", fs.costs.syscall_overhead)
        if _cpu_ev is not None:
            yield _cpu_ev
        yield from fs._ensure_allocated(self.inode, offset + len(data), account)
        if fs.journal_on_write:
            yield from fs._commit(account)
        _cpu_ev = account.charge("fs", fs.write_path_cpu)
        if _cpu_ev is not None:
            yield _cpu_ev
        yield from fs.cache.write(self.inode.file_id, offset, data, account)
        self.inode.size = max(self.inode.size, offset + len(data))
        fs.counters.add("write_calls")
        fs.counters.add("bytes_written", len(data))

    def read(
        self,
        offset: int,
        length: int,
        account: CpuAccount,
        readahead: int | None = None,
    ) -> Generator:
        fs = self.fs
        _cpu_ev = account.charge("syscall", fs.costs.syscall_overhead)
        if _cpu_ev is not None:
            yield _cpu_ev
        _cpu_ev = account.charge("fs", fs.read_path_cpu)
        if _cpu_ev is not None:
            yield _cpu_ev
        length = max(0, min(length, self.inode.size - offset))
        if length == 0:
            return b""
        data = yield from fs.cache.read(
            self.inode.file_id, offset, length, account, readahead=readahead
        )
        fs.counters.add("read_calls")
        return data

    def fsync(self, account: CpuAccount) -> Generator:
        fs = self.fs
        _cpu_ev = account.charge("syscall", fs.costs.syscall_overhead)
        if _cpu_ev is not None:
            yield _cpu_ev
        yield from fs.cache.fsync(self.inode.file_id, account)
        yield from fs._commit_io(account)
        fs.counters.add("fsync_calls")

    def seek_end(self) -> int:
        self._append_pos = self.inode.size
        return self._append_pos
