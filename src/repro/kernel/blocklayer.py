"""Block layer: request queueing and scheduling in front of the device.

Models the blk-mq stage the traditional path must cross. A bounded
in-flight window provides queueing backpressure; the scheduler decides
dispatch order:

* ``none`` — FIFO (the paper's baseline setting, §5.1).
* ``sync-priority`` — synchronous requests (WAL flush/fsync writeback)
  overtake queued asynchronous ones (snapshot writeback). This is the
  deprioritization mechanism §4 lists as a reason to bypass the
  scheduler, and is exercised by the ablation benchmarks.

I/O passthru (`repro.kernel.iouring.PassthruQueuePair`) skips this
layer entirely.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.kernel.costs import KernelCosts
from repro.nvme import NvmeCommand, NvmeDevice
from repro.sim import Environment, PriorityResource, Resource
from repro.sim.stats import Counter, LatencyRecorder

__all__ = ["BlockLayer", "SCHED_NONE", "SCHED_SYNC_PRIORITY", "SCHED_DEADLINE"]

SCHED_NONE = "none"
SCHED_SYNC_PRIORITY = "sync-priority"
SCHED_DEADLINE = "mq-deadline"


class BlockLayer:
    """Dispatch queue between a file system / writeback and one device.

    ``mq-deadline`` approximates the kernel scheduler of the same name:
    reads dispatch ahead of writes (read latency matters most to
    foreground work), but a write that has waited past
    ``write_deadline`` jumps the queue, bounding starvation.
    """

    def __init__(
        self,
        env: Environment,
        device: NvmeDevice,
        costs: KernelCosts | None = None,
        scheduler: str = SCHED_NONE,
        inflight_limit: int = 32,
        write_deadline: float = 5e-3,
    ):
        if scheduler not in (SCHED_NONE, SCHED_SYNC_PRIORITY, SCHED_DEADLINE):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if inflight_limit < 1:
            raise ValueError("inflight_limit must be >= 1")
        if write_deadline <= 0:
            raise ValueError("write_deadline must be positive")
        self.env = env
        self.device = device
        self.costs = costs or KernelCosts()
        self.scheduler = scheduler
        self.write_deadline = write_deadline
        if scheduler in (SCHED_SYNC_PRIORITY, SCHED_DEADLINE):
            self._slots: Resource = PriorityResource(env, capacity=inflight_limit)
        else:
            self._slots = Resource(env, capacity=inflight_limit)
        self.counters = Counter()
        self.queue_latency = LatencyRecorder("blk-queue")
        self.obs = None

    def attach_obs(self, registry) -> None:
        """Register instruments: queue-wait histogram + command split."""
        self.obs = registry
        self._obs_queue_wait = registry.histogram(
            "block_queue_wait_seconds", sched=self.scheduler
        )
        self._obs_cmds = {
            True: registry.counter("block_cmds_total", sync="true"),
            False: registry.counter("block_cmds_total", sync="false"),
        }

    def _priority(self, cmd: NvmeCommand, sync: bool) -> float:
        if self.scheduler == SCHED_SYNC_PRIORITY:
            return 0.0 if sync else 1.0
        if self.scheduler == SCHED_DEADLINE:
            from repro.nvme import ReadCmd

            if isinstance(cmd, ReadCmd):
                return 0.0
            # writes sort by absolute deadline so aged writes overtake
            # fresh reads would-be... reads use priority 0; an expired
            # write gets promoted below read priority
            return 1.0 + self.env.now  # FIFO among writes
        return 0.0

    def submit(self, cmd: NvmeCommand, sync: bool = False) -> Generator:
        """Carry one command through queueing and device service.

        Returns the device's result (read data for reads). The caller
        pays: bio setup CPU, scheduler queueing, device service time.
        """
        yield self.env.timeout(self.costs.bio_submit_cost)
        priority = self._priority(cmd, sync)
        t_q = self.env.now
        req = self._slots.request(priority=priority)
        if self.scheduler == SCHED_DEADLINE and priority >= 1.0:
            # starvation bound: if the write is still queued at its
            # deadline, cancel and resubmit at read priority
            expiry = self.env.timeout(self.write_deadline)
            yield self.env.any_of([req, expiry])
            if not req.triggered:
                req.cancel()
                req = self._slots.request(priority=0.0)
                self.counters.add("deadline_promotions")
                yield req
        else:
            yield req
        self.queue_latency.record(self.env.now - t_q)
        self.counters.add("sync_cmds" if sync else "async_cmds")
        if self.obs is not None:
            self._obs_queue_wait.observe(self.env.now - t_q)
            self._obs_cmds[sync].inc()
        try:
            result = yield from self.device.submit(cmd)
        finally:
            self._slots.release(req)
        return result

    @property
    def inflight(self) -> int:
        return self._slots.count

    @property
    def queued(self) -> int:
        return self._slots.queue_len
