"""Simulated Linux kernel I/O paths.

Two ways from an application buffer to the NVMe device:

* the **traditional path** — ``write()`` syscalls through the VFS, a
  journaling file system (EXT4- or F2FS-flavoured contention model),
  the page cache with background writeback, and the block layer with a
  pluggable scheduler. This is the baseline Redis uses and the source
  of all four bottlenecks in the paper's §3.1.
* the **io_uring / I/O passthru path** — SQ/CQ rings straight to the
  NVMe device. SQPOLL removes submission syscalls; passthru skips the
  page cache, file system, and scheduler entirely and can attach FDP
  placement IDs to writes.

CPU time is attributed per process and per kernel component (see
:class:`repro.kernel.accounting.CpuAccount`), which is how the
reproduction regenerates the paper's Table 2 and Figure 2a breakdowns.
"""

from repro.kernel.accounting import CpuAccount
from repro.kernel.blocklayer import BlockLayer, SCHED_DEADLINE, SCHED_NONE, SCHED_SYNC_PRIORITY
from repro.kernel.costs import KernelCosts
from repro.kernel.iouring import IoUringRing, PassthruQueuePair, RetryPolicy
from repro.kernel.pagecache import PageCache
from repro.kernel.fs import Ext4, F2fs, Filesystem, PosixFile

__all__ = [
    "CpuAccount",
    "KernelCosts",
    "PageCache",
    "BlockLayer",
    "SCHED_NONE",
    "SCHED_SYNC_PRIORITY",
    "SCHED_DEADLINE",
    "IoUringRing",
    "PassthruQueuePair",
    "RetryPolicy",
    "Filesystem",
    "Ext4",
    "F2fs",
    "PosixFile",
]
