"""io_uring rings and NVMe I/O passthru.

:class:`IoUringRing` models one SQ/CQ pair bound to a device:

* submission: SQE prep CPU, then either an ``io_uring_enter`` syscall
  or — in **SQPOLL** mode — zero syscalls (the kernel poller thread
  picks the SQE up within its poll granularity);
* service: the command goes **directly to the NVMe device**, bypassing
  the page cache, file system, and block scheduler (this is I/O
  passthru / ``NVMe uring_cmd``), carrying its FDP placement ID;
* completion: a CQE; reaping costs a fraction of a microsecond.

Each SlimIO process creates its own ring (§4.1: the WAL-Path in the
main process, the Snapshot-Path in the snapshot process), so the two
I/O streams share *nothing* above the NVMe queues — the paper's write
isolation.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.kernel.accounting import CpuAccount
from repro.kernel.costs import KernelCosts
from repro.obs.spans import maybe_span
from repro.nvme import (
    DeallocateCmd,
    NvmeCommand,
    NvmeDevice,
    NvmeError,
    ReadCmd,
    WriteCmd,
)
from repro.sim import Environment, Event, Resource
from repro.sim.stats import Counter, LatencyRecorder

__all__ = ["IoUringRing", "PassthruQueuePair", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient NVMe failures.

    Real NVMe drivers abort-and-resubmit on timeouts and retry media
    errors a bounded number of times before failing the bio. The ring
    applies this policy to :class:`~repro.nvme.NvmeError` (and its
    subclass ``NvmeTimeout``) only; any other exception is a programming
    error and surfaces immediately as a CQE error.

    ``max_attempts`` counts total tries (first attempt included), so
    ``max_attempts=1`` disables retries. Backoff before retry *k*
    (1-based) is ``backoff_base * backoff_factor ** (k - 1)``, capped at
    ``backoff_cap``.
    """

    max_attempts: int = 4
    backoff_base: float = 50e-6
    backoff_factor: float = 2.0
    backoff_cap: float = 2e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("negative backoff")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, retry_index: int) -> float:
        """Delay before 1-based retry ``retry_index``."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (retry_index - 1))


class IoUringRing:
    """One submission/completion queue pair over an NVMe device."""

    def __init__(
        self,
        env: Environment,
        device: NvmeDevice,
        costs: KernelCosts | None = None,
        sqpoll: bool = True,
        depth: int = 128,
        name: str = "ring",
        retry: RetryPolicy | None = RetryPolicy(),
    ):
        if depth < 1:
            raise ValueError("ring depth must be >= 1")
        self.env = env
        self.device = device
        self.costs = costs or KernelCosts()
        self.sqpoll = sqpoll
        self.name = name
        self.retry = retry
        self._slots = Resource(env, capacity=depth)
        self.counters = Counter()
        self.completion_latency = LatencyRecorder(f"{name}-completion")
        self.obs = None
        #: request tracer (None = tracing off). ``submit`` captures the
        #: caller's scope onto the command; the service process adopts
        #: it across the process handoff.
        self.rtrace = None
        self._cmd_seq = 0

    def attach_obs(self, registry) -> None:
        """Register per-ring instruments (labelled by ring name).

        ``uring_enter_syscalls_total`` vs ``uring_sqpoll_pickups_total``
        is the passthru-vs-syscall submission split the paper's §4.1
        argues about: in SQPOLL mode the former stays at zero.
        """
        self.obs = registry
        self._obs_submitted = registry.counter("uring_submitted_total",
                                               ring=self.name)
        self._obs_enters = registry.counter("uring_enter_syscalls_total",
                                            ring=self.name)
        self._obs_sqpoll = registry.counter("uring_sqpoll_pickups_total",
                                            ring=self.name)
        self._obs_latency = registry.histogram(
            "uring_completion_seconds", ring=self.name
        )
        self._obs_depth = registry.gauge("uring_inflight", ring=self.name)
        self._obs_depth.set(0.0)
        self._obs_retries = registry.counter("uring_retries_total",
                                             ring=self.name)
        self._obs_giveups = registry.counter("uring_retry_giveups_total",
                                             ring=self.name)

    def submit(self, cmd: NvmeCommand, account: CpuAccount) -> Generator:
        """Submit one command; returns the completion :class:`Event`.

        Usage from a process::

            ev = yield from ring.submit(cmd, account)   # pays submit CPU
            ...                                         # do other work
            result = yield from ring.wait(ev, account)  # reap CQE
        """
        _cpu_ev = account.charge("uring", self.costs.uring_sqe_prep)
        if _cpu_ev is not None:
            yield _cpu_ev
        if not self.sqpoll:
            _cpu_ev = account.charge("syscall", self.costs.uring_enter_cost)
            if _cpu_ev is not None:
                yield _cpu_ev
            self.counters.add("enter_syscalls")
            if self.obs is not None:
                self._obs_enters.inc()
        elif self.obs is not None:
            self._obs_sqpoll.inc()
        self._cmd_seq += 1
        cmd.uring_id = f"{self.name}-{self._cmd_seq}"
        if self.rtrace is not None:
            # cross-process handoff: submit runs in the caller's
            # process, service in a fresh one — carry the scope on the
            # command itself
            handoff = self.rtrace.capture()
            if handoff is not None:
                cmd.trace_handoff = handoff
        done = self.env.event()
        self.env.process(self._service(cmd, done), name=f"{self.name}-svc")
        self.counters.add("submitted")
        if self.obs is not None:
            self._obs_submitted.inc()
        return done

    def _service(self, cmd: NvmeCommand, done: Event) -> Generator:
        t0 = self.env.now
        rt = self.rtrace
        handoff = getattr(cmd, "trace_handoff", None)
        nspan = None
        if rt is not None and handoff is not None:
            rt.adopt(handoff)
            labels = {"cmd": cmd.uring_id, "op": type(cmd).__name__}
            for k in ("lba", "nlb", "pid"):
                v = getattr(cmd, k, None)
                if v is not None:
                    labels[k] = v
            nspan = rt.open_span("nvme_cmd", "nvme", **labels)
        ok = False
        try:
            if self.sqpoll:
                yield self.env.timeout(self.costs.sqpoll_pickup)
            req = self._slots.request()
            yield req
            if self.obs is not None:
                self._obs_depth.set(float(self._slots.count))
            attempts = 0
            while True:
                try:
                    result = yield from self.device.submit(cmd)
                    break
                except NvmeError as exc:
                    # Transient controller failure: abort-and-resubmit with
                    # bounded backoff, holding the command slot like a real
                    # driver holds the request tag across retries.
                    attempts += 1
                    self.counters.add("nvme_errors")
                    if self.retry is None or attempts >= self.retry.max_attempts:
                        self.counters.add("retry_giveups")
                        if self.obs is not None:
                            self._obs_giveups.inc()
                        self._slots.release(req)
                        done.fail(exc)
                        return
                    self.counters.add("retries")
                    if self.obs is not None:
                        self._obs_retries.inc()
                    t_retry = self.env.now
                    # the retry span names the failing command, so an
                    # injected-error report reads straight back to the
                    # I/O that absorbed it
                    with maybe_span(self.obs, "uring_retry", track="ring",
                                    ring=self.name, cmd=cmd.uring_id,
                                    attempt=attempts,
                                    err=type(exc).__name__):
                        yield self.env.timeout(self.retry.backoff(attempts))
                    if rt is not None and handoff is not None:
                        rt.add_span("uring_retry", "nvme", t_retry,
                                    self.env.now, cmd=cmd.uring_id,
                                    attempt=attempts)
                except Exception as exc:  # surfaced to the waiter as a CQE error
                    self._slots.release(req)
                    done.fail(exc)
                    return
            self._slots.release(req)
            ok = True
            self.completion_latency.record(self.env.now - t0)
            self.counters.add("completed")
            if self.obs is not None:
                self._obs_latency.observe(self.env.now - t0)
                self._obs_depth.set(float(self._slots.count))
            done.succeed(result)
        finally:
            if rt is not None and handoff is not None:
                rt.close_span(nspan, ok=ok)
                rt.release()

    def wait(self, completion: Event, account: CpuAccount) -> Generator:
        """Block on a CQE and reap it."""
        t0 = self.env.now
        value = yield completion
        account.note("ssd_wait", self.env.now - t0)
        _cpu_ev = account.charge("uring", self.costs.cqe_reap_cost)
        if _cpu_ev is not None:
            yield _cpu_ev
        return value

    def submit_and_wait(self, cmd: NvmeCommand, account: CpuAccount) -> Generator:
        ev = yield from self.submit(cmd, account)
        result = yield from self.wait(ev, account)
        return result

    @property
    def inflight(self) -> int:
        return self._slots.count


class PassthruQueuePair(IoUringRing):
    """An I/O-passthru ring with LBA-level convenience verbs.

    The unit of addressing is the device LBA (one NAND page). Byte
    packing/framing is the caller's job, exactly as with real
    ``io_uring`` NVMe passthru.
    """

    def write_pages(
        self,
        lba: int,
        data: bytes,
        account: CpuAccount,
        pid: int = 0,
    ) -> Generator:
        """Submit a page-aligned write tagged with FDP placement ``pid``."""
        ps = self.device.lba_size
        if len(data) % ps:
            raise ValueError(f"data must be page-aligned ({ps}); pad upstream")
        nlb = len(data) // ps
        ev = yield from self.submit(
            WriteCmd(lba=lba, nlb=nlb, data=data, pid=pid), account
        )
        return ev

    def read_pages(self, lba: int, nlb: int, account: CpuAccount) -> Generator:
        ev = yield from self.submit(ReadCmd(lba=lba, nlb=nlb), account)
        return ev

    def deallocate(self, lba: int, nlb: int, account: CpuAccount) -> Generator:
        ev = yield from self.submit(DeallocateCmd(lba=lba, nlb=nlb), account)
        return ev
