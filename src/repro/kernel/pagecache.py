"""Page cache with background writeback and dirty throttling.

The traditional path's buffering stage. ``write()`` copies user data
into per-file page buffers (real bytes — the cache is part of the data
plane) and marks them dirty; a background writeback process flushes
dirty runs through the block layer; writers that outrun the device are
throttled at the dirty limit, which is how device-side GC pressure
propagates back into baseline Redis's WAL fsyncs and snapshot writes.

File→LBA translation is delegated to the owning file system through a
resolver callback registered per file.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.kernel.accounting import CpuAccount
from repro.kernel.blocklayer import BlockLayer
from repro.kernel.costs import KernelCosts
from repro.nvme import ReadCmd, WriteCmd
from repro.sim import Environment, Event
from repro.sim.stats import Counter

__all__ = ["PageCache"]

# resolver(page_idx) -> lba of that file page (must exist once dirty)
Resolver = Callable[[int], int]


class PageCache:
    """Per-device page cache shared by all files of a file system."""

    def __init__(
        self,
        env: Environment,
        block_layer: BlockLayer,
        costs: KernelCosts | None = None,
        page_size: int = 4096,
        dirty_limit_bytes: int = 8 * 1024 * 1024,
        background_ratio: float = 0.5,
        writeback_interval: float = 0.030,
        writeback_batch_pages: int = 256,
        writeback_run_pages: int = 32,
        readahead_pages: int = 32,
    ):
        if dirty_limit_bytes < page_size:
            raise ValueError("dirty_limit_bytes smaller than one page")
        if not 0.0 < background_ratio <= 1.0:
            raise ValueError("background_ratio must be in (0, 1]")
        self.env = env
        self.block = block_layer
        self.costs = costs or KernelCosts()
        self.page_size = page_size
        self.dirty_limit = dirty_limit_bytes
        self.background_limit = int(dirty_limit_bytes * background_ratio)
        self.writeback_interval = writeback_interval
        self.writeback_batch_pages = writeback_batch_pages
        self.writeback_run_pages = max(1, writeback_run_pages)
        self.readahead_pages = readahead_pages
        #: cap per-write throttle pause (balance_dirty_pages quantum)
        self.max_throttle_pause = 2e-3

        self._pages: dict[tuple[int, int], bytearray] = {}
        self._dirty: set[tuple[int, int]] = set()
        self._resolvers: dict[int, Resolver] = {}
        self._throttled: list[Event] = []
        self._wb_kick: Event | None = None
        self.counters = Counter()
        self.obs = None
        #: request tracer (None = tracing off); writeback runs record a
        #: background span linked to the requests that dirtied the pages
        self.rtrace = None
        self._trace_dirty: list[int] = []
        env.process(self._writeback_loop(), name="writeback")

    def attach_obs(self, registry) -> None:
        """Register instruments: dirty-page gauge + throttle pressure."""
        self.obs = registry
        self._obs_dirty = registry.gauge("pagecache_dirty_bytes")
        self._obs_dirty.set(float(self.dirty_bytes))
        self._obs_throttles = registry.counter(
            "pagecache_throttle_events_total"
        )
        self._obs_throttle_wait = registry.histogram(
            "pagecache_throttle_wait_seconds"
        )
        self._obs_wb_pages = registry.counter(
            "pagecache_writeback_pages_total"
        )

    # ------------------------------------------------------------------ setup
    def register_file(self, file_id: int, resolver: Resolver) -> None:
        self._resolvers[file_id] = resolver

    def drop_file(self, file_id: int) -> None:
        """Invalidate all pages of a file (unlink / crash simulation)."""
        stale = [k for k in self._pages if k[0] == file_id]
        for k in stale:
            del self._pages[k]
            self._dirty.discard(k)
        self._resolvers.pop(file_id, None)

    def drop_all_clean(self) -> None:
        """Drop clean pages (echo 1 > drop_caches); keeps dirty data."""
        clean = [k for k in self._pages if k not in self._dirty]
        for k in clean:
            del self._pages[k]

    def crash(self) -> None:
        """Power loss: every cached page — dirty or clean — vanishes.

        Whatever reached the device via writeback/fsync survives;
        un-synced data is gone. Used by the durability tests.
        """
        self._pages.clear()
        self._dirty.clear()

    # ------------------------------------------------------------------ state
    @property
    def dirty_bytes(self) -> int:
        return len(self._dirty) * self.page_size

    @property
    def cached_bytes(self) -> int:
        return len(self._pages) * self.page_size

    def is_cached(self, file_id: int, page_idx: int) -> bool:
        return (file_id, page_idx) in self._pages

    def _page(self, file_id: int, page_idx: int) -> bytearray:
        key = (file_id, page_idx)
        buf = self._pages.get(key)
        if buf is None:
            buf = bytearray(self.page_size)
            self._pages[key] = buf
        return buf

    # ------------------------------------------------------------------ write
    def write(
        self, file_id: int, offset: int, data: bytes, account: CpuAccount
    ) -> Generator:
        """Buffered write: copy in, dirty pages, maybe throttle."""
        if file_id not in self._resolvers:
            raise KeyError(f"file {file_id} not registered")
        if offset < 0:
            raise ValueError("negative offset")
        rt = self.rtrace
        t_entry = self.env.now
        if rt is not None:
            ctx = rt.current()
            if ctx is not None and not ctx.background:
                # remember who dirtied pages so the next writeback can
                # link back to them (bounded; dedup the common repeat)
                tid = ctx.trace_id
                if (not self._trace_dirty or self._trace_dirty[-1] != tid) \
                        and len(self._trace_dirty) < 64:
                    self._trace_dirty.append(tid)
        _cpu_ev = account.charge("copy", self.costs.copy_time(len(data)))
        if _cpu_ev is not None:
            yield _cpu_ev
        ps = self.page_size
        pos = 0
        n_ops = 0
        newly_dirty = 0
        while pos < len(data):
            abs_off = offset + pos
            page_idx, in_page = divmod(abs_off, ps)
            n = min(ps - in_page, len(data) - pos)
            buf = self._page(file_id, page_idx)
            buf[in_page : in_page + n] = data[pos : pos + n]
            key = (file_id, page_idx)
            if key not in self._dirty:
                self._dirty.add(key)
                newly_dirty += 1
            pos += n
            n_ops += 1
        _cpu_ev = account.charge("pagecache", n_ops * self.costs.pagecache_page_op)
        if _cpu_ev is not None:
            yield _cpu_ev
        # writeback submission work done on the dirtier's behalf
        # (balance_dirty_pages / direct submission under pressure)
        _cpu_ev = account.charge(
            "pagecache", newly_dirty * self.costs.bio_submit_cost
        )
        if _cpu_ev is not None:
            yield _cpu_ev
        self.counters.add("buffered_writes")
        if self.obs is not None:
            self._obs_dirty.set(float(self.dirty_bytes))
        self._kick_writeback()

        if self.dirty_bytes > self.dirty_limit:
            # balance_dirty_pages: the writer pauses, but in bounded
            # quanta (the kernel caps each pause), so a writer holding
            # a CPU makes slow progress instead of stopping dead
            waiter = self.env.event()
            self._throttled.append(waiter)
            t0 = self.env.now
            yield self.env.any_of(
                [waiter, self.env.timeout(self.max_throttle_pause)]
            )
            if not waiter.triggered:
                try:
                    self._throttled.remove(waiter)
                except ValueError:
                    pass
            account.note("dirty_throttle", self.env.now - t0)
            self.counters.add("throttle_events")
            if self.obs is not None:
                self._obs_throttles.inc()
                self._obs_throttle_wait.observe(self.env.now - t0)
        if rt is not None and rt.current() is not None:
            rt.add_span("pagecache_write", "pagecache", t_entry,
                        self.env.now, nbytes=len(data))

    # ------------------------------------------------------------------ read
    def read(
        self,
        file_id: int,
        offset: int,
        length: int,
        account: CpuAccount,
        readahead: int | None = None,
    ) -> Generator:
        """Read through the cache; misses fetch with readahead."""
        resolver = self._resolvers.get(file_id)
        if resolver is None:
            raise KeyError(f"file {file_id} not registered")
        if offset < 0 or length < 0:
            raise ValueError("bad read extent")
        ra = self.readahead_pages if readahead is None else readahead
        ps = self.page_size
        first = offset // ps
        last = (offset + length - 1) // ps if length else first
        # fault in missing pages, batching contiguous misses + readahead
        idx = first
        while idx <= last:
            if self.is_cached(file_id, idx):
                self.counters.add("cache_hits")
                idx += 1
                continue
            run_start = idx
            run_len = 0
            while (
                idx <= last + ra - 1
                and run_len < max(ra, 1)
                and not self.is_cached(file_id, idx)
            ):
                if idx > last:
                    # prefetch-only page: stop at the file's allocation edge
                    try:
                        resolver(idx)
                    except ValueError:
                        break
                run_len += 1
                idx += 1
            t0 = self.env.now
            for lba, sub_start, sub_len in self._lba_runs(
                resolver, run_start, run_len
            ):
                data = yield from self.block.submit(
                    ReadCmd(lba=lba, nlb=sub_len), sync=True
                )
                for j in range(sub_len):
                    buf = self._page(file_id, sub_start + j)
                    buf[:] = data[j * ps : (j + 1) * ps]
            account.note("ssd_wait", self.env.now - t0)
            self.counters.add("cache_misses", run_len)
        # copy to user
        _cpu_ev = account.charge("copy", self.costs.copy_time(length))
        if _cpu_ev is not None:
            yield _cpu_ev
        _cpu_ev = account.charge(
            "pagecache", (last - first + 1) * self.costs.pagecache_page_op
        )
        if _cpu_ev is not None:
            yield _cpu_ev
        out = bytearray(length)
        pos = 0
        while pos < length:
            abs_off = offset + pos
            page_idx, in_page = divmod(abs_off, ps)
            n = min(ps - in_page, length - pos)
            out[pos : pos + n] = self._pages[(file_id, page_idx)][
                in_page : in_page + n
            ]
            pos += n
        return bytes(out)

    # ------------------------------------------------------------------ flush
    def _dirty_runs(self, file_id: int | None, limit: int):
        """Dirty (file, start, len) runs to flush.

        Runs are capped at ``writeback_run_pages`` and interleaved
        round-robin across files — like the kernel's per-inode
        writeback chunking. The interleaving matters beyond fairness:
        it is what mixes data of different lifetimes (WAL vs snapshot
        vs journal) into the same flash segments on a conventional SSD,
        producing the GC copies and WAF > 1 of the paper's §3.1.4.
        """
        keys = sorted(
            k for k in self._dirty if file_id is None or k[0] == file_id
        )
        per_file: dict[int, list[tuple[int, int, int]]] = {}
        i = 0
        cap = self.writeback_run_pages
        while i < len(keys):
            fid, start = keys[i]
            n = 1
            while i + n < len(keys) and keys[i + n] == (fid, start + n) and n < cap:
                n += 1
            per_file.setdefault(fid, []).append((fid, start, n))
            i += n
        runs: list[tuple[int, int, int]] = []
        taken = 0
        queues = [list(reversed(v)) for v in per_file.values()]
        while queues and taken < limit:
            for q in list(queues):
                if taken >= limit:
                    break
                fid, start, n = q.pop()
                n = min(n, limit - taken)
                runs.append((fid, start, n))
                taken += n
                if not q:
                    queues.remove(q)
        return runs

    @staticmethod
    def _lba_runs(resolver: Resolver, start: int, n: int):
        """Split a file-page run wherever its LBAs are discontiguous."""
        sub_start = start
        sub_lba = resolver(start)
        sub_len = 1
        for j in range(1, n):
            lba = resolver(start + j)
            if lba == sub_lba + sub_len:
                sub_len += 1
            else:
                yield sub_lba, sub_start, sub_len
                sub_start, sub_lba, sub_len = start + j, lba, 1
        yield sub_lba, sub_start, sub_len

    def _flush_run(self, fid: int, start: int, n: int, sync: bool) -> Generator:
        # A file can be unlinked while its writeback is in flight (WAL
        # generation rotation does exactly this): ``drop_file`` removes
        # the pages, the dirty marks, and the resolver, and the freed
        # extents are TRIMmed. Like the kernel skipping pages whose
        # mapping is gone, snapshot the page->LBA map up front and skip
        # anything that has vanished.
        rt = self.rtrace
        bg = None
        wb_span = None
        if rt is not None:
            links = tuple(self._trace_dirty)
            self._trace_dirty.clear()
            bg = rt.begin_background("writeback")
            wb_span = rt.open_span("writeback", "pagecache", links=links,
                                   file=fid)
        resolver = self._resolvers.get(fid)
        pages: list[tuple[int, int]] = []  # (page_idx, lba)
        for j in range(n):
            key = (fid, start + j)
            self._dirty.discard(key)
            if resolver is None or key not in self._pages:
                continue
            try:
                lba = resolver(start + j)
            except ValueError:
                continue  # allocation shrank under writeback
            pages.append((start + j, lba))
        flushed = 0
        i = 0
        while i < len(pages):
            idx, lba = pages[i]
            # Re-check liveness at submit time: an unlink during an
            # earlier sub-run's I/O frees the remaining LBAs (possibly
            # to a new file) — a stale write there would corrupt it.
            if (fid, idx) not in self._pages:
                i += 1
                continue
            data = [bytes(self._pages[(fid, idx)])]
            k = 1
            while (
                i + k < len(pages)
                and pages[i + k][1] == lba + k
                and (fid, pages[i + k][0]) in self._pages
            ):
                data.append(bytes(self._pages[(fid, pages[i + k][0])]))
                k += 1
            yield from self.block.submit(
                WriteCmd(lba=lba, nlb=k, data=b"".join(data)), sync=sync
            )
            flushed += k
            i += k
        self.counters.add("writeback_pages", flushed)
        if rt is not None:
            rt.close_span(wb_span, pages=flushed)
            rt.finish_background(bg)
        if self.obs is not None:
            self._obs_wb_pages.inc(flushed)
            self._obs_dirty.set(float(self.dirty_bytes))

    def fsync(self, file_id: int, account: CpuAccount) -> Generator:
        """Synchronously flush a file's dirty pages (sync priority)."""
        t0 = self.env.now
        while True:
            runs = self._dirty_runs(file_id, limit=1 << 30)
            if not runs:
                break
            procs = [
                self.env.process(self._flush_run(f, s, n, sync=True))
                for (f, s, n) in runs
            ]
            yield self.env.all_of(procs)
        account.note("ssd_wait", self.env.now - t0)
        self._release_throttled()
        self.counters.add("fsyncs")

    def _release_throttled(self) -> None:
        if self.dirty_bytes <= self.background_limit and self._throttled:
            waiters, self._throttled = self._throttled, []
            for w in waiters:
                w.succeed()

    def _kick_writeback(self) -> None:
        if self._wb_kick is not None and not self._wb_kick.triggered:
            self._wb_kick.succeed()

    def _writeback_loop(self) -> Generator:
        while True:
            if not self._dirty:
                # fully event-driven when idle, so a drained simulation
                # terminates instead of ticking a writeback timer forever.
                # single-writer kick handoff: only this loop assigns
                # _wb_kick, rivals only succeed the parked event
                self._wb_kick = self.env.event()  # slimlint: ignore[SLIM010] single-writer handoff
                yield self._wb_kick
                self._wb_kick = None  # slimlint: ignore[SLIM010] single-writer handoff
            if self.dirty_bytes <= self.background_limit:
                # below background threshold: flush lazily on the timer
                yield self.env.timeout(self.writeback_interval)
            runs = self._dirty_runs(None, self.writeback_batch_pages)
            procs = [
                self.env.process(self._flush_run(f, s, n, sync=False))
                for (f, s, n) in runs
            ]
            if procs:
                yield self.env.all_of(procs)
            self._release_throttled()
