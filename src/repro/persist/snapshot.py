"""The snapshot (RDB) writer — Redis's fork()ed child process.

The child iterates the fork-point dataset in chunks; for each chunk it
pays in-memory CPU (object iteration + serialization + compression) and
then pushes the encoded chunk down its I/O transport. With the baseline
sink that transport is ``write()`` through the shared kernel path; with
SlimIO it is the process-private Snapshot-Path ring, where writes are
submitted asynchronously and in-memory work overlaps device time (the
paper's "ideal" overlap of §3.1.1).

``finalize`` publishes the snapshot atomically (file rename / reserve-
slot promotion) only after every byte is durable; on failure ``abort``
leaves the previous snapshot untouched — the crash-safety contract the
LBA three-slot scheme exists to preserve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Generator, Sequence

from repro.kernel.accounting import CpuAccount
from repro.obs.spans import maybe_span
from repro.persist.compress import CompressionModel, Compressor
from repro.persist.encoding import RdbWriter
from repro.persist.interfaces import SnapshotSink
from repro.sim import Environment

__all__ = ["SnapshotKind", "SnapshotStats", "SnapshotWriterProcess"]

GB = 1024**3


class SnapshotKind(enum.Enum):
    WAL_TRIGGERED = "wal-snapshot"
    ON_DEMAND = "on-demand-snapshot"


@dataclass
class SnapshotStats:
    """Everything measured about one snapshot generation."""

    kind: SnapshotKind
    started_at: float
    finished_at: float = 0.0
    entries: int = 0
    raw_bytes: int = 0
    written_bytes: int = 0
    ok: bool = False
    #: child-process CPU/wait breakdown (Figure 2a's attribution)
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def compression_ratio(self) -> float:
        return self.written_bytes / self.raw_bytes if self.raw_bytes else 1.0

    def time_in_memory(self) -> float:
        return sum(
            self.breakdown.get(k, 0.0) for k in ("serialize", "compress")
        )

    def time_in_kernel(self) -> float:
        return sum(
            self.breakdown.get(k, 0.0)
            for k in ("syscall", "fs", "copy", "pagecache", "uring",
                      "fs_lock_wait")
        )

    def time_on_ssd(self) -> float:
        return self.breakdown.get("ssd_wait", 0.0) + self.breakdown.get(
            "dirty_throttle", 0.0
        )


@dataclass(frozen=True)
class SnapshotCpuModel:
    """In-memory costs of the child's iterate/serialize stage."""

    #: dataset traversal + dict-entry serialization bandwidth
    serialize_bandwidth: float = 2.5 * GB
    #: per-entry overhead (index walk, type dispatch)
    per_entry_overhead: float = 0.5e-6

    def serialize_time(self, nbytes: int, n_entries: int) -> float:
        return nbytes / self.serialize_bandwidth + n_entries * self.per_entry_overhead


class SnapshotWriterProcess:
    """One snapshot generation, run as a simulated child process."""

    def __init__(
        self,
        env: Environment,
        items: Sequence[tuple[bytes, bytes]],
        sink: SnapshotSink,
        kind: SnapshotKind = SnapshotKind.WAL_TRIGGERED,
        compressor: Compressor | None = None,
        cpu_model: SnapshotCpuModel | None = None,
        compression_model: CompressionModel | None = None,
        chunk_entries: int = 128,
        account: CpuAccount | None = None,
        pipeline_depth: int = 8,
        obs=None,
    ):
        if chunk_entries < 1:
            raise ValueError("chunk_entries must be >= 1")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self.env = env
        self.items = items
        self.sink = sink
        self.kind = kind
        self.compressor = compressor or Compressor()
        self.cpu_model = cpu_model or SnapshotCpuModel()
        self.compression_model = (
            compression_model or self.compressor.model
        )
        self.chunk_entries = chunk_entries
        self.account = account or CpuAccount(env, "snapshot-child")
        self.obs = obs
        self.stats = SnapshotStats(kind=kind, started_at=env.now)

    def run(self) -> Generator:
        """Child process body; returns :class:`SnapshotStats`.

        On any I/O failure the partial snapshot is aborted and the
        stats record ``ok=False`` — the previous snapshot generation
        stays authoritative.
        """
        acct = self.account
        writer = RdbWriter(self.compressor)
        try:
            with maybe_span(self.obs, "snapshot_write", track="snapshot",
                            kind=self.kind.value):
                yield from self.sink.write(writer.header(), acct)
                for start in range(0, len(self.items), self.chunk_entries):
                    batch = self.items[start : start + self.chunk_entries]
                    raw_len = sum(len(k) + len(v) for k, v in batch)
                    # in-memory: iterate + serialize, then compress
                    _cpu_ev = acct.charge(
                        "serialize",
                        self.cpu_model.serialize_time(raw_len, len(batch)),
                    )
                    if _cpu_ev is not None:
                        yield _cpu_ev
                    encoded = writer.chunk(batch)
                    _cpu_ev = acct.charge(
                        "compress",
                        self.compression_model.compress_time(raw_len, 1),
                    )
                    if _cpu_ev is not None:
                        yield _cpu_ev
                    yield from self.sink.write(encoded, acct)
                    self.stats.entries += len(batch)
                    self.stats.raw_bytes += raw_len
                yield from self.sink.write(writer.footer(), acct)
                yield from self.sink.finalize(acct)
        except Exception:
            self.sink.abort()
            self.stats.finished_at = self.env.now
            self.stats.breakdown = acct.breakdown()
            self.stats.written_bytes = self.sink.bytes_written
            raise
        self.stats.ok = True
        self.stats.finished_at = self.env.now
        self.stats.breakdown = acct.breakdown()
        self.stats.written_bytes = self.sink.bytes_written
        return self.stats
