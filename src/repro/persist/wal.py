"""Write-Ahead Log manager with Redis's two logging policies.

Faithful to how Redis actually schedules AOF I/O:

* the ``write()`` into the kernel happens **on the main thread** — in
  Redis, ``flushAppendOnlyFile`` runs in the event loop before it
  sleeps. Here, the server calls :meth:`idle_drain` whenever its CPU
  goes idle, and the drain *holds the server CPU* while the sink
  appends. On the baseline this is the per-batch syscall/copy/journal
  tax of §3.1.1; on SlimIO's WAL-Path an append is user-space staging
  and costs nothing.
* **Periodical-Log** (``appendfsync everysec``): records are staged in
  the user-level buffer, appended on idle/deadline, and made durable
  (fsync / passthru write) once per ``flush_interval`` by a background
  flusher — queries never wait.
* **Always-Log** (``appendfsync always``): a write query completes only
  when its record is durable. Concurrent queries **group-commit**: the
  first waiter drains everything staged so far in one sink operation,
  later waiters discover their record already durable.

Generation rotation (at the snapshot fork) and retirement (after the
snapshot is durable) follow §2.1/§4.2: ``rotate_begin`` is synchronous
at the fork instant; the old generation replays until
``retire_previous``.
"""

from __future__ import annotations

import enum
from collections.abc import Generator

from repro.kernel.accounting import CpuAccount
from repro.obs.spans import maybe_span
from repro.persist.encoding import AofCodec, AofRecord
from repro.persist.interfaces import AppendSink
from repro.sim import Environment, Event, Resource
from repro.sim.stats import Counter

__all__ = ["LoggingPolicy", "WalManager"]


class LoggingPolicy(enum.Enum):
    PERIODICAL = "periodical"
    ALWAYS = "always"


class WalManager:
    """Buffers, encodes, appends, and syncs write-ahead-log records."""

    def __init__(
        self,
        env: Environment,
        sink: AppendSink,
        account: CpuAccount,
        policy: LoggingPolicy = LoggingPolicy.PERIODICAL,
        flush_interval: float = 1.0,
        buffer_limit_bytes: int = 32 * 1024 * 1024,
    ):
        if flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self.env = env
        self.sink = sink
        self.account = account
        self.policy = policy
        self.flush_interval = flush_interval
        self.buffer_limit = buffer_limit_bytes

        self._buffer: list[bytes] = []
        self._buffer_bytes = 0
        self._old_buffer: list[bytes] = []  # pre-fork records awaiting flush
        self._boundary_pending = 0  # generation switches not yet at the sink
        self._logged_bytes = 0  # current generation, incl. buffered
        self._staged_seq = 0  # last staged record
        self._durable_seq = 0  # last record known durable
        self._sink_lock = Resource(env, capacity=1)
        self._idle_drain_active = False
        self._flush_kick: Event | None = None
        self._capacity_waiters: list[Event] = []
        self._closing = False
        self.counters = Counter()
        self.obs = None
        #: request tracer (None = tracing off); drains record a
        #: ``wal_flush`` span whose ``links`` name every trace id the
        #: group commit makes durable
        self.rtrace = None
        if policy is LoggingPolicy.PERIODICAL:
            env.process(self._flusher(), name="wal-flusher")

    def attach_obs(self, registry) -> None:
        """Register instruments: flush sizes, buffer level, commits.

        Spans: every ``wal_flush``/``wal_fsync`` on track ``wal`` runs
        under the sink lock, so they never overlap; the everysec fsync
        that deliberately runs outside the lock gets its own
        ``wal-sync`` track.
        """
        self.obs = registry
        self._obs_flush_bytes = registry.histogram(
            "wal_flush_bytes", policy=self.policy.value
        )
        self._obs_buffered = registry.gauge("wal_buffered_bytes")
        self._obs_buffered.set(0.0)
        self._obs_group_commits = registry.counter("wal_group_commits_total")
        self._obs_backpressure = registry.counter(
            "wal_backpressure_waits_total"
        )

    # ------------------------------------------------------------------ staging
    def stage(self, record: AofRecord) -> int:
        """Buffer one record (synchronous); returns its sequence number."""
        data = AofCodec.encode(record)
        self._buffer.append(data)
        self._buffer_bytes += len(data)
        self._logged_bytes += len(data)
        self._staged_seq += 1
        self.counters.add("records")
        if self.rtrace is not None:
            self.rtrace.note_wal_stage(self._staged_seq)
        if self.obs is not None:
            self._obs_buffered.set(float(self._buffer_bytes))
        if self._buffer_bytes >= self.buffer_limit:
            self._kick()
        return self._staged_seq

    def log(self, record: AofRecord) -> Generator:
        """Stage + (for Always-Log) wait for durability. Convenience for
        callers outside the server's CPU discipline."""
        seq = self.stage(record)
        if self.policy is LoggingPolicy.ALWAYS:
            yield from self.ensure_durable(seq)

    @property
    def over_buffer_limit(self) -> bool:
        return self._buffer_bytes >= self.buffer_limit

    def wait_capacity(self) -> Generator:
        """Block until the user buffer drains below the hard limit.

        Redis's AOF hard limit: when the device cannot keep up (e.g.
        SSD GC) and the buffer overgrows, write queries block — the
        mechanism behind Figure 4's RPS nosedives on the non-FDP
        device.
        """
        while self._buffer_bytes >= self.buffer_limit and not self._closing:
            self._kick()
            waiter = self.env.event()
            self._capacity_waiters.append(waiter)
            yield waiter
            self.counters.add("backpressure_waits")
            if self.obs is not None:
                self._obs_backpressure.inc()

    @property
    def size(self) -> int:
        """Total bytes in the current WAL generation (trigger metric)."""
        return self._logged_bytes

    @property
    def buffered_bytes(self) -> int:
        return self._buffer_bytes

    # ------------------------------------------------------------------ durability
    def ensure_durable(self, seq: int) -> Generator:
        """Group commit: returns once record ``seq`` is durable."""
        while self._durable_seq < seq:
            req = self._sink_lock.request()
            yield req
            try:
                if self._durable_seq >= seq:
                    return
                yield from self._cross_boundary_locked()
                yield from self._drain_locked(fsync=True)
            finally:
                self._sink_lock.release(req)
            self.counters.add("group_commits")
            if self.obs is not None:
                self._obs_group_commits.inc()

    def flush_now(self) -> Generator:
        """Drain, then make everything appended so far durable.

        The fsync happens OUTSIDE the sink lock: Redis's everysec fsync
        runs on a background thread while the main loop keeps appending
        to the same file — serializing them would turn every slow fsync
        (e.g. during device GC) into an artificial append stall.
        """
        req = self._sink_lock.request()
        yield req
        try:
            yield from self._cross_boundary_locked()
            top = self._staged_seq
            yield from self._drain_locked(fsync=False)
        finally:
            self._sink_lock.release(req)
        # outside the sink lock, so on its own span track (may overlap
        # a concurrent locked drain)
        rt = self.rtrace
        bg = None
        tsp = None
        if rt is not None and rt.current() is None:
            bg = rt.begin_background("wal-sync")
        if rt is not None:
            tsp = rt.open_span("wal_fsync", "wal")
        try:
            with maybe_span(self.obs, "wal_fsync", track="wal-sync"):
                yield from self.sink.flush(self.account)
        finally:
            if rt is not None:
                rt.close_span(tsp)
                if bg is not None:
                    rt.finish_background(bg)
        self._durable_seq = max(self._durable_seq, top)
        self.counters.add("sync_flushes")

    # ------------------------------------------------------------------ idle drain
    def idle_drain(self, cpu: Resource):
        """The main-thread ``write()``: schedule a drain that holds the
        server CPU while the sink appends (no fsync). Called by the
        server whenever its CPU goes idle; no-op if nothing is staged
        or a drain is already pending."""
        if (
            self.policy is not LoggingPolicy.PERIODICAL
            or self._idle_drain_active
            or (not self._buffer and not self._boundary_pending)
            or self._closing
            # sink busy (flusher mid-drain): don't capture the server
            # CPU just to queue behind it — next idle tick will drain
            or self._sink_lock.count > 0
        ):
            return None
        self._idle_drain_active = True
        return self.env.process(self._idle_drain_body(cpu), name="wal-write")

    def _idle_drain_body(self, cpu: Resource) -> Generator:
        # lock order: sink THEN cpu — never hold the server CPU while
        # queueing behind a (device-speed) flush of the sink
        req = self._sink_lock.request()
        yield req
        try:
            # generation switch I/O (flush old gen, write metadata) is
            # sink-side work — it must not stall the query loop
            yield from self._cross_boundary_locked()
            cpu_req = cpu.request()
            yield cpu_req
            try:
                yield from self._drain_locked(fsync=False)
            finally:
                cpu.release(cpu_req)
            self.counters.add("idle_writes")
        finally:
            self._sink_lock.release(req)
            self._idle_drain_active = False

    # ------------------------------------------------------------------ internals
    def _cross_boundary_locked(self) -> Generator:
        """Complete a pending generation switch at the sink: pre-fork
        records flush into the old generation first."""
        while self._boundary_pending:
            old = self._old_buffer
            self._old_buffer = []
            self._boundary_pending -= 1
            if old:
                yield from self.sink.append(b"".join(old), self.account)
                yield from self.sink.flush(self.account)
            yield from self.sink.begin_generation(self.account)

    def _drain_locked(self, fsync: bool) -> Generator:
        top = self._staged_seq
        rt = self.rtrace
        bg = None
        if rt is not None and rt.current() is None \
                and (self._buffer or fsync):
            # Periodical drains run in a background process with no
            # request scope: trace them anonymously so their device
            # spans stay available for blame analysis
            bg = rt.begin_background("wal-drain")
        try:
            if self._buffer:
                data = b"".join(self._buffer)
                self._buffer.clear()
                self._buffer_bytes = 0
                tsp = None
                if rt is not None:
                    # the links are the causal join of group commit:
                    # every request whose record this flush retires
                    tsp = rt.open_span("wal_flush", "wal",
                                       links=rt.take_staged(top),
                                       policy=self.policy.value,
                                       nbytes=len(data))
                try:
                    with maybe_span(self.obs, "wal_flush", track="wal",
                                    policy=self.policy.value):
                        yield from self.sink.append(data, self.account)
                finally:
                    if rt is not None:
                        rt.close_span(tsp)
                self.counters.add("drains")
                self.counters.add("drained_bytes", len(data))
                if self.obs is not None:
                    self._obs_flush_bytes.observe(float(len(data)))
                    self._obs_buffered.set(float(self._buffer_bytes))
                if self._capacity_waiters and self._buffer_bytes < self.buffer_limit:
                    waiters, self._capacity_waiters = self._capacity_waiters, []
                    for w in waiters:
                        w.succeed()
            if fsync:
                tsp = rt.open_span("wal_fsync", "wal") \
                    if rt is not None else None
                try:
                    with maybe_span(self.obs, "wal_fsync", track="wal"):
                        yield from self.sink.flush(self.account)
                finally:
                    if rt is not None:
                        rt.close_span(tsp)
                self._durable_seq = max(self._durable_seq, top)
                self.counters.add("sync_flushes")
        finally:
            if bg is not None:
                rt.finish_background(bg)

    def _kick(self) -> None:
        if self._flush_kick is not None and not self._flush_kick.triggered:
            self._flush_kick.succeed()

    def _ff_quiescent(self) -> bool:
        """True when the next periodic flush tick would provably do
        nothing: no staged records, no pending generation switch,
        everything durable, sink idle with a no-op flush, no request
        tracing (absorbed ticks would elide its spans). Under this
        predicate every state change that could disturb the pattern —
        a ``stage``, a ``rotate_begin``, a ``close`` — can only happen
        inside a heap dispatch, so ticks landing strictly before the
        next scheduled event replay in closed form."""
        return (
            not self._buffer
            and not self._boundary_pending
            and self._durable_seq >= self._staged_seq
            and not self._closing
            and self._sink_lock.count == 0
            and self._sink_lock.queue_len == 0
            and self.rtrace is None
            and self.sink.flush_is_noop
        )

    def _flusher(self) -> Generator:
        # the kick-event handoff below is single-writer by design: only
        # this loop ever assigns _flush_kick; rivals (_kick) may succeed
        # the parked event but never replace it, so the read-yield-write
        # cannot lose a rival's update
        env = self.env
        while not self._closing:
            self._flush_kick = env.event()  # slimlint: ignore[SLIM010] single-writer handoff
            yield env.any_of(
                [self._flush_kick, env.timeout(self.flush_interval)]
            )
            self._flush_kick = None  # slimlint: ignore[SLIM010] single-writer handoff
            if self._closing:
                return
            yield from self.flush_now()
            self.counters.add("periodic_flushes")
            if env.fast_forward and self._ff_quiescent():
                # Quiescence fast-forward: replay the following run of
                # provably idle ticks in closed form. Each absorbed tick
                # is exactly the flush we just ran — counters bump, no
                # time, no I/O — so k ticks collapse into one wake-up at
                # the k-th instant (idle wal_fsync spans are elided).
                k, wake = env.ff_absorb_ticks(self.flush_interval)
                if k:
                    self.counters.add("sync_flushes", k)
                    self.counters.add("periodic_flushes", k)
                    # per idle tick the classic lane dispatches the tick
                    # timeout and the AnyOf condition, plus an immediate
                    # event for the sink-lock grant when inline resume
                    # is off; the wake-up event itself pays for one
                    per_tick = 2 if env._fast_resume else 3
                    env.ff_credit(k * per_tick - 1)
                    yield wake

    def close(self) -> None:
        """Stop the background flusher (end of run)."""
        self._closing = True
        self._kick()
        waiters, self._capacity_waiters = self._capacity_waiters, []
        for w in waiters:
            w.succeed()

    # ------------------------------------------------------------------ rotation
    def rotate_begin(self) -> None:
        """Switch generations at the fork instant — synchronous.

        Records logged before this call belong to the old generation
        (their effects are inside the snapshot being taken); records
        logged after belong to the new one. The sink's actual switch
        happens under the sink lock at the next drain, preserving
        append order.
        """
        self._old_buffer.extend(self._buffer)
        self._buffer.clear()
        self._buffer_bytes = 0
        self._boundary_pending += 1
        self._logged_bytes = 0
        self.counters.add("rotations")
        self._kick()

    def retire_previous(self) -> Generator:
        """Drop the pre-snapshot generation (snapshot is now durable)."""
        req = self._sink_lock.request()
        yield req
        try:
            yield from self._cross_boundary_locked()
            yield from self.sink.retire_previous(self.account)
        finally:
            self._sink_lock.release(req)
        self.counters.add("retirements")

    # ------------------------------------------------------------------ recovery
    def read_records(self, account: CpuAccount) -> Generator:
        """Read and decode all live generations (replay)."""
        raw = yield from self.sink.read_all(account)
        return AofCodec.scan(raw).records
