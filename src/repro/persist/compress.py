"""Compression: real bytes, modeled CPU cost.

Redis compresses snapshot objects with LZF. Here the *data plane* uses
zlib (stdlib, deterministic, round-trips exactly) while the *time
plane* charges CPU from a calibrated model — LZF-class bandwidth plus a
per-object overhead. The per-object overhead is what makes the YCSB-A
snapshot (many small values) slower than the redis-benchmark snapshot
(fewer large values), as in the paper's §5.2 snapshot-time discussion.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

__all__ = ["CompressionModel", "Compressor"]

MB = 1024 * 1024


@dataclass(frozen=True)
class CompressionModel:
    """CPU cost model for an LZF-class codec."""

    #: compression throughput (bytes/s of input). Calibrated so the
    #: snapshot is compute-bound relative to the device, as in the
    #: paper (20 GB snapshots take 110-150 s on a ~1.3 GB/s device).
    compress_bandwidth: float = 120 * MB
    #: decompression throughput (bytes/s of output)
    decompress_bandwidth: float = 600 * MB
    #: fixed CPU per compressed object/chunk (call + dispatch overhead)
    per_object_overhead: float = 0.8e-6

    def compress_time(self, raw_len: int, n_objects: int = 1) -> float:
        return raw_len / self.compress_bandwidth + n_objects * self.per_object_overhead

    def decompress_time(self, raw_len: int, n_objects: int = 1) -> float:
        return (
            raw_len / self.decompress_bandwidth
            + n_objects * self.per_object_overhead
        )

    def __post_init__(self) -> None:
        if self.compress_bandwidth <= 0 or self.decompress_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.per_object_overhead < 0:
            raise ValueError("per_object_overhead must be >= 0")


class Compressor:
    """zlib-backed codec with optional passthrough for tests."""

    #: memo cap — snapshot cycles re-compress largely unchanged chunks,
    #: so a modest cache absorbs most of the zlib cost
    _CACHE_CAP = 4096

    def __init__(self, level: int = 1, enabled: bool = True,
                 model: CompressionModel | None = None):
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level
        self.enabled = enabled
        self.model = model or CompressionModel()
        self._cache: dict[bytes, bytes] = {}

    def compress(self, raw: bytes) -> bytes:
        if not self.enabled:
            return raw
        blob = self._cache.get(raw)
        if blob is None:
            blob = zlib.compress(raw, self.level)
            if len(self._cache) >= self._CACHE_CAP:
                self._cache.clear()
            self._cache[raw] = blob
        return blob

    def decompress(self, blob: bytes, raw_len: int | None = None) -> bytes:
        if not self.enabled:
            return blob
        return zlib.decompress(blob)

    def ratio(self, raw: bytes) -> float:
        """Compressed/raw size for this payload (1.0 if disabled)."""
        if not raw:
            return 1.0
        return len(self.compress(raw)) / len(raw)
