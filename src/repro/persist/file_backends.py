"""Baseline transports: persistence over the traditional kernel path.

These bind the abstract sinks to POSIX files on a journaling file
system — this is stock Redis: the WAL is an append-only file fsynced
per policy, the snapshot is written to a temp file and atomically
renamed over the previous one, recovery reads files back through the
page cache.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.kernel.accounting import CpuAccount
from repro.kernel.fs import Filesystem, PosixFile
from repro.persist.interfaces import AppendSink, SnapshotSink, SnapshotSource

__all__ = ["FileAppendSink", "FileSnapshotSink", "FileSnapshotSource"]


class FileAppendSink(AppendSink):
    """Append-only file (AOF) on a file system."""

    def __init__(self, fs: Filesystem, name: str = "appendonly.aof"):
        self.fs = fs
        self.base_name = name
        self._generation = 0
        self._file: PosixFile = fs.create(self._gen_name())
        self._prev_files: list[PosixFile] = []

    def _gen_name(self) -> str:
        return f"{self.base_name}.{self._generation}"

    @property
    def size(self) -> int:
        return self._file.size

    @property
    def current_name(self) -> str:
        return self._gen_name()

    def append(self, data: bytes, account: CpuAccount) -> Generator:
        yield from self._file.write(data, account)

    def flush(self, account: CpuAccount) -> Generator:
        yield from self._file.fsync(account)

    def begin_generation(self, account: CpuAccount) -> Generator:
        """New AOF file; older ones stay until the snapshot lands.

        More than one previous generation only accumulates after failed
        WAL-snapshots (their retire never came) — replay still works
        because ``read_all`` concatenates oldest-first.
        """
        self._prev_files.append(self._file)
        self._generation += 1
        self._file = self.fs.create(self._gen_name())
        yield from self.fs._commit(account)

    def retire_previous(self, account: CpuAccount) -> Generator:
        """Unlink the pre-snapshot AOF files (snapshot durable)."""
        for f in self._prev_files:
            self.fs.unlink(f.name)
        if self._prev_files:
            self._prev_files.clear()
            yield from self.fs._commit(account)

    def read_all(self, account: CpuAccount) -> Generator:
        out = bytearray()
        for f in self._prev_files:
            data = yield from f.read(0, f.size, account)
            out.extend(data)
        data = yield from self._file.read(0, self._file.size, account)
        out.extend(data)
        return bytes(out)


class FileSnapshotSink(SnapshotSink):
    """Temp-file-then-rename snapshot publication (stock Redis RDB).

    Writes go through an 8 KiB user buffer, one ``write()`` syscall per
    buffer — Redis's rio layer does exactly this, and it is why the
    baseline snapshot pays so many syscalls (§3.1.1/§3.1.3).
    """

    def __init__(self, fs: Filesystem, name: str = "dump.rdb",
                 write_buffer_bytes: int = 8192):
        if write_buffer_bytes < 1:
            raise ValueError("write_buffer_bytes must be >= 1")
        self.fs = fs
        self.target_name = name
        self.write_buffer_bytes = write_buffer_bytes
        self._seq = 0
        self._tmp: PosixFile | None = None
        self._written = 0
        self._buf = bytearray()

    @property
    def bytes_written(self) -> int:
        return self._written

    def _ensure_tmp(self) -> PosixFile:
        if self._tmp is None:
            self._seq += 1
            self._tmp = self.fs.create(f"{self.target_name}.tmp{self._seq}")
            self._written = 0
            self._buf.clear()
        return self._tmp

    def write(self, data: bytes, account: CpuAccount) -> Generator:
        tmp = self._ensure_tmp()
        self._buf.extend(data)
        self._written += len(data)
        while len(self._buf) >= self.write_buffer_bytes:
            chunk = bytes(self._buf[: self.write_buffer_bytes])
            del self._buf[: self.write_buffer_bytes]
            yield from tmp.write(chunk, account)

    def finalize(self, account: CpuAccount) -> Generator:
        if self._tmp is None:
            raise RuntimeError("nothing written")
        if self._buf:
            chunk = bytes(self._buf)
            self._buf.clear()
            yield from self._tmp.write(chunk, account)
        yield from self._tmp.fsync(account)
        self.fs.rename(self._tmp.name, self.target_name)
        yield from self.fs._commit(account)  # rename journal commit
        # one finalize per sink at a time (the server serializes
        # snapshots; a concurrent finalize already raises above)
        self._tmp = None  # slimlint: ignore[SLIM010] single snapshot writer

    def abort(self) -> None:
        if self._tmp is not None:
            self.fs.unlink(self._tmp.name)
            self._tmp = None
            self._written = 0
            self._buf.clear()


class FileSnapshotSource(SnapshotSource):
    """Sequential page-cache reads of a published snapshot file."""

    def __init__(self, fs: Filesystem, name: str = "dump.rdb",
                 readahead_pages: int | None = None):
        self.fs = fs
        self.name = name
        self.readahead_pages = readahead_pages
        self._file = fs.open(name)

    @property
    def size(self) -> int:
        return self._file.size

    def read(self, offset: int, length: int, account: CpuAccount) -> Generator:
        data = yield from self._file.read(
            offset, length, account, readahead=self.readahead_pages
        )
        return data
