"""Recovery: snapshot load + WAL replay (paper §4.2, Table 5).

The procedure is Redis's: read the metadata (done by the caller's
engine, which hands us a :class:`SnapshotSource` and an
:class:`AppendSink`), stream the snapshot into memory, rebuild the
keyspace, then replay any WAL records logged after the snapshot.

The streaming read is where baseline and SlimIO diverge: the baseline
pays a syscall per ``read()`` through the page cache, SlimIO reads
through its passthru read-ahead buffer — same bytes, different cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator

from repro.kernel.accounting import CpuAccount
from repro.obs.spans import maybe_span
from repro.persist.compress import CompressionModel, Compressor
from repro.persist.encoding import AofCodec, OP_DEL, OP_SET, RdbReader
from repro.persist.interfaces import AppendSink, SnapshotSource
from repro.sim import Environment

__all__ = ["RecoveryResult", "recover_store"]

#: per-entry dict rebuild cost (hash + insert)
REBUILD_PER_ENTRY = 0.3e-6


@dataclass
class RecoveryResult:
    """Outcome of one recovery run.

    ``wal_truncated_at``/``wal_tail`` report how the WAL stream ended:
    ``"clean"`` means every byte decoded; ``"torn"`` means a crash
    fragment was truncated at the given offset (expected after power
    loss); ``"interior"`` means CRC-valid records resumed *after* the
    failure offset — ``wal_corrupt_records`` of them were dropped, which
    only genuine media corruption produces (strict mode raises instead).
    """

    data: dict[bytes, bytes] = field(default_factory=dict)
    snapshot_entries: int = 0
    wal_records_applied: int = 0
    snapshot_bytes: int = 0
    duration: float = 0.0
    wal_truncated_at: int | None = None
    wal_tail: str = "clean"
    wal_corrupt_records: int = 0

    @property
    def throughput(self) -> float:
        """Recovery I/O throughput in bytes/s (Table 5's metric)."""
        return self.snapshot_bytes / self.duration if self.duration > 0 else 0.0


def recover_store(
    env: Environment,
    source: SnapshotSource | None,
    wal_sink: AppendSink | None,
    account: CpuAccount,
    compressor: Compressor | None = None,
    compression_model: CompressionModel | None = None,
    read_chunk_bytes: int = 1024 * 1024,
    obs=None,
    strict_wal: bool = False,
) -> Generator:
    """Rebuild the keyspace; returns :class:`RecoveryResult`.

    ``source`` may be None (no snapshot yet: WAL-only recovery);
    ``wal_sink`` may be None (snapshot-only restore). ``obs`` is an
    optional :class:`repro.obs.MetricsRegistry`: when attached, the two
    phases become ``snapshot_load`` and ``recovery_replay`` spans on
    the ``recovery`` track, with per-chunk progress in the event log.

    ``strict_wal=True`` raises :class:`CorruptionError` on interior WAL
    corruption instead of replaying the valid prefix and reporting the
    damage through the result fields. The default is lenient because a
    torn tail after power loss is *expected* and out-of-order page
    persistence can legitimately strand record fragments past the tear.
    """
    if read_chunk_bytes < 1:
        raise ValueError("read_chunk_bytes must be >= 1")
    comp = compressor or Compressor()
    model = compression_model or comp.model
    t0 = env.now
    result = RecoveryResult()

    if source is not None and source.size > 0:
        with maybe_span(obs, "snapshot_load", track="recovery"):
            blob = bytearray()
            offset = 0
            total = source.size
            while offset < total:
                n = min(read_chunk_bytes, total - offset)
                piece = yield from source.read(offset, n, account)
                blob.extend(piece)
                offset += n
                if obs is not None:
                    obs.event("recovery_progress", phase="snapshot",
                              read=offset, total=total)
            entries = RdbReader(comp).read_all(bytes(blob))
            raw_bytes = sum(len(k) + len(v) for k, v in entries)
            _cpu_ev = account.charge(
                "decompress",
                model.decompress_time(raw_bytes, max(1, len(entries) // 64)),
            )
            if _cpu_ev is not None:
                yield _cpu_ev
            _cpu_ev = account.charge(
                "rebuild", len(entries) * REBUILD_PER_ENTRY
            )
            if _cpu_ev is not None:
                yield _cpu_ev
            for k, v in entries:
                result.data[k] = v
            result.snapshot_entries = len(entries)
            result.snapshot_bytes = total
        if obs is not None:
            obs.counter("recovery_snapshot_bytes_total").inc(total)
            obs.counter("recovery_snapshot_entries_total").inc(len(entries))

    if wal_sink is not None:
        with maybe_span(obs, "recovery_replay", track="recovery"):
            raw = yield from wal_sink.read_all(account)
            scan = AofCodec.scan(raw, strict=strict_wal)
            records = scan.records
            _cpu_ev = account.charge(
                "rebuild", len(records) * REBUILD_PER_ENTRY
            )
            if _cpu_ev is not None:
                yield _cpu_ev
            for rec in records:
                if rec.op == OP_SET:
                    result.data[rec.key] = rec.value
                elif rec.op == OP_DEL:
                    result.data.pop(rec.key, None)
            result.wal_records_applied = len(records)
            result.wal_truncated_at = scan.truncated_at
            result.wal_tail = scan.tail_kind
            result.wal_corrupt_records = scan.trailing_records
        if obs is not None:
            obs.counter("recovery_wal_records_total").inc(len(records))
            if scan.truncated_at is not None:
                obs.counter("recovery_wal_truncations_total").inc()
            if scan.trailing_records:
                obs.counter("recovery_wal_corrupt_records_total").inc(
                    scan.trailing_records
                )
            obs.event("recovery_progress", phase="replay",
                      records=len(records), tail=scan.tail_kind)

    result.duration = env.now - t0
    return result
