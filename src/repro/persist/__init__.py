"""Redis-style persistence: WAL (AOF), snapshots (RDB), recovery.

Functionally real: WAL records and snapshot chunks are binary-encoded,
CRC-protected, compressed bytes that round-trip through the simulated
device. The I/O transport is abstracted behind small sink/source
interfaces (:mod:`repro.persist.interfaces`) with two families of
implementations:

* file-based (:mod:`repro.persist.file_backends`) — the baseline's
  POSIX path through a journaling file system;
* LBA-based (:mod:`repro.core.paths`) — SlimIO's io_uring passthru
  paths over raw LBA regions.

Policies follow the paper: *Periodical-Log* (buffer, flush on idle or
deadline) and *Always-Log* (synchronous append per write query);
WAL-Snapshots trigger on WAL size, On-Demand-Snapshots on request, the
old WAL is retired only after a successful WAL-Snapshot.
"""

from repro.persist.compress import CompressionModel, Compressor
from repro.persist.encoding import (
    AofCodec,
    AofRecord,
    AofScanResult,
    CorruptionError,
    CorruptRecord,
    OP_DEL,
    OP_SET,
    RdbReader,
    RdbWriter,
)
from repro.persist.interfaces import AppendSink, SnapshotSink, SnapshotSource
from repro.persist.wal import LoggingPolicy, WalManager
from repro.persist.snapshot import SnapshotKind, SnapshotStats, SnapshotWriterProcess
from repro.persist.recovery import RecoveryResult, recover_store

__all__ = [
    "CompressionModel",
    "Compressor",
    "AofCodec",
    "AofRecord",
    "AofScanResult",
    "CorruptRecord",
    "CorruptionError",
    "OP_SET",
    "OP_DEL",
    "RdbReader",
    "RdbWriter",
    "AppendSink",
    "SnapshotSink",
    "SnapshotSource",
    "LoggingPolicy",
    "WalManager",
    "SnapshotKind",
    "SnapshotStats",
    "SnapshotWriterProcess",
    "RecoveryResult",
    "recover_store",
]
