"""Transport interfaces between persistence logic and I/O paths.

The WAL manager and snapshot writer are transport-agnostic; the
baseline provides file-backed implementations (traditional kernel
path), SlimIO provides LBA-region implementations (io_uring passthru).
All methods that perform I/O are simulation generators taking the
calling process's :class:`~repro.kernel.accounting.CpuAccount`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Generator

from repro.kernel.accounting import CpuAccount

__all__ = ["AppendSink", "SnapshotSink", "SnapshotSource"]


class AppendSink(ABC):
    """Durable append log (the WAL's storage end)."""

    @abstractmethod
    def append(self, data: bytes, account: CpuAccount) -> Generator:
        """Stage ``data`` at the log tail (buffered; cheap)."""

    @abstractmethod
    def flush(self, account: CpuAccount) -> Generator:
        """Force everything appended so far to be durable on device."""

    @abstractmethod
    def begin_generation(self, account: CpuAccount) -> Generator:
        """Start a new log generation (at snapshot fork time). The
        previous generation stays readable until
        :meth:`retire_previous` — a failed snapshot must leave the full
        record chain replayable."""

    @abstractmethod
    def retire_previous(self, account: CpuAccount) -> Generator:
        """Drop the previous generation (the covering snapshot is now
        durable — paper §2.1/§4.2 ordering)."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Bytes appended to the current log generation."""

    @property
    def flush_is_noop(self) -> bool:
        """True when :meth:`flush` would provably do nothing at all —
        no device I/O, no simulated time, no state change. The WAL
        flusher's quiescence fast-forward may then replay idle flush
        ticks in closed form. Defaults to False: a journaling file
        sink's fsync commits the journal (real device writes) even
        with an empty buffer, so only sinks that can prove emptiness
        opt in."""
        return False

    @abstractmethod
    def read_all(self, account: CpuAccount) -> Generator:
        """Read every live generation, oldest first (recovery replay)."""


class SnapshotSink(ABC):
    """Write-once snapshot target (one snapshot generation)."""

    @abstractmethod
    def write(self, data: bytes, account: CpuAccount) -> Generator:
        """Append the next piece of the snapshot stream."""

    @abstractmethod
    def finalize(self, account: CpuAccount) -> Generator:
        """Make the snapshot durable and atomically publish it (rename
        over the old file / promote the reserve slot)."""

    @abstractmethod
    def abort(self) -> None:
        """Discard a partially written snapshot (zero-time bookkeeping)."""

    @property
    @abstractmethod
    def bytes_written(self) -> int: ...


class SnapshotSource(ABC):
    """Sequential reader over the latest published snapshot."""

    @abstractmethod
    def read(self, offset: int, length: int, account: CpuAccount) -> Generator:
        """Read ``length`` bytes at ``offset`` of the snapshot stream."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Total bytes of the published snapshot."""
