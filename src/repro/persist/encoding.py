"""Binary codecs for the WAL (AOF) and snapshots (RDB).

Both formats are CRC-protected and designed for the failure modes the
recovery path must survive:

* **AOF records** are self-delimiting; replay stops cleanly at the
  first torn or corrupt record (a crash mid-append), keeping everything
  before it.
* **RDB streams** are chunked — each chunk is a compressed batch of
  entries with its own CRC — so a snapshot can be written incrementally
  (iterate → compress → write, as the Redis child does) and a partially
  written snapshot is detected and rejected as a whole via the footer.

Layouts (little-endian):

AOF record:   magic u8 (0xA5) | op u8 | klen u32 | vlen u32 | key | val | crc32 u32
RDB header:   b"REPRO-RDB1" | flags u16 | reserved u32
RDB chunk:    magic u8 (0xC7) | n_entries u32 | raw_len u32 | comp_len u32 | blob | crc32 u32
RDB footer:   magic u8 (0xF0) | total_entries u64 | total_chunks u32 | crc32 u32
Chunk blob (decompressed): n_entries × (klen u32 | vlen u32 | key | val)
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.persist.compress import Compressor

__all__ = [
    "OP_SET",
    "OP_DEL",
    "AofRecord",
    "AofCodec",
    "AofScanResult",
    "CorruptRecord",
    "CorruptionError",
    "RdbWriter",
    "RdbReader",
]

OP_SET = 1
OP_DEL = 2

_AOF_MAGIC = 0xA5
_AOF_HDR = struct.Struct("<BBII")
_CRC = struct.Struct("<I")

_RDB_MAGIC = b"REPRO-RDB1"
_RDB_HDR = struct.Struct("<10sHI")
_CHUNK_MAGIC = 0xC7
_CHUNK_HDR = struct.Struct("<BIII")
_FOOTER_MAGIC = 0xF0
_FOOTER = struct.Struct("<BQII")
_ENTRY_HDR = struct.Struct("<II")


class CorruptRecord(Exception):
    """A record failed structural or CRC validation."""


class CorruptionError(CorruptRecord):
    """Interior corruption: valid records exist *beyond* a bad one.

    A torn tail (crash mid-append) is expected and truncates cleanly;
    a CRC failure with decodable records after it means stored data was
    damaged and silently truncating would drop acknowledged writes.
    ``offset`` is where decoding failed, ``resync_at`` where the next
    valid record was found, ``trailing_records`` how many decode from
    there.
    """

    def __init__(self, offset: int, resync_at: int, trailing_records: int):
        super().__init__(
            f"interior corruption at offset {offset}: {trailing_records} "
            f"valid record(s) resume at offset {resync_at}"
        )
        self.offset = offset
        self.resync_at = resync_at
        self.trailing_records = trailing_records


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class AofScanResult:
    """Outcome of :meth:`AofCodec.scan`.

    ``consumed`` is the offset one past the last valid record;
    ``tail_kind`` is ``"clean"`` (end of data / zero padding),
    ``"torn"`` (crash fragment, safe to truncate) or ``"interior"``
    (valid records resume after the failure — real corruption).
    """

    records: list[AofRecord]
    consumed: int
    truncated_at: int | None
    tail_kind: str
    resync_at: int | None
    trailing_records: int


@dataclass(frozen=True)
class AofRecord:
    """One logged write command."""

    op: int
    key: bytes
    value: bytes = b""

    def __post_init__(self) -> None:
        if self.op not in (OP_SET, OP_DEL):
            raise ValueError(f"bad op {self.op}")
        if self.op == OP_DEL and self.value:
            raise ValueError("DEL records carry no value")


class AofCodec:
    """Encode/decode AOF records."""

    @staticmethod
    def encode(record: AofRecord) -> bytes:
        hdr = _AOF_HDR.pack(_AOF_MAGIC, record.op, len(record.key),
                            len(record.value))
        body = hdr + record.key + record.value
        return body + _CRC.pack(_crc(body))

    @staticmethod
    def encoded_size(key_len: int, value_len: int) -> int:
        return _AOF_HDR.size + key_len + value_len + _CRC.size

    @staticmethod
    def decode_stream(data: bytes) -> Iterator[AofRecord]:
        """Yield records until the stream ends or turns invalid.

        A torn tail (crash mid-append) terminates iteration silently —
        exactly Redis's ``aof-load-truncated`` behaviour. This lazy
        decoder cannot tell a torn tail from a corrupt *interior*; use
        :meth:`scan` when that distinction matters (recovery does).
        """
        pos = 0
        n = len(data)
        while pos + _AOF_HDR.size <= n:
            record, end = AofCodec._decode_one(data, pos, n)
            if record is None:
                return
            yield record
            pos = end

    @staticmethod
    def _decode_one(data: bytes, pos: int,
                    n: int) -> tuple[AofRecord | None, int]:
        """Decode the record at ``pos``; (None, pos) if invalid/torn."""
        magic, op, klen, vlen = _AOF_HDR.unpack_from(data, pos)
        if magic != _AOF_MAGIC or op not in (OP_SET, OP_DEL):
            return None, pos
        end = pos + _AOF_HDR.size + klen + vlen + _CRC.size
        if end > n:
            return None, pos  # torn record
        body = data[pos : end - _CRC.size]
        (crc,) = _CRC.unpack_from(data, end - _CRC.size)
        if crc != _crc(body):
            return None, pos
        key = body[_AOF_HDR.size : _AOF_HDR.size + klen]
        value = body[_AOF_HDR.size + klen :]
        return AofRecord(op=op, key=bytes(key), value=bytes(value)), end

    @staticmethod
    def scan(data: bytes, start: int = 0,
             strict: bool = False) -> AofScanResult:
        """Decode with tail classification (the recovery entry point).

        Unlike :meth:`decode_stream`, a decode failure is diagnosed: if
        everything after the failure offset is zero padding or torn
        fragments with no later valid record, the tail is a crash
        artifact ("torn") and truncation is correct. If a CRC-valid
        record chain *resumes* after the failure, the interior of the
        stream was corrupted ("interior") — truncation would silently
        drop acknowledged records, so ``strict=True`` raises
        :class:`CorruptionError` with the offset instead.

        ``start`` resumes a previous scan (offsets stay absolute), which
        lets the WAL adopt pages incrementally without re-decoding.
        """
        records: list[AofRecord] = []
        pos = start
        n = len(data)
        while pos + _AOF_HDR.size <= n:
            record, end = AofCodec._decode_one(data, pos, n)
            if record is None:
                break
            records.append(record)
            pos = end
        if pos >= n or not any(data[pos:]):
            # end of stream or pure zero padding: a clean tail
            return AofScanResult(records=records, consumed=pos,
                                 truncated_at=None, tail_kind="clean",
                                 resync_at=None, trailing_records=0)
        resync_at, trailing = AofCodec._resync(data, pos, n)
        if resync_at is None:
            return AofScanResult(records=records, consumed=pos,
                                 truncated_at=pos, tail_kind="torn",
                                 resync_at=None, trailing_records=0)
        if strict:
            raise CorruptionError(pos, resync_at, trailing)
        return AofScanResult(records=records, consumed=pos,
                             truncated_at=pos, tail_kind="interior",
                             resync_at=resync_at, trailing_records=trailing)

    @staticmethod
    def _resync(data: bytes, pos: int, n: int) -> tuple[int | None, int]:
        """Find the next CRC-valid record after a decode failure."""
        q = pos + 1
        min_size = _AOF_HDR.size + _CRC.size
        while q + min_size <= n:
            q = data.find(_AOF_MAGIC, q, n - min_size + 1)
            if q < 0:
                return None, 0
            record, end = AofCodec._decode_one(data, q, n)
            if record is not None:
                count = 1
                while end + _AOF_HDR.size <= n:
                    record, nxt = AofCodec._decode_one(data, end, n)
                    if record is None:
                        break
                    count += 1
                    end = nxt
                return q, count
            q += 1
        return None, 0


class RdbWriter:
    """Incremental snapshot encoder: header, chunks, footer."""

    def __init__(self, compressor: Compressor | None = None):
        self.compressor = compressor or Compressor()
        self._entries = 0
        self._chunks = 0
        self._finished = False
        self._header_emitted = False

    def header(self) -> bytes:
        if self._header_emitted:
            raise RuntimeError("header already emitted")
        self._header_emitted = True
        return _RDB_HDR.pack(_RDB_MAGIC, 1 if self.compressor.enabled else 0, 0)

    def chunk(self, entries: Iterable[tuple[bytes, bytes]]) -> bytes:
        """Encode one batch of (key, value) pairs."""
        if not self._header_emitted:
            raise RuntimeError("emit header first")
        if self._finished:
            raise RuntimeError("writer finished")
        parts = []
        count = 0
        for key, value in entries:
            parts.append(_ENTRY_HDR.pack(len(key), len(value)))
            parts.append(key)
            parts.append(value)
            count += 1
        raw = b"".join(parts)
        blob = self.compressor.compress(raw)
        hdr = _CHUNK_HDR.pack(_CHUNK_MAGIC, count, len(raw), len(blob))
        body = hdr + blob
        self._entries += count
        self._chunks += 1
        return body + _CRC.pack(_crc(body))

    def footer(self) -> bytes:
        if self._finished:
            raise RuntimeError("footer already emitted")
        self._finished = True
        body = _FOOTER.pack(_FOOTER_MAGIC, self._entries, self._chunks, 0)[: -_CRC.size]
        return body + _CRC.pack(_crc(body))

    @property
    def entries_written(self) -> int:
        return self._entries


class RdbReader:
    """Validating snapshot decoder."""

    def __init__(self, compressor: Compressor | None = None):
        self.compressor = compressor or Compressor()

    def read_all(self, data: bytes) -> list[tuple[bytes, bytes]]:
        """Decode a complete snapshot; raises :class:`CorruptRecord` on
        any structural damage (truncation, bad CRC, missing footer)."""
        out: list[tuple[bytes, bytes]] = []
        pos = self._check_header(data)
        entries = 0
        chunks = 0
        n = len(data)
        while True:
            if pos >= n:
                raise CorruptRecord("snapshot ended before footer")
            magic = data[pos]
            if magic == _FOOTER_MAGIC:
                self._check_footer(data, pos, entries, chunks)
                return out
            if magic != _CHUNK_MAGIC:
                raise CorruptRecord(f"bad chunk magic {magic:#x} at {pos}")
            if pos + _CHUNK_HDR.size > n:
                raise CorruptRecord("truncated chunk header")
            _, count, raw_len, comp_len = _CHUNK_HDR.unpack_from(data, pos)
            end = pos + _CHUNK_HDR.size + comp_len + _CRC.size
            if end > n:
                raise CorruptRecord("truncated chunk body")
            body = data[pos : end - _CRC.size]
            (crc,) = _CRC.unpack_from(data, end - _CRC.size)
            if crc != _crc(body):
                raise CorruptRecord(f"chunk CRC mismatch at {pos}")
            blob = body[_CHUNK_HDR.size :]
            raw = self.compressor.decompress(bytes(blob), raw_len)
            if len(raw) != raw_len:
                raise CorruptRecord("decompressed length mismatch")
            out.extend(self._decode_entries(raw, count))
            entries += count
            chunks += 1
            pos = end

    def _check_header(self, data: bytes) -> int:
        if len(data) < _RDB_HDR.size:
            raise CorruptRecord("truncated header")
        magic, flags, _ = _RDB_HDR.unpack_from(data, 0)
        if magic != _RDB_MAGIC:
            raise CorruptRecord("bad RDB magic")
        compressed = bool(flags & 1)
        if compressed != self.compressor.enabled:
            raise CorruptRecord("compression flag mismatch")
        return _RDB_HDR.size

    def _check_footer(self, data: bytes, pos: int, entries: int,
                      chunks: int) -> None:
        if pos + _FOOTER.size > len(data):
            raise CorruptRecord("truncated footer")
        magic, total_entries, total_chunks, _pad = _FOOTER.unpack_from(data, pos)
        body = data[pos : pos + _FOOTER.size - _CRC.size]
        (crc,) = _CRC.unpack_from(data, pos + _FOOTER.size - _CRC.size)
        if crc != _crc(body):
            raise CorruptRecord("footer CRC mismatch")
        if total_entries != entries or total_chunks != chunks:
            raise CorruptRecord(
                f"footer counts ({total_entries}/{total_chunks}) != "
                f"observed ({entries}/{chunks})"
            )

    @staticmethod
    def _decode_entries(raw: bytes, count: int) -> list[tuple[bytes, bytes]]:
        out = []
        pos = 0
        for _ in range(count):
            if pos + _ENTRY_HDR.size > len(raw):
                raise CorruptRecord("truncated entry header")
            klen, vlen = _ENTRY_HDR.unpack_from(raw, pos)
            pos += _ENTRY_HDR.size
            if pos + klen + vlen > len(raw):
                raise CorruptRecord("truncated entry body")
            out.append((raw[pos : pos + klen], raw[pos + klen : pos + klen + vlen]))
            pos += klen + vlen
        if pos != len(raw):
            raise CorruptRecord("trailing bytes in chunk")
        return out
