"""NVMe device model over the flash FTL.

Exposes the command-level interface the kernel paths talk to:
reads/writes in LBA units (one LBA = one NAND page here), deallocate
(TRIM), and FDP write directives carrying a Placement ID. The device
holds the *real bytes* written to it, so snapshots and WALs written
through any simulated path can be read back and verified.
"""

from repro.nvme.commands import (
    DeallocateCmd,
    NvmeCommand,
    ReadCmd,
    WriteCmd,
)
from repro.nvme.device import DeviceStats, NvmeDevice
from repro.nvme.errors import NvmeError, NvmeTimeout
from repro.nvme.partition import LbaPartition, partition_evenly

__all__ = [
    "NvmeCommand",
    "ReadCmd",
    "WriteCmd",
    "DeallocateCmd",
    "NvmeDevice",
    "DeviceStats",
    "NvmeError",
    "NvmeTimeout",
    "LbaPartition",
    "partition_evenly",
]
