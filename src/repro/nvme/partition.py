"""LBA partitions: carving one namespace into per-tenant windows.

Multi-tenant deployments (``repro.cluster``) put several SlimIO
instances on one physical device. Each instance owns a contiguous LBA
range and must be unable to touch its neighbours' ranges — exactly the
contract an NVM subsystem gives namespaces, modeled here as a thin
offset-and-bounds view over one :class:`~repro.nvme.device.NvmeDevice`.

The partition exposes the same surface the I/O stack consumes
(``submit``, ``lba_size``, ``num_lbas``, ``peek``, ``written_lbas``)
so rings, file systems, and the offline verifier work unchanged on a
partition; timing, FTL state, and GC remain shared — that sharing is
the cross-tenant interference the cluster experiments measure.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Generator

from repro.nvme.commands import DeallocateCmd, NvmeCommand, ReadCmd, WriteCmd
from repro.nvme.device import NvmeDevice

__all__ = ["LbaPartition", "partition_evenly"]


class LbaPartition:
    """A contiguous LBA window of one device, rebased to start at 0."""

    def __init__(self, device: NvmeDevice, base: int, num_lbas: int,
                 name: str = "part"):
        if num_lbas < 1:
            raise ValueError("partition must hold at least one LBA")
        if base < 0 or base + num_lbas > device.num_lbas:
            raise ValueError(
                f"partition [{base}, {base + num_lbas}) outside namespace "
                f"of {device.num_lbas} LBAs"
            )
        self.device = device
        self.base = base
        self._num_lbas = num_lbas
        self.name = name
        self.env = device.env

    # ------------------------------------------------------------------ capacity
    @property
    def num_lbas(self) -> int:
        return self._num_lbas

    @property
    def lba_size(self) -> int:
        return self.device.lba_size

    @property
    def capacity_bytes(self) -> int:
        return self._num_lbas * self.lba_size

    @property
    def fdp(self) -> bool:
        return self.device.fdp

    @property
    def num_pids(self) -> int:
        return self.device.num_pids

    @property
    def ftl(self):
        return self.device.ftl

    @property
    def stats(self):
        return self.device.stats

    @property
    def waf(self) -> float:
        """Device-global WAF (per-shard WAF comes from per-stream stats)."""
        return self.device.waf

    # ------------------------------------------------------------------ service
    def _check(self, lba: int, nlb: int) -> None:
        if lba < 0 or lba + nlb > self._num_lbas:
            raise ValueError(
                f"extent [{lba}, {lba + nlb}) outside partition "
                f"{self.name!r} of {self._num_lbas} LBAs"
            )

    def _rebase(self, cmd: NvmeCommand) -> NvmeCommand:
        self._check(cmd.lba, cmd.nlb)
        return dataclasses.replace(cmd, lba=cmd.lba + self.base)

    def submit(self, cmd: NvmeCommand) -> Generator:
        """Service a command addressed in partition-local LBAs."""
        if not isinstance(cmd, (ReadCmd, WriteCmd, DeallocateCmd)):
            raise TypeError(f"unknown command {cmd!r}")
        result = yield from self.device.submit(self._rebase(cmd))
        return result

    # ------------------------------------------------------------------ data plane
    def peek(self, lba: int, nlb: int = 1) -> bytes:
        self._check(lba, nlb)
        return self.device.peek(lba + self.base, nlb)

    def written_lbas(self) -> int:
        """LBAs holding data *within this partition* (blank-check)."""
        lo, hi = self.base, self.base + self._num_lbas
        return sum(1 for lba in self.device._data if lo <= lba < hi)


def partition_evenly(device: NvmeDevice, count: int,
                     prefix: str = "shard") -> list[LbaPartition]:
    """Split a namespace into ``count`` equal contiguous partitions."""
    if count < 1:
        raise ValueError("need at least one partition")
    size = device.num_lbas // count
    if size < 16:
        raise ValueError(
            f"{device.num_lbas} LBAs across {count} partitions leaves "
            f"{size} LBAs each — below the minimum SlimIO layout"
        )
    return [
        LbaPartition(device, i * size, size, name=f"{prefix}{i}")
        for i in range(count)
    ]
