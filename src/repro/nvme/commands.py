"""NVMe command records.

One LBA equals one NAND page (4 KiB by default geometry); byte-granular
callers (the WAL appender, the snapshot writer) do their own
read-modify-write or buffering above this layer, as real passthru
applications must.

``WriteCmd.pid`` is the FDP Placement Identifier attached to the write
(NVMe directive). On a conventional device it is ignored; on an FDP
device it selects the Reclaim-Unit stream.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NvmeCommand", "ReadCmd", "WriteCmd", "DeallocateCmd"]


@dataclass
class NvmeCommand:
    """Base command: an LBA extent."""

    lba: int
    nlb: int  # number of logical blocks

    def __post_init__(self) -> None:
        if self.lba < 0:
            raise ValueError("negative lba")
        if self.nlb < 1:
            raise ValueError("nlb must be >= 1")


@dataclass
class ReadCmd(NvmeCommand):
    """Read ``nlb`` blocks starting at ``lba``."""


@dataclass
class WriteCmd(NvmeCommand):
    """Write ``data`` (exactly ``nlb`` pages) at ``lba``.

    ``data`` may be None for timing-only traffic (e.g. synthetic GC
    pressure generators); the device then stores a zero page.
    """

    data: bytes | None = None
    pid: int = 0  # FDP placement identifier

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pid < 0:
            raise ValueError("negative pid")


@dataclass
class DeallocateCmd(NvmeCommand):
    """TRIM an extent: drop mapping and stored data."""
