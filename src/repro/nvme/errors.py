"""NVMe error model.

Real controllers fail commands for transient reasons (media retries,
internal resets, thermal throttling aborts) that a host driver is
expected to retry with backoff, and for terminal reasons (power loss)
that it is not. The simulator mirrors that split:

* :class:`NvmeError` — a generic transient command failure. The kernel
  ring (`repro.kernel.iouring`) retries these with bounded exponential
  backoff before surfacing them as CQE errors.
* :class:`NvmeTimeout` — the command never completed within the
  controller's deadline. Also retryable; real drivers abort-and-resubmit.

Power loss is deliberately *not* an exception: a dead device does not
return errors, it returns nothing. `repro.faults.FaultyDevice` models
it as commands that hang forever, so the only way to observe a power
cut is the way a real host does — the machine stops.
"""

from __future__ import annotations

__all__ = ["NvmeError", "NvmeTimeout"]


class NvmeError(Exception):
    """Transient NVMe command failure (retryable).

    ``opcode`` is a short label ("write", "read", "deallocate") and
    ``lba`` the start of the failed extent, for diagnostics.
    """

    def __init__(self, message: str, *, opcode: str = "?", lba: int = -1):
        super().__init__(message)
        self.opcode = opcode
        self.lba = lba


class NvmeTimeout(NvmeError):
    """Command exceeded the controller deadline (retryable)."""
