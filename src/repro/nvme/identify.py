"""NVMe identify data: controller, namespace, and FDP configuration.

The real SlimIO discovers its device's capabilities through NVMe
identify commands — notably the FDP configuration (log page 0x20-ish in
NVMe 2.0): whether FDP is enabled on the endurance group, the Reclaim
Unit size, and how many Reclaim Unit Handles (placement IDs) exist.
SlimIO sizes its LBA regions and placement policy from these answers;
this module provides the same structures so the engine does not bake
in device knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nvme.device import NvmeDevice

__all__ = ["ControllerIdentity", "NamespaceIdentity", "FdpConfig", "identify"]


@dataclass(frozen=True)
class ControllerIdentity:
    """Subset of Identify Controller (CNS 01h) the host cares about."""

    model: str
    serial: str
    firmware: str
    #: max data transfer size, in LBAs per command
    mdts_lbas: int


@dataclass(frozen=True)
class NamespaceIdentity:
    """Subset of Identify Namespace (CNS 00h)."""

    nsid: int
    num_lbas: int
    lba_size: int

    @property
    def capacity_bytes(self) -> int:
        return self.num_lbas * self.lba_size


@dataclass(frozen=True)
class FdpConfig:
    """FDP configuration of the namespace's endurance group."""

    enabled: bool
    #: Reclaim Unit size in bytes (our segment size)
    ru_bytes: int
    #: number of Reclaim Unit Handles (usable placement IDs)
    num_handles: int
    #: reclaim groups (we model one)
    num_reclaim_groups: int = 1


@dataclass(frozen=True)
class DeviceIdentity:
    controller: ControllerIdentity
    namespace: NamespaceIdentity
    fdp: FdpConfig


def identify(device: NvmeDevice) -> DeviceIdentity:
    """Zero-time identify of a simulated device (admin-path query)."""
    g = device.geometry
    return DeviceIdentity(
        controller=ControllerIdentity(
            model="REPRO-SLIMIO-SIM" + ("-FDP" if device.fdp else ""),
            serial=f"S{g.total_dies:02d}D{g.segments:04d}",
            firmware="1.0.0",
            mdts_lbas=1024,
        ),
        namespace=NamespaceIdentity(
            nsid=1,
            num_lbas=device.num_lbas,
            lba_size=device.lba_size,
        ),
        fdp=FdpConfig(
            enabled=device.fdp,
            ru_bytes=g.segment_bytes,
            num_handles=device.num_pids if device.fdp else 0,
        ),
    )
