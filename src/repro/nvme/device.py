"""The NVMe device: command service loop over the FTL.

The device is both a **timing model** (per-page NAND costs, die/channel
contention, GC interference via the FTL) and a **data plane**: it
stores the actual bytes of every written LBA in a sparse page map, so
recovery code reads back exactly what persistence code wrote, byte for
byte, regardless of which kernel path carried the I/O.

FDP vs conventional is a construction-time choice:

* ``fdp=False`` — every write lands in stream 0 whatever its PID, the
  single-stream FTL mixes lifetimes, and GC copies produce WAF > 1.
* ``fdp=True`` — PIDs map 1:1 to FTL streams (up to ``num_pids``,
  8 in the paper's device), giving RU-granular lifetime separation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator

from repro.flash import FlashGeometry, FlashTranslationLayer, FtlConfig, NandTiming
from repro.nvme.commands import DeallocateCmd, NvmeCommand, ReadCmd, WriteCmd
from repro.sim import Environment
from repro.sim.stats import Counter, LatencyRecorder

__all__ = ["NvmeDevice", "DeviceStats"]

_ZERO_PAGE_CACHE: dict[int, bytes] = {}


def _zero_page(size: int) -> bytes:
    page = _ZERO_PAGE_CACHE.get(size)
    if page is None:
        page = bytes(size)
        _ZERO_PAGE_CACHE[size] = page
    return page


@dataclass
class DeviceStats:
    """Host-visible I/O accounting."""

    read_cmds: int = 0
    write_cmds: int = 0
    deallocate_cmds: int = 0
    pages_read: int = 0
    pages_written: int = 0


class NvmeDevice:
    """One namespace of an (optionally FDP) NVMe SSD."""

    def __init__(
        self,
        env: Environment,
        geometry: FlashGeometry | None = None,
        timing: NandTiming | None = None,
        ftl_config: FtlConfig | None = None,
        fdp: bool = False,
        num_pids: int = 8,
        batched: bool = True,
    ):
        self.env = env
        self.geometry = geometry or FlashGeometry()
        self.fdp = fdp
        self.num_pids = num_pids
        self.ftl = FlashTranslationLayer(
            env, self.geometry, timing, ftl_config, batched=batched
        )
        if fdp:
            for pid in range(num_pids):
                self.ftl.register_stream(pid)
        else:
            self.ftl.register_stream(0)
        self._data: dict[int, bytes] = {}
        self.stats = DeviceStats()
        self.counters = Counter()
        self.write_latency = LatencyRecorder("nvme-write")
        self.read_latency = LatencyRecorder("nvme-read")

    # ------------------------------------------------------------------ capacity
    @property
    def num_lbas(self) -> int:
        """Logical capacity in LBAs (= FTL logical pages)."""
        return self.ftl.num_lpns

    @property
    def lba_size(self) -> int:
        return self.geometry.page_size

    @property
    def capacity_bytes(self) -> int:
        return self.num_lbas * self.lba_size

    @property
    def waf(self) -> float:
        return self.ftl.stats.waf

    def _check_extent(self, lba: int, nlb: int) -> None:
        if lba < 0 or lba + nlb > self.num_lbas:
            raise ValueError(
                f"extent [{lba}, {lba + nlb}) outside namespace of {self.num_lbas} LBAs"
            )

    def _stream_for_pid(self, pid: int) -> int:
        if not self.fdp:
            return 0
        if pid >= self.num_pids:
            # NVMe behaviour: out-of-range placement handles fall back
            # to default placement (stream 0) rather than erroring.
            return 0
        return pid

    # ------------------------------------------------------------------ service
    def submit(self, cmd: NvmeCommand) -> Generator:
        """Service one command; a generator for process composition.

        Pages within a command are issued concurrently (the device has
        internal parallelism); the command completes when its last page
        completes — like a real controller's completion semantics.
        """
        t0 = self.env.now
        if isinstance(cmd, WriteCmd):
            yield from self._do_write(cmd)
            self.write_latency.record(self.env.now - t0)
        elif isinstance(cmd, ReadCmd):
            data = yield from self._do_read(cmd)
            self.read_latency.record(self.env.now - t0)
            return data
        elif isinstance(cmd, DeallocateCmd):
            self._check_extent(cmd.lba, cmd.nlb)
            self.ftl.deallocate(cmd.lba, cmd.nlb)
            for lba in range(cmd.lba, cmd.lba + cmd.nlb):
                self._data.pop(lba, None)
            self.stats.deallocate_cmds += 1
        else:
            raise TypeError(f"unknown command {cmd!r}")

    def _do_write(self, cmd: WriteCmd) -> Generator:
        self._check_extent(cmd.lba, cmd.nlb)
        page = self.lba_size
        if cmd.data is not None and len(cmd.data) != cmd.nlb * page:
            raise ValueError(
                f"data length {len(cmd.data)} != nlb*page {cmd.nlb * page}"
            )
        stream = self._stream_for_pid(cmd.pid)
        for i in range(cmd.nlb):
            lba = cmd.lba + i
            if cmd.data is not None:
                self._data[lba] = cmd.data[i * page : (i + 1) * page]
            else:
                self._data[lba] = _zero_page(page)
        yield from self.ftl.write_burst(cmd.lba, cmd.nlb, stream)
        self.stats.write_cmds += 1
        self.stats.pages_written += cmd.nlb

    def _do_read(self, cmd: ReadCmd) -> Generator:
        self._check_extent(cmd.lba, cmd.nlb)
        yield from self.ftl.read_burst(cmd.lba, cmd.nlb)
        self.stats.read_cmds += 1
        self.stats.pages_read += cmd.nlb
        return self.peek(cmd.lba, cmd.nlb)

    # ------------------------------------------------------------------ data plane
    def peek(self, lba: int, nlb: int = 1) -> bytes:
        """Zero-time read of stored bytes (for assertions and recovery
        result construction; timing must be paid via ``submit``)."""
        self._check_extent(lba, nlb)
        page = self.lba_size
        return b"".join(self._data.get(lba + i, _zero_page(page)) for i in range(nlb))

    def written_lbas(self) -> int:
        return len(self._data)

    def poke(self, lba: int, data: bytes) -> None:
        """Zero-time write of stored bytes (whole pages only).

        This is the data-plane dual of :meth:`peek`: it updates the
        sparse page map without paying NAND timing or touching the FTL
        mapping. Fault injection uses it to materialize the pages of a
        torn command that survived a power cut, and crash harnesses use
        it to transplant a surviving image onto a fresh device. An
        all-zero page is stored as "never written" (dropped from the
        map), matching what a post-crash read would observe either way.
        """
        page = self.lba_size
        if len(data) % page:
            raise ValueError(f"poke data length {len(data)} not page-aligned")
        nlb = len(data) // page
        self._check_extent(lba, nlb)
        zero = _zero_page(page)
        for i in range(nlb):
            chunk = data[i * page : (i + 1) * page]
            if chunk == zero:
                self._data.pop(lba + i, None)
            else:
                self._data[lba + i] = chunk

    def image(self) -> dict[int, bytes]:
        """Snapshot of the persisted data plane: {lba: page bytes}.

        This is exactly what survives a power cut — the durable state a
        crash harness reboots from.
        """
        return dict(self._data)

    def load_image(self, image: dict[int, bytes]) -> None:
        """Load a persisted image (from :meth:`image`) onto this device.

        Only the data plane is transplanted; the FTL starts cold, as a
        real drive's L2P rebuild is invisible to the host. Used by crash
        harnesses to boot a fresh simulation on a surviving image.
        """
        page = self.lba_size
        for lba, data in image.items():
            if len(data) != page:
                raise ValueError(f"image page at lba {lba} has {len(data)} bytes")
            self._check_extent(lba, 1)
        self._data.update(image)
