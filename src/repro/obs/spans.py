"""Span timing: context managers over simulated time.

A :class:`Span` brackets a region of a simulation process — WAL flush,
snapshot write, GC reclaim, recovery replay — recording its start/end
on the simulation clock. Spans are context managers, so they compose
naturally with generator-based processes::

    with obs.span("wal_flush", track="wal", policy="periodical"):
        yield from self._drain_locked(fsync=False)

Each completed span lands in the owning registry's span log and emits
begin/end records into the registry's :class:`~repro.sim.tracing.Tracer`
(so the merged chronology and the span timeline stay in lockstep).

``maybe_span`` is the zero-cost entry point for instrumented
components: when no registry is attached it returns a shared no-op
context manager and touches nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry

__all__ = ["SpanRecord", "Span", "NULL_SPAN", "maybe_span"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span on the simulation timeline."""

    name: str
    track: str
    t0: float
    t1: float
    labels: dict = field(default_factory=dict)
    ok: bool = True

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Span:
    """A live span; created via :meth:`MetricsRegistry.span`."""

    __slots__ = ("registry", "name", "track", "labels", "t0", "t1")

    def __init__(self, registry: MetricsRegistry, name: str, track: str,
                 labels: dict):
        self.registry = registry
        self.name = name
        self.track = track
        self.labels = labels
        self.t0: float | None = None
        self.t1: float | None = None

    def __enter__(self) -> Span:
        self.t0 = self.registry.env.now
        self.registry.tracer.emit(self.track, f"{self.name}:begin",
                                  self.labels or None)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.t1 = self.registry.env.now
        ok = exc_type is None
        self.registry.tracer.emit(
            self.track, f"{self.name}:end" if ok else f"{self.name}:error",
            self.labels or None,
        )
        self.registry._record_span(
            SpanRecord(self.name, self.track, self.t0, self.t1,
                       self.labels, ok)
        )
        return False  # never swallow exceptions


class _NullSpan:
    """Shared no-op span used when no registry is attached."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


def maybe_span(registry: MetricsRegistry | None, name: str,
               track: str = "main", **labels):
    """A span on ``registry``, or a no-op when none is attached."""
    if registry is None:
        return NULL_SPAN
    return registry.span(name, track=track, **labels)
