"""Unified telemetry: metrics registry, spans, and run exporters.

One :class:`MetricsRegistry` per system captures counters, gauges,
histograms, spans, and an event log; ``attach_registry`` wires it
through every layer of a built system; the exporters serialize a run
to JSONL, Prometheus text, or a Chrome trace. See
``docs/OBSERVABILITY.md`` for the naming scheme and span hierarchy.

Instrumented components hold ``obs = None`` until attached and guard
every telemetry touch with ``if self.obs is not None`` — an
uninstrumented run does zero extra work and is event-for-event
identical to one that never imported this package.
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_records,
    load_jsonl,
    prometheus_text,
    summarize_records,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.registry import (
    LabeledRegistry,
    MetricsRegistry,
    ObsCounter,
    ObsGauge,
    ObsHistogram,
    render_metric_name,
)
from repro.obs.spans import NULL_SPAN, Span, SpanRecord, maybe_span
from repro.obs.trace import (
    RequestTracer,
    TraceContext,
    TraceSpan,
    critical_path,
    format_tail_table,
    format_waterfall,
    load_trace_jsonl,
    overlay_spans,
    perfetto_trace,
    tail_report,
    trace_jsonl_records,
    validate_trace,
    write_trace_jsonl,
)
from repro.obs.wiring import attach_registry, attach_tracer

__all__ = [
    "MetricsRegistry",
    "LabeledRegistry",
    "ObsCounter",
    "ObsGauge",
    "ObsHistogram",
    "render_metric_name",
    "Span",
    "SpanRecord",
    "NULL_SPAN",
    "maybe_span",
    "attach_registry",
    "attach_tracer",
    "RequestTracer",
    "TraceContext",
    "TraceSpan",
    "critical_path",
    "tail_report",
    "validate_trace",
    "format_waterfall",
    "format_tail_table",
    "overlay_spans",
    "trace_jsonl_records",
    "write_trace_jsonl",
    "load_trace_jsonl",
    "perfetto_trace",
    "jsonl_records",
    "write_jsonl",
    "load_jsonl",
    "prometheus_text",
    "write_prometheus",
    "chrome_trace",
    "write_chrome_trace",
    "summarize_records",
]
