"""The label-aware metrics registry.

One :class:`MetricsRegistry` holds every instrument of one system
(or one run): monotonic :class:`ObsCounter`\\ s, :class:`ObsGauge`\\ s
with low/high watermarks, and :class:`ObsHistogram`\\ s with bounded
reservoirs, each keyed by ``(name, labels)``. It also owns the span
log (see :mod:`repro.obs.spans`) and a timestamped event log, so one
object captures everything an exporter needs.

Instruments are get-or-create: ``registry.counter("wal_flushes",
path="wal")`` returns the same object every time, so components fetch
their handles once at attach time and hot paths touch only plain
attribute math. Components that were never attached skip all of it —
the instrumentation contract is *zero work without a registry*.
"""

from __future__ import annotations

import zlib
from array import array

import numpy as np

from repro.obs.spans import Span, SpanRecord
from repro.sim.engine import Environment
from repro.sim.tracing import Tracer

__all__ = ["ObsCounter", "ObsGauge", "ObsHistogram", "MetricsRegistry",
           "LabeledRegistry", "render_metric_name"]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class ObsCounter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def summary(self) -> dict:
        return {"value": self.value}


class ObsGauge:
    """An instantaneous value with low/high watermarks.

    A gauge can instead be bound to a callback (``fn``) for values that
    live elsewhere — e.g. the live WAF, which is a ratio the FTL
    already maintains; callback gauges are sampled at read time, so
    they are exactly as fresh as the underlying statistic.
    """

    __slots__ = ("name", "labels", "_value", "_fn", "low_water", "high_water")
    kind = "gauge"

    def __init__(self, name: str, labels: dict, fn=None):
        self.name = name
        self.labels = labels
        self._fn = fn
        self._value = 0.0
        self.low_water = float("inf")
        self.high_water = float("-inf")

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-bound")
        self._value = value
        if value < self.low_water:
            self.low_water = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def summary(self) -> dict:
        out = {"value": self.value}
        if self.low_water != float("inf"):
            out["low_water"] = self.low_water
            out["high_water"] = self.high_water
        return out


class ObsHistogram:
    """Sample distribution with a bounded reservoir.

    Count / sum / min / max are exact whatever the volume; percentiles
    come from a fixed-size reservoir (Vitter's algorithm R with a
    deterministic per-instrument RNG, so runs stay reproducible).
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_res_mv", "_res_np", "_rsize", "_cap", "_rng",
                 "_randbuf", "_randpos")
    kind = "histogram"

    def __init__(self, name: str, labels: dict, reservoir: int = 512):
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # preallocated reservoir: memoryview scalar stores on the
        # observe() hot path, a zero-copy numpy view for percentiles
        buf = array("d", [0.0]) * reservoir
        self._res_mv = memoryview(buf)
        self._res_np = np.frombuffer(buf, dtype=np.float64)
        self._rsize = 0
        self._cap = reservoir
        # crc32, not hash(): builtin string hashing is salted by
        # PYTHONHASHSEED, so a hash-derived seed differs from process
        # to process and reservoir percentiles stop reproducing
        seed = zlib.crc32(repr((name,) + _label_key(labels)).encode())
        self._rng = np.random.default_rng(seed)
        # raw 63-bit draws are buffered in bulk: one generator call per
        # observation dwarfs the rest of this method on the hot path
        self._randbuf = ()
        self._randpos = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        n = self._rsize
        if n < self._cap:
            self._res_mv[n] = value
            self._rsize = n + 1
        else:
            i = self._randpos
            if i >= len(self._randbuf):
                self._randbuf = self._rng.integers(
                    0, 1 << 63, size=1024, dtype=np.int64
                ).tolist()
                i = 0
            self._randpos = i + 1
            j = self._randbuf[i] % self.count
            if j < self._cap:
                self._res_mv[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def reservoir(self) -> list[float]:
        """The sampled values (a copy; at most ``reservoir`` entries)."""
        return self._res_np[: self._rsize].tolist()

    def percentile(self, q: float) -> float:
        if not self._rsize:
            return float("nan")
        return float(np.percentile(self._res_np[: self._rsize], q))

    def summary(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """All telemetry of one system: instruments + spans + events."""

    def __init__(self, env: Environment, name: str = "run",
                 trace_capacity: int = 65536,
                 span_capacity: int = 1 << 20):
        self.env = env
        self.name = name
        #: span begin/end chronology, ring-buffered (oldest evicted)
        self.tracer = Tracer(env, capacity=trace_capacity)
        self._instruments: dict[tuple, object] = {}
        self._spans: list[SpanRecord] = []
        self._span_capacity = span_capacity
        self.spans_dropped = 0
        self._events: list[dict] = []

    # ------------------------------------------------------------ instruments
    def _get(self, cls, name: str, labels: dict, **kw):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, labels, **kw)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"{name}{labels} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, **labels) -> ObsCounter:
        return self._get(ObsCounter, name, labels)

    def gauge(self, name: str, fn=None, **labels) -> ObsGauge:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = ObsGauge(name, labels, fn=fn)
            self._instruments[key] = inst
        elif not isinstance(inst, ObsGauge):
            raise TypeError(f"{name}{labels} already registered as {inst.kind}")
        return inst

    def histogram(self, name: str, reservoir: int = 512,
                  **labels) -> ObsHistogram:
        return self._get(ObsHistogram, name, labels, reservoir=reservoir)

    def instruments(self):
        """All instruments in registration order."""
        return list(self._instruments.values())

    def labeled(self, **labels) -> LabeledRegistry:
        """A view of this registry that stamps ``labels`` on everything.

        Multi-tenant deployments attach one view per tenant (e.g.
        ``registry.labeled(shard="shard2")``) so a single registry — and
        a single export — tells tenants apart by label.
        """
        return LabeledRegistry(self, labels)

    # ------------------------------------------------------------ spans/events
    def span(self, name: str, track: str = "main", **labels) -> Span:
        return Span(self, name, track, labels)

    def _record_span(self, record: SpanRecord) -> None:
        if len(self._spans) >= self._span_capacity:
            self._spans.pop(0)
            self.spans_dropped += 1
        self._spans.append(record)

    @property
    def spans(self) -> list[SpanRecord]:
        return self._spans

    def spans_named(self, name: str) -> list[SpanRecord]:
        return [s for s in self._spans if s.name == name]

    def event(self, name: str, **fields) -> None:
        """Append one timestamped entry to the run event log."""
        self._events.append({"t": self.env.now, "name": name, **fields})

    @property
    def events(self) -> list[dict]:
        return self._events

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> dict[str, dict]:
        """Final values of every instrument, keyed by rendered name.

        The rendered key is the Prometheus form:
        ``name{label="value",...}``.
        """
        out: dict[str, dict] = {}
        for inst in self._instruments.values():
            out[render_metric_name(inst.name, inst.labels)] = {
                "kind": inst.kind, **inst.summary()
            }
        return out


class LabeledRegistry:
    """A label-injecting view over a :class:`MetricsRegistry`.

    Exposes the full registry surface; every instrument, span, and
    event created through the view carries the view's fixed labels
    (call-site labels win on key collision). Views are cheap and
    stateless — all storage lives in the base registry, so exporters
    keep working on the base object unchanged.
    """

    def __init__(self, base: MetricsRegistry, labels: dict):
        # collapse view-of-view so instruments always live in the root
        if isinstance(base, LabeledRegistry):
            labels = {**base.base_labels, **labels}
            base = base.base
        self.base = base
        self.base_labels = dict(labels)

    # pass-through state -------------------------------------------------
    @property
    def env(self) -> Environment:
        return self.base.env

    @property
    def name(self) -> str:
        return self.base.name

    @property
    def tracer(self) -> Tracer:
        return self.base.tracer

    @property
    def spans(self) -> list[SpanRecord]:
        return self.base.spans

    @property
    def events(self) -> list[dict]:
        return self.base.events

    def instruments(self):
        return self.base.instruments()

    def snapshot(self) -> dict[str, dict]:
        return self.base.snapshot()

    def spans_named(self, name: str) -> list[SpanRecord]:
        return self.base.spans_named(name)

    def _record_span(self, record: SpanRecord) -> None:
        self.base._record_span(record)

    # label-injecting surface --------------------------------------------
    def _merge(self, labels: dict) -> dict:
        return {**self.base_labels, **labels}

    def counter(self, name: str, **labels) -> ObsCounter:
        return self.base.counter(name, **self._merge(labels))

    def gauge(self, name: str, fn=None, **labels) -> ObsGauge:
        return self.base.gauge(name, fn=fn, **self._merge(labels))

    def histogram(self, name: str, reservoir: int = 512,
                  **labels) -> ObsHistogram:
        return self.base.histogram(name, reservoir=reservoir,
                                   **self._merge(labels))

    def span(self, name: str, track: str = "main", **labels) -> Span:
        return self.base.span(name, track=track, **self._merge(labels))

    def event(self, name: str, **fields) -> None:
        self.base.event(name, **self._merge(fields))

    def labeled(self, **labels) -> LabeledRegistry:
        return LabeledRegistry(self, labels)


def render_metric_name(name: str, labels: dict) -> str:
    if not labels:
        return name
    body = ",".join(
        f'{k}="{v}"' for k, v in sorted(
            (str(k), str(v)) for k, v in labels.items()
        )
    )
    return f"{name}{{{body}}}"
