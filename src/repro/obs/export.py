"""Run exporters: JSONL event log, Prometheus text, Chrome trace.

Three serializations of one :class:`~repro.obs.registry.MetricsRegistry`:

* **JSONL** — the run record: one JSON object per line (meta, then
  every span, every event-log entry, then the final value of every
  instrument). This is the format ``python -m repro.obs summarize``
  reads back, and the stable interchange format between runs.
* **Prometheus text** — the familiar exposition dump
  (``name{label="v"} value``) for final counter/gauge values and
  histogram summaries; diffable across runs, greppable in CI logs.
* **Chrome trace-event JSON** — the span timeline as complete (``"X"``)
  events, one row (tid) per track, loadable in ``chrome://tracing`` or
  Perfetto to *see* a snapshot overlapping a GC reclaim train.

Simulation time is seconds; trace timestamps are microseconds per the
trace-event spec.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator

from repro.obs.registry import MetricsRegistry, render_metric_name

__all__ = [
    "jsonl_records",
    "write_jsonl",
    "prometheus_text",
    "write_prometheus",
    "chrome_trace",
    "write_chrome_trace",
    "load_jsonl",
    "summarize_records",
]


# --------------------------------------------------------------------- JSONL
def jsonl_records(registry: MetricsRegistry) -> Iterator[dict]:
    """The run record as an ordered stream of plain dicts."""
    yield {
        "type": "meta",
        "run": registry.name,
        "sim_time": registry.env.now,
        "spans": len(registry.spans),
        "spans_dropped": registry.spans_dropped,
        "instruments": len(registry.instruments()),
    }
    for s in registry.spans:
        yield {
            "type": "span", "name": s.name, "track": s.track,
            "t0": s.t0, "t1": s.t1, "dur": s.duration,
            "labels": s.labels, "ok": s.ok,
        }
    for ev in registry.events:
        yield {"type": "event", **ev}
    for inst in registry.instruments():
        yield {
            "type": inst.kind, "name": inst.name, "labels": inst.labels,
            **inst.summary(),
        }


def write_jsonl(registry: MetricsRegistry, path) -> int:
    """Write the run record; returns the number of lines written."""
    n = 0
    with open(path, "w") as f:
        for rec in jsonl_records(registry):
            f.write(json.dumps(rec) + "\n")
            n += 1
    return n


def load_jsonl(path) -> list[dict]:
    """Read a run record back (blank lines tolerated)."""
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ---------------------------------------------------------------- Prometheus
def _prom_value(v: float) -> str:
    if v != v:  # nan
        return "NaN"
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    return repr(float(v))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition format of every instrument's final state."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for inst in registry.instruments():
        prom_kind = "counter" if inst.kind == "counter" else "gauge"
        if inst.name not in seen_types:
            lines.append(f"# TYPE {inst.name} "
                         f"{'summary' if inst.kind == 'histogram' else prom_kind}")
            seen_types.add(inst.name)
        if inst.kind == "histogram":
            base = dict(inst.labels)
            s = inst.summary()
            lines.append(
                f"{render_metric_name(inst.name + '_count', base)} "
                f"{_prom_value(s.get('count', 0))}"
            )
            lines.append(
                f"{render_metric_name(inst.name + '_sum', base)} "
                f"{_prom_value(s.get('sum', 0.0))}"
            )
            # no observations -> no quantile lines: an empty summary
            # must not expose NaN (it diffs dirty and trips scrapers)
            if s.get("count"):
                for q in (50, 99):
                    lines.append(
                        f"{render_metric_name(inst.name, {**base, 'quantile': f'0.{q}'})} "
                        f"{_prom_value(inst.percentile(q))}"
                    )
        else:
            lines.append(
                f"{render_metric_name(inst.name, inst.labels)} "
                f"{_prom_value(inst.value)}"
            )
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path) -> None:
    with open(path, "w") as f:
        f.write(prometheus_text(registry))


# -------------------------------------------------------------- Chrome trace
def chrome_trace(spans: Iterable, run_name: str = "run") -> dict:
    """Trace-event JSON from span records (objects or JSONL dicts)."""
    tids: dict[str, int] = {}
    events: list[dict] = []
    for s in spans:
        if isinstance(s, dict):
            name, track = s["name"], s["track"]
            t0, t1, labels = s["t0"], s["t1"], s.get("labels") or {}
        else:
            name, track = s.name, s.track
            t0, t1, labels = s.t0, s.t1, s.labels
        tid = tids.setdefault(track, len(tids) + 1)
        events.append({
            "name": name,
            "cat": track,
            "ph": "X",
            "ts": t0 * 1e6,
            "dur": max((t1 - t0) * 1e6, 0.001),
            "pid": 1,
            "tid": tid,
            "args": {str(k): str(v) for k, v in labels.items()},
        })
    meta = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": run_name}},
    ]
    for track, tid in tids.items():
        meta.append({"name": "thread_name", "ph": "M", "pid": 1,
                     "tid": tid, "args": {"name": track}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(registry_or_spans, path, run_name: str = "run") -> int:
    """Write a Chrome trace; returns the number of span events."""
    if isinstance(registry_or_spans, MetricsRegistry):
        spans = registry_or_spans.spans
        run_name = registry_or_spans.name
    else:
        spans = registry_or_spans
    trace = chrome_trace(spans, run_name=run_name)
    with open(path, "w") as f:
        json.dump(trace, f)
    return sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")


# ----------------------------------------------------------------- summaries
def _fmt_seconds(x: float) -> str:
    if x != x:
        return "-"
    if x >= 1.0:
        return f"{x:.3f} s"
    if x >= 1e-3:
        return f"{x * 1e3:.3f} ms"
    return f"{x * 1e6:.1f} us"


def summarize_records(records: list[dict]) -> str:
    """Human summary of a loaded JSONL run record."""
    meta = next((r for r in records if r.get("type") == "meta"), {})
    spans = [r for r in records if r.get("type") == "span"]
    counters = [r for r in records if r.get("type") == "counter"]
    gauges = [r for r in records if r.get("type") == "gauge"]
    hists = [r for r in records if r.get("type") == "histogram"]
    events = [r for r in records if r.get("type") == "event"]

    out: list[str] = []
    out.append(f"run: {meta.get('run', '?')}   "
               f"sim time: {meta.get('sim_time', float('nan')):.6f} s   "
               f"spans: {len(spans)}   instruments: "
               f"{len(counters) + len(gauges) + len(hists)}")

    if spans:
        out.append("")
        out.append("spans (by name):")
        by_name: dict[str, list[dict]] = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        header = f"  {'name':28s} {'track':10s} {'count':>6s} " \
                 f"{'total':>12s} {'mean':>12s} {'max':>12s}"
        out.append(header)
        for name in sorted(by_name):
            group = by_name[name]
            durs = [s["dur"] for s in group]
            out.append(
                f"  {name:28s} {group[0]['track']:10s} {len(group):6d} "
                f"{_fmt_seconds(sum(durs)):>12s} "
                f"{_fmt_seconds(sum(durs) / len(durs)):>12s} "
                f"{_fmt_seconds(max(durs)):>12s}"
            )

    if counters:
        out.append("")
        out.append("counters:")
        for c in sorted(counters, key=lambda r: r["name"]):
            out.append(f"  {render_metric_name(c['name'], c['labels']):58s} "
                       f"{c.get('value', 0):,.0f}")

    # fault-campaign forensics: anything the injector did plus how the
    # ring coped; zero-valued retry counters are still shown so a clean
    # run reads as explicitly clean
    faulty = [c for c in counters
              if c["name"].startswith(("faults_", "uring_retr"))]
    if faulty:
        out.append("")
        out.append("faults & retries:")
        injected = sum(c.get("value", 0) for c in faulty
                       if c["name"].startswith("faults_"))
        retried = sum(c.get("value", 0) for c in faulty
                      if c["name"] == "uring_retries_total")
        gaveup = sum(c.get("value", 0) for c in faulty
                     if c["name"] == "uring_retry_giveups_total")
        out.append(f"  injected events: {injected:,.0f}   "
                   f"ring retries: {retried:,.0f}   "
                   f"give-ups: {gaveup:,.0f}")
        for c in sorted(faulty, key=lambda r: r["name"]):
            out.append(f"  {render_metric_name(c['name'], c['labels']):58s} "
                       f"{c.get('value', 0):,.0f}")
    if gauges:
        out.append("")
        out.append("gauges:")
        for g in sorted(gauges, key=lambda r: r["name"]):
            extra = ""
            if "low_water" in g:
                extra = (f"   [low {g['low_water']:,.4g} / "
                         f"high {g['high_water']:,.4g}]")
            out.append(f"  {render_metric_name(g['name'], g['labels']):58s} "
                       f"{g.get('value', 0):,.4g}{extra}")
    if hists:
        out.append("")
        out.append("histograms:")
        for h in sorted(hists, key=lambda r: r["name"]):
            if not h.get("count"):
                continue
            out.append(
                f"  {render_metric_name(h['name'], h['labels']):58s} "
                f"n={h['count']:<8,d} mean={h['mean']:.4g} "
                f"p50={h['p50']:.4g} p99={h['p99']:.4g} max={h['max']:.4g}"
            )
    if events:
        out.append("")
        out.append(f"event log: {len(events)} entries "
                   f"(first at t={events[0]['t']:.6f}, "
                   f"last at t={events[-1]['t']:.6f})")
    return "\n".join(out)
