"""Request-level causal tracing and tail-latency forensics.

Aggregate telemetry (PR 1) shows *that* p999 moved; this module shows
*why*.  Every client op gets a :class:`TraceContext` whose id follows
the request through server -> WAL append -> io_uring submit/complete ->
pagecache writeback -> NVMe command -> NAND program, as a tree of
:class:`TraceSpan` with parent/child links and sim-clock timestamps.

Three problems make this harder than thread-local context:

* **Processes, not threads.**  The simulator multiplexes thousands of
  generator processes on one OS thread, so "current request" must be
  tracked per :class:`~repro.sim.engine.Process`.  The engine sets
  ``env.active_process`` on *every* resume path (including the
  ``fast_resume`` inline path), so a plain dict keyed by the active
  process is exact in all lanes.
* **Cross-process handoffs.**  ``ring.submit()`` runs in the caller's
  process but the command is serviced by a fresh ``-svc`` process.
  The caller :meth:`RequestTracer.capture`\\ s its scope and the service
  process :meth:`RequestTracer.adopt`\\ s it.
* **Group commit.**  Under Periodical logging the WAL drain runs in a
  background flusher process and retires *many* staged requests at
  once.  The drain runs under an anonymous *background* context and
  its ``wal_flush`` span carries causal ``links`` to every trace id it
  made durable; linked spans are additionally recorded to a bounded
  background buffer so blame analysis works even when the flushing
  process served no (kept) request of its own.

Retention is head sampling (1-in-N) plus an always-keep-slowest
reservoir, so ``fast_sim`` lanes stay fast and the p999 stories are
never sampled away.  Tracing off (``rtrace is None`` everywhere) does
no work and creates zero simulator events.
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "TraceSpan",
    "TraceContext",
    "RequestTracer",
    "Attribution",
    "TailRow",
    "TailReport",
    "critical_path",
    "dominant_layer",
    "attribute_interference",
    "tail_report",
    "validate_trace",
    "format_waterfall",
    "format_tail_table",
    "overlay_spans",
    "OverlaySpan",
    "trace_jsonl_records",
    "write_trace_jsonl",
    "load_trace_jsonl",
    "perfetto_trace",
]

#: render/export order of the layers a request crosses, top to bottom
LAYERS = ("net", "server", "wal", "pagecache", "nvme", "ftl", "nand")

_DEVICE_LAYERS = frozenset(("nvme", "ftl", "nand"))


class TraceSpan:
    """One timed operation inside one trace.

    ``t1 is None`` while the span is open; a trace harvested after a
    power cut may legitimately contain spans closed by
    :meth:`RequestTracer.drain_open` with ``ok=False`` and a
    ``truncated`` label.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "layer",
                 "t0", "t1", "labels", "links", "ok")

    def __init__(self, trace_id, span_id, parent_id, name, layer, t0,
                 t1=None, labels=None, links=(), ok=True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.layer = layer
        self.t0 = t0
        self.t1 = t1
        self.labels = labels or {}
        self.links = tuple(links)
        self.ok = ok

    @property
    def duration(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def to_dict(self) -> dict:
        d = {
            "trace_id": self.trace_id, "span_id": self.span_id,
            "parent_id": self.parent_id, "name": self.name,
            "layer": self.layer, "t0": self.t0, "t1": self.t1,
        }
        if self.labels:
            d["labels"] = self.labels
        if self.links:
            d["links"] = list(self.links)
        if not self.ok:
            d["ok"] = False
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TraceSpan":
        return cls(d["trace_id"], d["span_id"], d.get("parent_id"),
                   d["name"], d["layer"], d["t0"], d.get("t1"),
                   labels=d.get("labels") or {},
                   links=tuple(d.get("links") or ()),
                   ok=d.get("ok", True))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceSpan({self.trace_id}:{self.span_id} {self.name}"
                f"@{self.layer} [{self.t0}, {self.t1}])")


class TraceContext:
    """One request's (or one background activity's) trace."""

    __slots__ = ("trace_id", "name", "tenant", "t0", "t1", "spans",
                 "sampled", "background", "truncated")

    def __init__(self, trace_id, name, tenant="", t0=0.0,
                 sampled=False, background=False):
        self.trace_id = trace_id
        self.name = name
        self.tenant = tenant
        self.t0 = t0
        self.t1 = None
        self.spans: list[TraceSpan] = []
        self.sampled = sampled
        self.background = background
        self.truncated = False

    @property
    def duration(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def root(self) -> TraceSpan | None:
        for s in self.spans:
            if s.parent_id is None:
                return s
        return None

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id, "name": self.name,
            "tenant": self.tenant, "t0": self.t0, "t1": self.t1,
            "sampled": self.sampled, "truncated": self.truncated,
        }


class _Scope:
    """Per-process binding: the active context + open-span stack."""

    __slots__ = ("ctx", "stack")

    def __init__(self, ctx: TraceContext, stack: list[int]):
        self.ctx = ctx
        self.stack = stack


class RequestTracer:
    """Collects causal traces; creates **zero** simulator events.

    ``sample_every``: head sampling, keep every Nth request in full.
    ``keep_slowest``: on top of sampling, a reservoir of the K slowest
    requests seen so far (the tail-forensics working set).
    """

    def __init__(self, env, sample_every: int = 8, keep_slowest: int = 32,
                 background_capacity: int = 4096):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.env = env
        self.sample_every = sample_every
        self.keep_slowest = keep_slowest
        self.requests_seen = 0
        self.requests_dropped = 0
        #: kept traces by id (sampled + slowest reservoir + truncated)
        self.kept: dict[int, TraceContext] = {}
        #: flat spans from background contexts and every linked span
        self.background: deque[TraceSpan] = deque(maxlen=background_capacity)
        self._scopes: dict[object, _Scope] = {}
        self._slow: list[tuple[float, int]] = []   # (duration, trace_id) min-heap
        self._span_seq = 0
        self._bg_seq = 0
        self._staged_wal: list[tuple[int, int]] = []   # (wal seq, trace id)

    # ------------------------------------------------------------ scope
    def _scope(self) -> _Scope | None:
        return self._scopes.get(self.env.active_process)

    def current(self) -> TraceContext | None:
        """The context bound to the running process, if any."""
        sc = self._scopes.get(self.env.active_process)
        return sc.ctx if sc is not None else None

    # ------------------------------------------------------------ requests
    def start_request(self, name: str, tenant: str = "",
                      layer: str = "server", t0: float | None = None,
                      **labels) -> TraceContext:
        """Open a trace for the op the *current* process is serving.

        ``layer`` tags the root span; the connection front end opens
        requests at layer ``"net"`` so queue residency before the
        server CPU is part of the trace.  ``t0`` backdates the trace to
        the request's *intended* start (open-loop schedules): the trace
        duration then matches the coordinated-omission-free latency."""
        self.requests_seen += 1
        tid = self.requests_seen
        now = self.env.now if t0 is None else t0
        ctx = TraceContext(tid, name, tenant, now,
                           sampled=(tid % self.sample_every) == 0)
        self._span_seq += 1
        root = TraceSpan(tid, self._span_seq, None, name, layer, now,
                         labels=dict(labels) if labels else None)
        ctx.spans.append(root)
        self._scopes[self.env.active_process] = _Scope(ctx, [root.span_id])
        return ctx

    def finish_request(self, ctx: TraceContext, ok: bool = True) -> None:
        now = self.env.now
        ctx.t1 = now
        root = ctx.root
        if root is not None and root.t1 is None:
            root.t1 = now
            root.ok = ok
        proc = self.env.active_process
        sc = self._scopes.get(proc)
        if sc is not None and sc.ctx is ctx:
            del self._scopes[proc]
        self._retain(ctx)

    def _retain(self, ctx: TraceContext) -> None:
        if ctx.sampled or ctx.truncated:
            self.kept[ctx.trace_id] = ctx
            return
        dur = ctx.duration
        if len(self._slow) < self.keep_slowest:
            heapq.heappush(self._slow, (dur, ctx.trace_id))
            self.kept[ctx.trace_id] = ctx
        elif self._slow and dur > self._slow[0][0]:
            _, evicted = heapq.heapreplace(self._slow, (dur, ctx.trace_id))
            old = self.kept.get(evicted)
            if old is not None and not (old.sampled or old.truncated):
                del self.kept[evicted]
            self.kept[ctx.trace_id] = ctx
            self.requests_dropped += 1
        else:
            self.requests_dropped += 1

    # ------------------------------------------------------------ handoff
    def capture(self):
        """Snapshot the current scope for a cross-process handoff
        (attach the result to the in-flight command)."""
        sc = self._scope()
        if sc is None:
            return None
        return (sc.ctx, sc.stack[-1])

    def adopt(self, handoff) -> None:
        """Bind a captured scope to the *current* process."""
        ctx, parent = handoff
        self._scopes[self.env.active_process] = _Scope(ctx, [parent])

    def release(self) -> None:
        """Drop the current process's binding (end of the handoff)."""
        self._scopes.pop(self.env.active_process, None)

    # ------------------------------------------------------------ background
    def begin_background(self, name: str) -> TraceContext:
        """Open an anonymous trace for a shared background activity
        (WAL drain, pagecache writeback) running with no request scope.
        Its spans land in :attr:`background` at finish."""
        self._bg_seq += 1
        ctx = TraceContext(-self._bg_seq, name, "", self.env.now,
                           background=True)
        self._span_seq += 1
        root = TraceSpan(ctx.trace_id, self._span_seq, None, name,
                         "server", self.env.now)
        ctx.spans.append(root)
        self._scopes[self.env.active_process] = _Scope(ctx, [root.span_id])
        return ctx

    def finish_background(self, ctx: TraceContext) -> None:
        now = self.env.now
        ctx.t1 = now
        root = ctx.root
        if root is not None and root.t1 is None:
            root.t1 = now
        proc = self.env.active_process
        sc = self._scopes.get(proc)
        if sc is not None and sc.ctx is ctx:
            del self._scopes[proc]
        self.background.extend(s for s in ctx.spans if s.t1 is not None)

    # ------------------------------------------------------------ spans
    def open_span(self, name: str, layer: str, links=(),
                  **labels) -> TraceSpan | None:
        """Open a child span under the current scope (or ``None`` if
        the running process carries no trace)."""
        sc = self._scope()
        if sc is None:
            return None
        self._span_seq += 1
        span = TraceSpan(sc.ctx.trace_id, self._span_seq, sc.stack[-1],
                         name, layer, self.env.now,
                         labels=dict(labels) if labels else None,
                         links=links)
        sc.ctx.spans.append(span)
        sc.stack.append(span.span_id)
        if span.links:
            # linked spans are causal join points (group commit):
            # mirror them into the background buffer so blame analysis
            # can follow a victim's links even when this span's own
            # trace is later dropped by sampling
            self.background.append(span)
        return span

    def close_span(self, span: TraceSpan | None, ok: bool = True,
                   **labels) -> None:
        if span is None:
            return
        span.t1 = self.env.now
        span.ok = ok
        if labels:
            span.labels.update(labels)
        sc = self._scope()
        if sc is not None and sc.stack and sc.stack[-1] == span.span_id:
            sc.stack.pop()

    def add_span(self, name: str, layer: str, t0: float, t1: float,
                 links=(), **labels) -> TraceSpan | None:
        """Record an already-timed leaf span under the current scope."""
        sc = self._scope()
        if sc is None:
            return None
        self._span_seq += 1
        span = TraceSpan(sc.ctx.trace_id, self._span_seq, sc.stack[-1],
                         name, layer, t0, t1,
                         labels=dict(labels) if labels else None,
                         links=links)
        sc.ctx.spans.append(span)
        if span.links:
            self.background.append(span)
        return span

    # ------------------------------------------------------------ WAL links
    def note_wal_stage(self, seq: int) -> None:
        """Record that the current request staged WAL record ``seq``
        (called synchronously from ``WalManager.stage``)."""
        sc = self._scope()
        if sc is not None and not sc.ctx.background:
            self._staged_wal.append((seq, sc.ctx.trace_id))

    def take_staged(self, upto_seq: int) -> tuple[int, ...]:
        """Consume the staged-record notes a drain is about to retire;
        returns the distinct trace ids the flush makes durable."""
        if not self._staged_wal:
            return ()
        taken, rest = [], []
        for seq, tid in self._staged_wal:
            (taken if seq <= upto_seq else rest).append((seq, tid))
        self._staged_wal = rest
        out: list[int] = []
        for _, tid in taken:
            if tid not in out:
                out.append(tid)
        return tuple(out)

    # ------------------------------------------------------------ faults
    def drain_open(self) -> list[TraceContext]:
        """Close every open scope at the current sim time (power cut /
        end of run).  Truncated request traces are force-kept so crash
        forensics always sees them; returns the contexts drained."""
        now = self.env.now
        drained: list[TraceContext] = []
        for proc, sc in list(self._scopes.items()):
            ctx = sc.ctx
            for span in ctx.spans:
                if span.t1 is None:
                    span.t1 = now
                    span.ok = False
                    span.labels["truncated"] = True
            ctx.truncated = True
            ctx.t1 = now
            del self._scopes[proc]
            if ctx.background:
                self.background.extend(ctx.spans)
            else:
                self._retain(ctx)
            drained.append(ctx)
        return drained


# ---------------------------------------------------------------- validation
def validate_trace(ctx: TraceContext) -> list[str]:
    """Well-formedness check; returns a list of problems (empty = ok).

    A *truncated* trace is still well-formed: every span closed (by
    ``drain_open``), timestamps ordered, every parent resolvable."""
    problems: list[str] = []
    if ctx.t1 is None:
        problems.append("context never finished")
    if not ctx.spans:
        problems.append("no spans")
        return problems
    ids = {s.span_id for s in ctx.spans}
    roots = [s for s in ctx.spans if s.parent_id is None]
    if len(roots) != 1:
        problems.append(f"expected 1 root span, found {len(roots)}")
    for s in ctx.spans:
        if s.t1 is None:
            problems.append(f"span {s.span_id} ({s.name}) never closed")
        elif s.t1 < s.t0:
            problems.append(f"span {s.span_id} ({s.name}) ends before start")
        if s.parent_id is not None and s.parent_id not in ids:
            problems.append(
                f"span {s.span_id} ({s.name}) parent "
                f"{s.parent_id} not in trace")
        if s.trace_id != ctx.trace_id:
            problems.append(f"span {s.span_id} belongs to another trace")
    if ctx.t1 is not None and roots:
        r = roots[0]
        if r.t1 is not None and r.t1 - 1e-12 > ctx.t1:
            problems.append("root span outlives the context")
    return problems


# ---------------------------------------------------------------- analysis
def critical_path(spans) -> list[tuple[TraceSpan, float, float]]:
    """Self-time decomposition of one trace.

    Returns ``(span, t0, t1)`` segments covering the root interval,
    each owned by the *deepest* span active there — i.e. where the
    request actually spent its time."""
    closed = [s for s in spans if s.t1 is not None]
    roots = [s for s in closed if s.parent_id is None]
    if not roots:
        return []
    root = roots[0]
    by_id = {s.span_id: s for s in closed}
    depth: dict[int, int] = {}

    def _depth(s) -> int:
        got = depth.get(s.span_id)
        if got is not None:
            return got
        if s.parent_id is None or s.parent_id not in by_id:
            depth[s.span_id] = 0
        else:
            depth[s.span_id] = _depth(by_id[s.parent_id]) + 1
        return depth[s.span_id]

    for s in closed:
        _depth(s)
    cuts = sorted({t for s in closed for t in (s.t0, s.t1)
                   if root.t0 <= t <= root.t1})
    segments: list[tuple[TraceSpan, float, float]] = []
    for a, b in zip(cuts, cuts[1:]):
        if b <= a:
            continue
        mid = (a + b) / 2.0
        covering = [s for s in closed if s.t0 <= mid <= s.t1]
        if not covering:
            continue
        best = max(covering,
                   key=lambda s: (depth[s.span_id], s.t0, s.span_id))
        if segments and segments[-1][0] is best and segments[-1][2] == a:
            segments[-1] = (best, segments[-1][1], b)
        else:
            segments.append((best, a, b))
    return segments


def dominant_layer(spans) -> tuple[str, float]:
    """(layer, self-time) of the layer that dominated this request."""
    per: dict[str, float] = {}
    for span, a, b in critical_path(spans):
        per[span.layer] = per.get(span.layer, 0.0) + (b - a)
    if not per:
        return ("server", 0.0)
    # ties break toward the deeper layer (later in LAYERS)
    order = {layer: i for i, layer in enumerate(LAYERS)}
    layer = max(per, key=lambda k: (per[k], order.get(k, -1)))
    return layer, per[layer]


@dataclass
class Attribution:
    """Why one slow request was slow: the background job it overlapped."""

    span_name: str = ""
    stream: int | None = None
    overlap: float = 0.0
    owners: tuple[str, ...] = ()
    cross_tenant: bool = False
    via: str = "direct"       # "direct" device spans or "link" (group commit)
    copied: int = 0

    @property
    def blamed(self) -> bool:
        return self.overlap > 0.0


def _merge_intervals(ivs: list[tuple[float, float]]) -> list[tuple[float, float]]:
    out: list[tuple[float, float]] = []
    for a, b in sorted(ivs):
        if b <= a:
            continue
        if out and a <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], b))
        else:
            out.append((a, b))
    return out


def _overlap(ivs: list[tuple[float, float]], t0: float, t1: float) -> float:
    return sum(max(0.0, min(b, t1) - max(a, t0)) for a, b in ivs)


def attribute_interference(ctx: TraceContext, gc_spans, background=(),
                           stream_owners=None) -> Attribution:
    """Blame a slow request on the background GC it causally overlapped.

    Evidence intervals are the request's own device-layer spans, plus —
    for group commit — the linked ``wal_flush`` spans the request
    waited on and those flushes' device-layer children from the
    background buffer.  The blamed GC span is the ``gc_reclaim`` with
    the largest time overlap against the merged evidence (only GC that
    actually *copied* pages counts: copy-free reclaims steal no
    device time worth blaming).  ``cross_tenant`` is set when the
    blamed stream's owner set contains a tenant other than the
    victim's — the shared-PID lifetime-mixing story."""
    ivs = [(s.t0, s.t1) for s in ctx.spans
           if s.t1 is not None and s.layer in _DEVICE_LAYERS]
    via = "direct" if ivs else "link"
    linked = [s for s in background
              if s.links and ctx.trace_id in s.links and s.t1 is not None]
    for fl in linked:
        ivs.append((fl.t0, fl.t1))
        for s in background:
            if (s.trace_id == fl.trace_id and s.layer in _DEVICE_LAYERS
                    and s.t1 is not None and not s.links):
                ivs.append((s.t0, s.t1))
    merged = _merge_intervals(ivs)
    if not merged:
        return Attribution()
    best = Attribution()
    for g in gc_spans:
        copied = int(g.labels.get("copied", 0) or 0)
        if copied <= 0:
            continue
        ov = _overlap(merged, g.t0, g.t1)
        if ov <= best.overlap:
            continue
        stream = g.labels.get("stream")
        owners = tuple(sorted((stream_owners or {}).get(stream, ())))
        best = Attribution(
            span_name=g.name, stream=stream, overlap=ov, owners=owners,
            cross_tenant=any(o != ctx.tenant for o in owners),
            via=via, copied=copied,
        )
    return best


@dataclass
class TailRow:
    """One line of the tail-forensics table."""

    rank: int
    ctx: TraceContext
    layer: str
    layer_time: float
    attribution: Attribution


@dataclass
class TailReport:
    """Top-K slowest requests, each blame-assigned."""

    rows: list[TailRow] = field(default_factory=list)
    requests_seen: int = 0
    kept: int = 0

    @property
    def blamed(self) -> list[TailRow]:
        return [r for r in self.rows if r.attribution.blamed]

    @property
    def cross_tenant(self) -> list[TailRow]:
        return [r for r in self.rows if r.attribution.cross_tenant]


def tail_report(contexts, background=(), gc_spans=(), *,
                top_k: int = 16, stream_owners=None,
                requests_seen: int = 0) -> TailReport:
    """Rank the K slowest finished request traces and attribute each."""
    done = [c for c in contexts if c.t1 is not None and not c.background]
    done.sort(key=lambda c: (-c.duration, c.trace_id))
    report = TailReport(requests_seen=requests_seen, kept=len(done))
    for rank, ctx in enumerate(done[:top_k], start=1):
        layer, layer_time = dominant_layer(ctx.spans)
        att = attribute_interference(ctx, gc_spans, background,
                                     stream_owners)
        report.rows.append(TailRow(rank, ctx, layer, layer_time, att))
    return report


# ---------------------------------------------------------------- overlays
class OverlaySpan:
    """A registry span (GC / snapshot) reduced to what forensics needs;
    also the deserialized form of dumped overlay spans."""

    __slots__ = ("name", "track", "t0", "t1", "labels")

    def __init__(self, name, track, t0, t1, labels=None):
        self.name = name
        self.track = track
        self.t0 = t0
        self.t1 = t1
        self.labels = labels or {}

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        return {"name": self.name, "track": self.track,
                "t0": self.t0, "t1": self.t1, "labels": self.labels}


def overlay_spans(registry) -> list[OverlaySpan]:
    """Extract the background-activity spans worth overlaying on a
    waterfall (GC reclaims, snapshots, WAL flushes) from a
    :class:`~repro.obs.MetricsRegistry` span log."""
    keep = ("gc_reclaim", "snapshot", "wal_flush", "wal_fsync")
    return [OverlaySpan(s.name, s.track, s.t0, s.t1, dict(s.labels))
            for s in registry.spans if s.name in keep]


# ---------------------------------------------------------------- rendering
def _fmt_t(seconds: float) -> str:
    us = seconds * 1e6
    if us >= 10_000:
        return f"{us / 1000:.2f}ms"
    return f"{us:.1f}us"


def format_waterfall(ctx: TraceContext, overlays=(), width: int = 44) -> str:
    """Render one trace as a text waterfall, background activity
    overlaid below (rows prefixed ``~``)."""
    t0 = ctx.t0
    t1 = ctx.t1 if ctx.t1 is not None else max(
        (s.t1 for s in ctx.spans if s.t1 is not None), default=t0)
    dur = max(t1 - t0, 1e-12)
    by_id = {s.span_id: s for s in ctx.spans}

    def depth(s) -> int:
        d = 0
        cur = s
        while cur.parent_id is not None and cur.parent_id in by_id:
            cur = by_id[cur.parent_id]
            d += 1
        return d

    def bar(a, b, ch="#") -> str:
        c0 = int((max(a, t0) - t0) / dur * width)
        c1 = max(c0 + 1, int((min(b, t1) - t0) / dur * width))
        c0 = min(c0, width - 1)
        c1 = min(c1, width)
        return " " * c0 + ch * (c1 - c0) + " " * (width - c1)

    trunc = " TRUNCATED" if ctx.truncated else ""
    head = (f"trace {ctx.trace_id} {ctx.name}"
            f"{' tenant=' + ctx.tenant if ctx.tenant else ''}"
            f" dur={_fmt_t(t1 - t0)}{trunc}")
    lines = [head]
    for s in sorted(ctx.spans, key=lambda s: (s.t0, s.span_id)):
        end = s.t1 if s.t1 is not None else t1
        label = "  " * depth(s) + s.name
        extra = ""
        if s.labels:
            keys = sorted(s.labels)
            extra = " [" + " ".join(f"{k}={s.labels[k]}" for k in keys) + "]"
        if s.links:
            extra += f" links={list(s.links)}"
        lines.append(f"  {s.layer:>9} |{bar(s.t0, end)}| "
                     f"{label} {_fmt_t(end - s.t0)}{extra}")
    for ov in sorted(overlays, key=lambda o: (o.t0, o.name)):
        if ov.t1 <= t0 or ov.t0 >= t1:
            continue
        keys = sorted(ov.labels)
        extra = (" [" + " ".join(f"{k}={ov.labels[k]}" for k in keys) + "]"
                 if ov.labels else "")
        lines.append(f"  ~{ov.track:>8} |{bar(ov.t0, ov.t1, '=')}| "
                     f"{ov.name} {_fmt_t(ov.duration)}{extra}")
    return "\n".join(lines)


def format_tail_table(report: TailReport) -> str:
    """The tail-forensics table: one line per slow request."""
    header = (f"{'#':>3} {'trace':>6} {'tenant':<8} {'op':<5} "
              f"{'dur':>10} {'layer':<9} {'layer_t':>10} "
              f"{'blame':<26} {'cross':<5}")
    lines = [header, "-" * len(header)]
    for r in report.rows:
        att = r.attribution
        if att.blamed:
            owners = ",".join(att.owners) if att.owners else "?"
            blame = (f"{att.span_name}[pid={att.stream} {owners}]"
                     f" {_fmt_t(att.overlap)}")
        else:
            blame = "-"
        lines.append(
            f"{r.rank:>3} {r.ctx.trace_id:>6} {r.ctx.tenant or '-':<8} "
            f"{r.ctx.name:<5} {_fmt_t(r.ctx.duration):>10} "
            f"{r.layer:<9} {_fmt_t(r.layer_time):>10} "
            f"{blame:<26} {'yes' if att.cross_tenant else 'no':<5}")
    lines.append(
        f"kept {report.kept} traces of {report.requests_seen} requests; "
        f"{len(report.blamed)} blamed, "
        f"{len(report.cross_tenant)} cross-tenant")
    return "\n".join(lines)


# ---------------------------------------------------------------- exporters
def trace_jsonl_records(tracer: RequestTracer, overlays=(),
                        stream_owners=None, run: str = "slimio"):
    """Yield the JSONL dump: meta, kept traces, spans, background
    spans, and overlay spans — everything ``repro.obs report`` needs."""
    owners = {str(k): sorted(v) for k, v in (stream_owners or {}).items()}
    yield {
        "type": "meta", "run": run,
        "requests_seen": tracer.requests_seen,
        "requests_dropped": tracer.requests_dropped,
        "sample_every": tracer.sample_every,
        "keep_slowest": tracer.keep_slowest,
        "stream_owners": owners,
    }
    for tid in sorted(tracer.kept):
        ctx = tracer.kept[tid]
        rec = ctx.to_dict()
        rec["type"] = "trace"
        yield rec
        for s in ctx.spans:
            rec = s.to_dict()
            rec["type"] = "span"
            yield rec
    for s in tracer.background:
        rec = s.to_dict()
        rec["type"] = "span"
        rec["bg"] = True
        yield rec
    for ov in overlays:
        rec = ov.to_dict()
        rec["type"] = "overlay"
        yield rec


def write_trace_jsonl(path, tracer: RequestTracer, overlays=(),
                      stream_owners=None, run: str = "slimio") -> int:
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for rec in trace_jsonl_records(tracer, overlays, stream_owners, run):
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
            n += 1
    return n


def load_trace_jsonl(lines):
    """Rebuild (meta, contexts, background, overlays) from a dump."""
    meta: dict = {}
    ctxs: dict[int, TraceContext] = {}
    background: list[TraceSpan] = []
    overlays: list[OverlaySpan] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("type")
        if kind == "meta":
            meta = rec
        elif kind == "trace":
            ctx = TraceContext(rec["trace_id"], rec["name"],
                               rec.get("tenant", ""), rec["t0"],
                               sampled=rec.get("sampled", False))
            ctx.t1 = rec.get("t1")
            ctx.truncated = rec.get("truncated", False)
            ctxs[ctx.trace_id] = ctx
        elif kind == "span":
            span = TraceSpan.from_dict(rec)
            if rec.get("bg"):
                background.append(span)
            elif span.trace_id in ctxs:
                ctxs[span.trace_id].spans.append(span)
        elif kind == "overlay":
            overlays.append(OverlaySpan(rec["name"], rec["track"],
                                        rec["t0"], rec["t1"],
                                        rec.get("labels") or {}))
    owners = {int(k): set(v)
              for k, v in (meta.get("stream_owners") or {}).items()}
    meta["stream_owners"] = owners
    return meta, list(ctxs.values()), background, overlays


_PERFETTO_BG_PID = 0


def perfetto_trace(tracer: RequestTracer, overlays=(),
                   run: str = "slimio") -> dict:
    """Chrome/Perfetto ``traceEvents`` JSON: one process per kept
    request (pid = trace id), one thread per layer, flow events for
    group-commit links, background + overlay activity under pid 0."""
    tid_of = {layer: i + 1 for i, layer in enumerate(LAYERS)}
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": _PERFETTO_BG_PID,
         "tid": 0, "args": {"name": "background (GC / flush / writeback)"}},
    ]

    def us(t: float) -> float:
        return t * 1e6

    def slice_event(span: TraceSpan, pid: int) -> dict:
        args = {str(k): v for k, v in span.labels.items()}
        if span.links:
            args["links"] = list(span.links)
        return {
            "ph": "X", "name": span.name, "cat": span.layer,
            "pid": pid, "tid": tid_of.get(span.layer, len(LAYERS) + 1),
            "ts": us(span.t0), "dur": max(us(span.duration), 0.001),
            "args": args,
        }

    flow_seq = 0
    roots: dict[int, TraceSpan] = {}
    for tid in sorted(tracer.kept):
        ctx = tracer.kept[tid]
        name = (f"req {ctx.trace_id} {ctx.name}"
                f"{' ' + ctx.tenant if ctx.tenant else ''}"
                f"{' TRUNCATED' if ctx.truncated else ''}")
        events.append({"ph": "M", "name": "process_name", "pid": tid,
                       "tid": 0, "args": {"name": name}})
        for layer, ltid in tid_of.items():
            events.append({"ph": "M", "name": "thread_name", "pid": tid,
                           "tid": ltid, "args": {"name": layer}})
        for s in ctx.spans:
            if s.t1 is None:
                continue
            events.append(slice_event(s, tid))
            if s.parent_id is None:
                roots[tid] = s
    for s in tracer.background:
        events.append(slice_event(s, _PERFETTO_BG_PID))
        for linked_tid in s.links:
            root = roots.get(linked_tid)
            if root is None:
                continue
            flow_seq += 1
            ts_src = min(max(s.t0, root.t0), root.t1)
            events.append({"ph": "s", "id": flow_seq, "name": "commit",
                           "cat": "flow", "pid": linked_tid,
                           "tid": tid_of["server"], "ts": us(ts_src)})
            events.append({"ph": "f", "bp": "e", "id": flow_seq,
                           "name": "commit", "cat": "flow",
                           "pid": _PERFETTO_BG_PID,
                           "tid": tid_of.get(s.layer, 1),
                           "ts": us(s.t0)})
    for ov in overlays:
        args = {str(k): v for k, v in ov.labels.items()}
        events.append({
            "ph": "X", "name": ov.name, "cat": ov.track,
            "pid": _PERFETTO_BG_PID,
            "tid": tid_of.get(ov.track, len(LAYERS) + 2),
            "ts": us(ov.t0), "dur": max(us(ov.duration), 0.001),
            "args": args,
        })
    return {"displayTimeUnit": "ms",
            "otherData": {"run": run},
            "traceEvents": events}
