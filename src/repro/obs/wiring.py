"""Attach one registry across every layer of a built system.

``attach_registry`` walks a :class:`~repro.core.engine.BaselineSystem`
or :class:`~repro.core.engine.SlimIOSystem` handle (duck-typed — any
object with the same attribute names works) and calls each component's
``attach_obs``. Components created after attachment (the per-kind
snapshot rings and paths, recovery read-ahead buffers) are wired at
their creation sites via ``getattr(system, "obs", None)``.

``attach_tracer`` does the same for request-level causal tracing: it
plants one :class:`~repro.obs.trace.RequestTracer` on every component
that knows how to feed it (``rtrace`` attribute).
"""

from __future__ import annotations


from repro.obs.registry import MetricsRegistry
from repro.obs.trace import RequestTracer

__all__ = ["attach_registry", "attach_tracer"]

#: system attributes probed for an ``attach_obs`` method, in wiring
#: order (server first so its gauges register before kernel noise)
_COMPONENT_ATTRS = (
    "server",
    "wal",
    "wal_path",
    "wal_ring",
    "cache",
    "block",
    "fs",
)


def attach_registry(system, registry: MetricsRegistry | None = None,
                    include_device: bool = True) -> MetricsRegistry:
    """Wire a registry through ``system``; returns the registry.

    Creates one (named after the server) when none is passed. Safe to
    call once per system; instruments are get-or-create so re-wiring
    the same registry is harmless. ``include_device=False`` skips the
    FTL — multi-tenant deployments share one device across systems and
    wire it separately (unlabeled) so shared GC is not mis-attributed
    to whichever tenant attached last.
    """
    if registry is None:
        registry = MetricsRegistry(system.env, name=system.server.name)
    system.obs = registry
    for attr in _COMPONENT_ATTRS:
        comp = getattr(system, attr, None)
        if comp is not None and hasattr(comp, "attach_obs"):
            comp.attach_obs(registry)
    device = getattr(system, "device", None)
    if include_device and device is not None:
        device.ftl.attach_obs(registry)
    # fault injector (a device proxy): surfaces injected-error/cut
    # counters as faults_* metrics alongside the ring's retry counters
    injector = getattr(system, "fault_injector", None)
    if injector is not None:
        injector.attach_obs(registry)
    # snapshot rings/paths that already exist (late ones self-wire)
    for ring in getattr(system, "_snap_rings", {}).values():
        ring.attach_obs(registry)
    for sink in getattr(system.server, "_sinks", {}).values():
        if hasattr(sink, "attach_obs"):
            sink.attach_obs(registry)
    return registry


def attach_tracer(system, tracer: RequestTracer | None = None,
                  include_device: bool = True, tenant: str | None = None,
                  **tracer_kw) -> RequestTracer:
    """Wire a request tracer through ``system``; returns the tracer.

    Creates one when none is passed (``tracer_kw`` forwards to
    :class:`~repro.obs.trace.RequestTracer`). ``tenant`` names this
    system on every trace (cluster shard attribution); defaults to the
    server name. As with ``attach_registry``, pass
    ``include_device=False`` for shared-device deployments and wire the
    device's FTL once, separately.
    """
    if tracer is None:
        tracer = RequestTracer(system.env, **tracer_kw)
    system.rtrace = tracer
    for attr in _COMPONENT_ATTRS:
        comp = getattr(system, attr, None)
        if comp is not None and hasattr(comp, "rtrace"):
            comp.rtrace = tracer
    server = getattr(system, "server", None)
    if server is not None:
        server.trace_tenant = tenant if tenant is not None else server.name
    device = getattr(system, "device", None)
    if include_device and device is not None:
        device.ftl.rtrace = tracer
    for ring in getattr(system, "_snap_rings", {}).values():
        ring.rtrace = tracer
    return tracer
