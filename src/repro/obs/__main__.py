"""CLI over recorded runs: ``python -m repro.obs <cmd> <run.jsonl>``.

* ``summarize`` — human-readable report of a JSONL run record.
* ``trace`` — convert a run record's spans to Chrome trace-event JSON
  (load the output in chrome://tracing or https://ui.perfetto.dev).
* ``report`` — tail-latency forensics from a causal-trace dump
  (``write_trace_jsonl``): the blame table plus the slowest requests
  as waterfalls with background GC/snapshot activity overlaid.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import chrome_trace, load_jsonl, summarize_records


def _cmd_summarize(args) -> int:
    records = load_jsonl(args.run)
    if not records:
        print(f"{args.run}: empty run record", file=sys.stderr)
        return 1
    print(summarize_records(records))
    return 0


def _cmd_trace(args) -> int:
    records = load_jsonl(args.run)
    spans = [r for r in records if r.get("type") == "span"]
    meta = next((r for r in records if r.get("type") == "meta"), {})
    trace = chrome_trace(spans, run_name=str(meta.get("run", "run")))
    out = args.output or (args.run.rsplit(".", 1)[0] + ".trace.json")
    with open(out, "w") as f:
        json.dump(trace, f)
    print(f"wrote {len(spans)} spans to {out}")
    return 0


def _cmd_report(args) -> int:
    from repro.obs.trace import (
        format_tail_table,
        format_waterfall,
        load_trace_jsonl,
        tail_report,
    )

    with open(args.run, encoding="utf-8") as fh:
        meta, contexts, background, overlays = load_trace_jsonl(fh)
    if not contexts:
        print(f"{args.run}: no traces in dump", file=sys.stderr)
        return 1
    gc_spans = [o for o in overlays if o.name == "gc_reclaim"]
    owners = {int(k): set(v)
              for k, v in (meta.get("stream_owners") or {}).items()}
    report = tail_report(
        contexts, background, gc_spans, top_k=args.top,
        stream_owners=owners,
        requests_seen=int(meta.get("requests_seen", 0)),
    )
    print(f"run: {meta.get('run', '?')}   tail forensics "
          f"(top {len(report.rows)} of {report.kept} kept traces)")
    print()
    print(format_tail_table(report))
    shown = (report.cross_tenant or report.blamed or report.rows)
    for row in shown[:args.waterfalls]:
        print()
        print(format_waterfall(row.ctx, overlays))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect recorded telemetry runs (JSONL event logs).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="summarize a run record")
    p_sum.add_argument("run", help="path to a .jsonl run record")
    p_sum.set_defaults(func=_cmd_summarize)

    p_tr = sub.add_parser("trace", help="emit Chrome trace-event JSON")
    p_tr.add_argument("run", help="path to a .jsonl run record")
    p_tr.add_argument("-o", "--output", help="output path "
                      "(default: <run>.trace.json)")
    p_tr.set_defaults(func=_cmd_trace)

    p_rep = sub.add_parser(
        "report", help="tail-latency forensics from a causal-trace dump")
    p_rep.add_argument("run", help="path to a .trace.jsonl causal dump")
    p_rep.add_argument("-k", "--top", type=int, default=16,
                       help="rows in the tail table (default 16)")
    p_rep.add_argument("-w", "--waterfalls", type=int, default=3,
                       help="slowest traces rendered as waterfalls "
                            "(default 3)")
    p_rep.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that exited early — not an error
        sys.stderr.close()
        return 0
    except OSError as e:
        print(f"{args.run}: {e.strerror or e}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as e:
        print(f"{args.run}: not a JSONL run record ({e})", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
