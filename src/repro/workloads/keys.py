"""Key and value generation.

Keys are fixed-width (8 bytes, like the paper's workloads) and drawn
uniformly (redis-benchmark) or zipfian (YCSB). The zipfian generator is
YCSB's (Gray et al.) rejection-free construction with precomputed
zeta constants.

Values come from a small pool of deterministic templates mixing
incompressible and repetitive spans, tuned so zlib level 1 lands near a
target ratio (~0.7 by default, LZF-on-real-data territory). The first
bytes of every value encode the key, so overwrites and recovery
comparisons are meaningful.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

__all__ = ["make_key", "make_value", "UniformKeys", "ZipfianKeys"]

_TEMPLATE_POOL_SIZE = 32
_templates: dict[tuple[int, float], list[bytes]] = {}
#: memoized values — workloads revisit a small key set constantly, and
#: make_value is a pure function of its arguments
_value_cache: dict[tuple[bytes, int, float], bytes] = {}
_VALUE_CACHE_CAP = 1 << 16


def make_key(index: int, width: int = 8) -> bytes:
    """Fixed-width binary key for a record index."""
    return index.to_bytes(width, "big")


def _template_pool(size: int, incompressible_fraction: float) -> list[bytes]:
    key = (size, round(incompressible_fraction, 3))
    pool = _templates.get(key)
    if pool is None:
        rng = np.random.default_rng(0xC0FFEE)
        pool = []
        n_random = int(size * incompressible_fraction)
        for _ in range(_TEMPLATE_POOL_SIZE):
            rand = rng.integers(0, 256, size=n_random, dtype=np.uint8).tobytes()
            filler_byte = bytes([int(rng.integers(0, 256))])
            pool.append(rand + filler_byte * (size - n_random))
        _templates[key] = pool
    return pool


def make_value(key: bytes, size: int,
               incompressible_fraction: float = 0.6) -> bytes:
    """Deterministic value for ``key``: header + pooled template body.

    ``incompressible_fraction`` tunes the zlib ratio; 0.6 gives ≈ 0.65,
    0.0 gives highly compressible data, 1.0 nearly incompressible.
    """
    if size < 1:
        raise ValueError("value size must be >= 1")
    cache_key = (key, size, incompressible_fraction)
    value = _value_cache.get(cache_key)
    if value is not None:
        return value
    digest = hashlib.blake2b(key, digest_size=8).digest()
    header = digest + struct.pack("<I", size)
    if size <= len(header):
        value = header[:size]
    else:
        pool = _template_pool(size, incompressible_fraction)
        template = pool[digest[0] % _TEMPLATE_POOL_SIZE]
        value = (header + template)[:size]
    if len(_value_cache) >= _VALUE_CACHE_CAP:
        _value_cache.clear()
    _value_cache[cache_key] = value
    return value


class UniformKeys:
    """Uniform key indices over [0, key_count)."""

    def __init__(self, key_count: int, seed: int = 1):
        if key_count < 1:
            raise ValueError("key_count must be >= 1")
        self.key_count = key_count
        self._rng = np.random.default_rng(seed)

    def draw(self, n: int) -> np.ndarray:
        return self._rng.integers(0, self.key_count, size=n, dtype=np.int64)


class ZipfianKeys:
    """YCSB's zipfian generator over [0, key_count).

    Hot items are scattered across the key space (as YCSB does with its
    hash-scramble) so the head of the distribution isn't just the first
    insertions.
    """

    def __init__(self, key_count: int, theta: float = 0.99, seed: int = 1):
        if key_count < 1:
            raise ValueError("key_count must be >= 1")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.key_count = key_count
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        n = key_count
        # zeta(n, theta) — vectorized
        ranks = np.arange(1, n + 1, dtype=np.float64)
        self._zetan = float(np.sum(1.0 / np.power(ranks, theta)))
        self._zeta2 = float(np.sum(1.0 / np.power(ranks[:2], theta))) if n >= 2 \
            else self._zetan
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)
        # scramble table for hot-item scatter
        self._perm = np.random.default_rng(seed ^ 0x5EED).permutation(n)

    def ranks(self, n: int) -> np.ndarray:
        """Raw popularity ranks (0 = hottest), no scramble applied.

        YCSB's "latest" distribution wants rank order preserved (rank 0
        maps to the newest key), so this is exposed separately from
        :meth:`draw`.
        """
        u = self._rng.random(n)
        uz = u * self._zetan
        ranks = np.empty(n, dtype=np.int64)
        m1 = uz < 1.0
        m2 = (~m1) & (uz < 1.0 + 0.5**self.theta)
        m3 = ~(m1 | m2)
        ranks[m1] = 0
        ranks[m2] = 1
        ranks[m3] = (
            self.key_count
            * np.power(self._eta * u[m3] - self._eta + 1.0, self._alpha)
        ).astype(np.int64)
        np.clip(ranks, 0, self.key_count - 1, out=ranks)
        return ranks

    def draw(self, n: int) -> np.ndarray:
        return self._perm[self.ranks(n)]
