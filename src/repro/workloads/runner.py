"""Closed-loop workload drivers and the measurement report.

A workload pre-draws its whole operation sequence (vectorized numpy),
spawns N client processes that pull from the shared sequence, runs the
simulation to completion (including any in-flight snapshot), and
summarizes everything the paper's tables read off a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.imdb import ClientOp
from repro.persist import SnapshotKind
from repro.workloads.keys import UniformKeys, ZipfianKeys, make_key, make_value

__all__ = ["WorkloadReport", "ClosedLoopWorkload", "RedisBenchWorkload",
           "YcsbAWorkload"]


@dataclass
class WorkloadReport:
    """Everything measured from one workload run."""

    ops: int = 0
    duration: float = 0.0
    rps: float = 0.0
    rps_wal_only: float = 0.0
    rps_wal_snapshot: float = 0.0
    set_p999: float = float("nan")
    get_p999: float = float("nan")
    set_mean: float = float("nan")
    steady_memory: float = 0.0
    peak_memory: float = 0.0
    snapshot_times: list[float] = field(default_factory=list)
    snapshot_count: int = 0
    waf: float = 1.0
    gc_segments_erased: int = 0
    timeline: tuple[np.ndarray, np.ndarray] | None = None
    #: intended-schedule rate (ops/s) when the run was paced; None for
    #: plain closed-loop runs
    target_rate: float | None = None
    #: coordinated-omission-corrected percentiles: latency measured
    #: from each op's *intended* start on the fixed schedule, so time
    #: an op spent waiting behind a slow server is charged to it
    corrected_set_p999: float = float("nan")
    corrected_get_p999: float = float("nan")
    corrected_set_mean: float = float("nan")
    #: measured ops that started later than their intended instant
    late_starts: int = 0

    @property
    def mean_snapshot_time(self) -> float:
        return float(np.mean(self.snapshot_times)) if self.snapshot_times \
            else float("nan")


class ClosedLoopWorkload:
    """N clients, zero think time, a shared pre-drawn op sequence.

    With ``target_rate`` set, the clients pace themselves against a
    fixed schedule (op ``i`` is *intended* to start at ``i /
    target_rate``) and the report carries coordinated-omission-
    corrected percentiles: a pure closed loop lets a slow server
    throttle its own load generator, so the latency distribution never
    sees the requests that would have arrived during a stall — the
    wrk2 correction measures every op from its intended instant
    instead.
    """

    def __init__(
        self,
        clients: int = 8,
        total_ops: int = 5_000,
        key_count: int = 1_000,
        value_size: int = 1024,
        get_ratio: float = 0.0,
        zipfian: bool = False,
        seed: int = 7,
        key_width: int = 8,
        preload_records: int = 0,
        snapshot_at_fraction: float | None = None,
        incompressible_fraction: float = 0.6,
        target_rate: float | None = None,
    ):
        if clients < 1 or total_ops < 1:
            raise ValueError("clients and total_ops must be >= 1")
        if not 0.0 <= get_ratio <= 1.0:
            raise ValueError("get_ratio must be in [0, 1]")
        if target_rate is not None and target_rate <= 0:
            raise ValueError("target_rate must be positive")
        self.clients = clients
        self.total_ops = total_ops
        self.key_count = key_count
        self.value_size = value_size
        self.get_ratio = get_ratio
        self.zipfian = zipfian
        self.seed = seed
        self.key_width = key_width
        self.preload_records = preload_records
        self.snapshot_at_fraction = snapshot_at_fraction
        self.incompressible_fraction = incompressible_fraction
        self.target_rate = target_rate

    # ------------------------------------------------------------------ sequence
    def _draw_sequence(self) -> tuple[np.ndarray, np.ndarray]:
        gen = (
            ZipfianKeys(self.key_count, seed=self.seed)
            if self.zipfian
            else UniformKeys(self.key_count, seed=self.seed)
        )
        keys = gen.draw(self.total_ops)
        rng = np.random.default_rng(self.seed ^ 0xBEEF)
        is_get = rng.random(self.total_ops) < self.get_ratio
        return keys, is_get

    def _op(self, key_idx: int, is_get: bool) -> ClientOp:
        key = make_key(int(key_idx), self.key_width)
        if is_get:
            return ClientOp("GET", key)
        return ClientOp(
            "SET", key,
            make_value(key, self.value_size, self.incompressible_fraction),
        )

    # ------------------------------------------------------------------ running
    def preload(self, system) -> None:
        """Load initial records directly (setup phase, zero sim time)."""
        for i in range(self.preload_records):
            key = make_key(i, self.key_width)
            system.server.store.set(
                key, make_value(key, self.value_size,
                                self.incompressible_fraction)
            )

    def run(self, system, warmup_ops: int = 0) -> WorkloadReport:
        """Drive the system to completion and report.

        ``warmup_ops``: leading operations excluded from metrics (used
        to build GC pressure before measuring).
        """
        env = system.env
        self.preload(system)
        keys, is_get = self._draw_sequence()
        cursor = {"i": 0}
        snapshot_at = (
            int(self.total_ops * self.snapshot_at_fraction)
            if self.snapshot_at_fraction is not None
            else None
        )
        measure_from = {"t": 0.0, "done": warmup_ops == 0}
        ondemand_started = {"done": snapshot_at is None}
        ftl0 = {"host": 0, "gc": 0, "erased": 0}
        rate = self.target_rate
        sched_t0 = env.now
        corrected = {"set": [], "get": [], "late": 0}

        def client():
            while True:
                i = cursor["i"]
                if i >= self.total_ops:
                    return
                cursor["i"] = i + 1
                if rate is not None:
                    # fixed intended schedule: op i belongs at i/rate no
                    # matter how far behind the clients have fallen
                    t_int = sched_t0 + i / rate
                    if env.now < t_int:
                        yield env.timeout(t_int - env.now)
                else:
                    t_int = env.now
                if not measure_from["done"] and i >= warmup_ops:
                    measure_from["done"] = True
                    measure_from["t"] = env.now
                    system.server.reset_metrics()
                    st = system.device.ftl.stats
                    ftl0.update(host=st.host_pages_written,
                                gc=st.gc_pages_copied,
                                erased=st.segments_erased)
                t_start = env.now
                yield from system.server.execute(self._op(keys[i], is_get[i]))
                if rate is not None and i >= warmup_ops:
                    corrected["get" if is_get[i] else "set"].append(
                        env.now - t_int)
                    if t_start > t_int:
                        corrected["late"] += 1
                if (
                    snapshot_at is not None
                    and i >= snapshot_at
                    and not ondemand_started["done"]
                ):
                    # keep asking: a WAL-snapshot may be in flight (only
                    # one snapshot runs at a time, §2.1)
                    if system.server.start_snapshot(SnapshotKind.ON_DEMAND):
                        ondemand_started["done"] = True

        procs = [env.process(client(), name=f"client-{c}")
                 for c in range(self.clients)]
        for p in procs:
            env.run(until=p)

        def settle():
            # idle_wait: the predicate reads sim state only, so ticks
            # strictly before the next scheduled event cannot change it
            while system.server.snapshot_in_progress:
                yield env.idle_wait(1e-3)

        env.run(until=env.process(settle(), name="settle"))
        return self._report(system, measure_from["t"], ftl0, corrected)

    def _report(self, system, t0: float, ftl0: dict,
                corrected: dict | None = None) -> WorkloadReport:
        env = system.env
        m = system.metrics
        rep = WorkloadReport()
        rep.ops = len(m.ops)
        rep.duration = env.now - t0
        phases = m.phase_rps(t_end=env.now)
        rep.rps = phases["average"]
        rep.rps_wal_only = phases["wal_only"]
        rep.rps_wal_snapshot = phases["wal_snapshot"]
        rep.set_p999 = m.set_latency.p(99.9)
        rep.get_p999 = m.get_latency.p(99.9)
        rep.set_mean = m.set_latency.mean()
        rep.steady_memory = system.server.store.used_bytes
        rep.peak_memory = m.memory.peak
        rep.snapshot_times = [s.duration for s in m.snapshots]
        rep.snapshot_count = len(m.snapshots)
        st = system.device.ftl.stats
        host = st.host_pages_written - ftl0["host"]
        gc = st.gc_pages_copied - ftl0["gc"]
        rep.waf = (host + gc) / host if host > 0 else 1.0
        rep.gc_segments_erased = st.segments_erased - ftl0["erased"]
        if len(m.ops) > 1:
            ts = m.ops.timestamps
            span = ts[-1] - ts[0]
            bin_w = max(span / 60.0, 1e-6)
            rep.timeline = m.ops.rate(bin_w)
        if self.target_rate is not None and corrected is not None:
            rep.target_rate = self.target_rate
            rep.late_starts = corrected["late"]
            if corrected["set"]:
                s = np.asarray(corrected["set"])
                rep.corrected_set_p999 = float(np.percentile(s, 99.9))
                rep.corrected_set_mean = float(s.mean())
            if corrected["get"]:
                rep.corrected_get_p999 = float(
                    np.percentile(np.asarray(corrected["get"]), 99.9))
        return rep


class RedisBenchWorkload(ClosedLoopWorkload):
    """redis-benchmark shape: SET-only, uniform keys, large values."""

    def __init__(self, clients: int = 50, total_ops: int = 20_000,
                 key_count: int = 4_000, value_size: int = 4096,
                 seed: int = 7, **kw):
        super().__init__(
            clients=clients, total_ops=total_ops, key_count=key_count,
            value_size=value_size, get_ratio=0.0, zipfian=False, seed=seed,
            **kw,
        )


class YcsbAWorkload(ClosedLoopWorkload):
    """YCSB-A shape: 50/50 GET-SET, zipfian keys, preloaded records."""

    def __init__(self, clients: int = 8, total_ops: int = 20_000,
                 key_count: int = 2_000, value_size: int = 2048,
                 seed: int = 7, **kw):
        kw.setdefault("preload_records", key_count)
        super().__init__(
            clients=clients, total_ops=total_ops, key_count=key_count,
            value_size=value_size, get_ratio=0.5, zipfian=True, seed=seed,
            **kw,
        )
