"""Operation traces: record, save, replay.

A trace pins down the *exact* request sequence of a run, so a
performance regression can be replayed bit-for-bit against a modified
system, and externally captured workloads (e.g. a production Redis
MONITOR log converted offline) can drive the simulator.

Format (one op per line, binary-safe via hex):

    SET <key-hex> <value-hex>
    GET <key-hex>
    DEL <key-hex>
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable

from repro.imdb import ClientOp

__all__ = ["save_trace", "load_trace", "TraceWorkload"]


def save_trace(ops: Iterable[ClientOp], path: str | Path) -> int:
    """Write ops to ``path``; returns the number written."""
    n = 0
    with open(path, "w", encoding="ascii") as fh:
        for op in ops:
            if op.op == "SET":
                fh.write(f"SET {op.key.hex()} {op.value.hex()}\n")
            elif op.op == "GET":
                fh.write(f"GET {op.key.hex()}\n")
            else:
                fh.write(f"DEL {op.key.hex()}\n")
            n += 1
    return n


def load_trace(path: str | Path) -> list[ClientOp]:
    """Parse a trace file back into ops (strict; raises on bad lines)."""
    ops: list[ClientOp] = []
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                if parts[0] == "SET" and len(parts) == 3:
                    ops.append(ClientOp("SET", bytes.fromhex(parts[1]),
                                        bytes.fromhex(parts[2])))
                elif parts[0] == "GET" and len(parts) == 2:
                    ops.append(ClientOp("GET", bytes.fromhex(parts[1])))
                elif parts[0] == "DEL" and len(parts) == 2:
                    ops.append(ClientOp("DEL", bytes.fromhex(parts[1])))
                else:
                    raise ValueError("bad structure")
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line {line!r}"
                ) from exc
    return ops


class TraceWorkload:
    """Drive a system from a recorded op list (closed loop)."""

    def __init__(self, ops: list[ClientOp], clients: int = 8):
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if not ops:
            raise ValueError("empty trace")
        self.ops = ops
        self.clients = clients

    @classmethod
    def from_file(cls, path: str | Path, clients: int = 8) -> TraceWorkload:
        return cls(load_trace(path), clients=clients)

    def run(self, system) -> dict[str, float]:
        """Replay; returns a small summary dict."""
        env = system.env
        cursor = {"i": 0}

        def client():
            while True:
                i = cursor["i"]
                if i >= len(self.ops):
                    return
                cursor["i"] = i + 1
                yield from system.server.execute(self.ops[i])

        procs = [env.process(client(), name=f"trace-client-{c}")
                 for c in range(self.clients)]
        t0 = env.now
        for p in procs:
            env.run(until=p)
        dur = env.now - t0
        m = system.metrics
        return {
            "ops": float(len(self.ops)),
            "duration": dur,
            "rps": len(self.ops) / dur if dur > 0 else 0.0,
            "set_p999": m.set_latency.p(99.9),
            "get_p999": m.get_latency.p(99.9),
        }
