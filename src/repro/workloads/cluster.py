"""Cluster-aware workload driver: one op stream, N shards.

:class:`ClusterWorkload` wraps any :class:`ClosedLoopWorkload` shape
(the same knobs, the same pre-drawn sequence) but routes every op
through a :class:`~repro.cluster.ClusterRouter` instead of a single
server, so the key's hash slot — not the driver — decides which shard
does the work. The report comes back at two granularities:

* one :class:`WorkloadReport` per shard (that shard's latency
  recorders, snapshot windows, memory, and *its own* WAF read off the
  shared FTL's per-stream counters for the shard's Placement IDs);
* one aggregate report (total throughput, cluster-wide percentiles
  merged from every shard's samples, device-global WAF).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.persist import SnapshotKind
from repro.sim.stats import LatencyRecorder
from repro.workloads.keys import make_key, make_value
from repro.workloads.runner import ClosedLoopWorkload, WorkloadReport

__all__ = ["ClusterReport", "ClusterWorkload"]


@dataclass
class ClusterReport:
    """Per-shard and aggregate measurements of one cluster run."""

    aggregate: WorkloadReport = field(default_factory=WorkloadReport)
    per_shard: list[WorkloadReport] = field(default_factory=list)
    shard_names: list[str] = field(default_factory=list)
    #: per-shard WAF over the shard's own Placement IDs
    shard_waf: list[float] = field(default_factory=list)
    #: ops the router sent to each shard
    routed: list[int] = field(default_factory=list)
    #: PID allocation summary (``PidAllocator.describe``)
    pid_allocation: dict = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        return len(self.per_shard)


def _stream_baseline(ftl) -> dict[int, tuple[int, int]]:
    return {sid: ftl.stream_stats(sid) for sid in ftl.stream_ids}


def _waf_since(ftl, stream_ids, baseline) -> float:
    host = copied = 0
    for sid in set(stream_ids):
        if sid not in ftl.stream_ids:
            continue
        h, c = ftl.stream_stats(sid)
        h0, c0 = baseline.get(sid, (0, 0))
        host += h - h0
        copied += c - c0
    if host == 0:
        return 1.0
    return (host + copied) / host


class ClusterWorkload:
    """Drive a cluster with a closed-loop shape; measure per shard."""

    def __init__(self, shape: ClosedLoopWorkload):
        self.shape = shape

    # ------------------------------------------------------------ setup
    def preload(self, cluster) -> None:
        """Load initial records onto their owning shards (zero time)."""
        shape = self.shape
        for i in range(shape.preload_records):
            key = make_key(i, shape.key_width)
            shard = cluster.router.shard_for_key(key)
            shard.server.store.set(
                key, make_value(key, shape.value_size,
                                shape.incompressible_fraction)
            )

    # ------------------------------------------------------------ running
    def run(self, cluster, warmup_ops: int = 0) -> ClusterReport:
        """Drive the cluster to completion and report.

        Mirrors :meth:`ClosedLoopWorkload.run`: shared cursor over a
        pre-drawn sequence, ``warmup_ops`` excluded from metrics, the
        run settles only after every shard's snapshots finish.
        """
        shape = self.shape
        env = cluster.env
        self.preload(cluster)
        keys, is_get = shape._draw_sequence()
        cursor = {"i": 0}
        snapshot_at = (
            int(shape.total_ops * shape.snapshot_at_fraction)
            if shape.snapshot_at_fraction is not None
            else None
        )
        measure = {"t": 0.0, "done": warmup_ops == 0,
                   "streams": _stream_baseline(cluster.device.ftl),
                   "routed0": list(cluster.router.routed)}
        started = [snapshot_at is None] * len(cluster.shards)

        def begin_measurement() -> None:
            measure["done"] = True
            measure["t"] = env.now
            measure["streams"] = _stream_baseline(cluster.device.ftl)
            measure["routed0"] = list(cluster.router.routed)
            for shard in cluster.shards:
                shard.server.reset_metrics()

        def client():
            while True:
                i = cursor["i"]
                if i >= shape.total_ops:
                    return
                cursor["i"] = i + 1
                if not measure["done"] and i >= warmup_ops:
                    begin_measurement()
                yield from cluster.router.execute(
                    shape._op(keys[i], is_get[i])
                )
                if snapshot_at is not None and i >= snapshot_at \
                        and not all(started):
                    # On-Demand backup of the whole cluster; a shard
                    # mid-WAL-snapshot declines and is retried later
                    for j, s in enumerate(cluster.shards):
                        if not started[j] and s.server.start_snapshot(
                                SnapshotKind.ON_DEMAND) is not None:
                            started[j] = True

        procs = [env.process(client(), name=f"cluster-client-{c}")
                 for c in range(shape.clients)]
        for p in procs:
            env.run(until=p)

        def settle():
            while any(s.server.snapshot_in_progress for s in cluster.shards):
                yield env.idle_wait(1e-3)

        env.run(until=env.process(settle(), name="cluster-settle"))
        return self._report(cluster, measure)

    # ------------------------------------------------------------ reporting
    def _shard_report(self, cluster, index: int, t0: float,
                      streams0: dict) -> WorkloadReport:
        shard = cluster.shards[index]
        env = cluster.env
        m = shard.system.metrics
        rep = WorkloadReport()
        rep.ops = len(m.ops)
        rep.duration = env.now - t0
        phases = m.phase_rps(t_end=env.now)
        rep.rps = phases["average"]
        rep.rps_wal_only = phases["wal_only"]
        rep.rps_wal_snapshot = phases["wal_snapshot"]
        rep.set_p999 = m.set_latency.p(99.9)
        rep.get_p999 = m.get_latency.p(99.9)
        rep.set_mean = m.set_latency.mean()
        rep.steady_memory = shard.server.store.used_bytes
        rep.peak_memory = m.memory.peak
        rep.snapshot_times = [s.duration for s in m.snapshots]
        rep.snapshot_count = len(m.snapshots)
        if shard.policy is not None:
            rep.waf = _waf_since(cluster.device.ftl, shard.policy.pids,
                                 streams0)
        else:
            # baseline: all shards share stream 0 — device-global WAF
            rep.waf = _waf_since(cluster.device.ftl,
                                 cluster.device.ftl.stream_ids, streams0)
        return rep

    def _report(self, cluster, measure: dict) -> ClusterReport:
        env = cluster.env
        t0 = measure["t"]
        streams0 = measure["streams"]
        out = ClusterReport()
        out.shard_names = [s.name for s in cluster.shards]
        out.pid_allocation = cluster.pid_report()
        out.routed = [
            n - n0 for n, n0 in zip(cluster.router.routed,
                                    measure["routed0"])
        ]
        for i in range(len(cluster.shards)):
            out.per_shard.append(self._shard_report(cluster, i, t0, streams0))
        out.shard_waf = [r.waf for r in out.per_shard]

        agg = WorkloadReport()
        agg.ops = sum(r.ops for r in out.per_shard)
        agg.duration = env.now - t0
        agg.rps = agg.ops / agg.duration if agg.duration > 0 else 0.0
        # shards serve concurrently: cluster phase throughput is the
        # sum of the per-shard phase rates
        agg.rps_wal_only = sum(r.rps_wal_only for r in out.per_shard)
        agg.rps_wal_snapshot = sum(
            r.rps_wal_snapshot for r in out.per_shard
        )
        set_all = LatencyRecorder("cluster-SET")
        get_all = LatencyRecorder("cluster-GET")
        for shard in cluster.shards:
            m = shard.system.metrics
            set_all.extend(m.set_latency.samples)
            get_all.extend(m.get_latency.samples)
        agg.set_p999 = set_all.p(99.9)
        agg.get_p999 = get_all.p(99.9)
        agg.set_mean = set_all.mean()
        agg.steady_memory = sum(r.steady_memory for r in out.per_shard)
        agg.peak_memory = sum(r.peak_memory for r in out.per_shard)
        agg.snapshot_times = [
            t for r in out.per_shard for t in r.snapshot_times
        ]
        agg.snapshot_count = sum(r.snapshot_count for r in out.per_shard)
        agg.waf = _waf_since(cluster.device.ftl,
                             cluster.device.ftl.stream_ids, streams0)
        st = cluster.device.ftl.stats
        agg.gc_segments_erased = st.segments_erased
        out.aggregate = agg
        return out
