"""Workload generators mirroring the paper's two benchmarks (§5.1).

* :class:`RedisBenchWorkload` — the redis-benchmark shape: SET-only,
  50 concurrent closed-loop clients, 8-byte keys over a large key
  range, 4096-byte values; an On-Demand snapshot at the end of each
  repetition.
* :class:`YcsbAWorkload` — YCSB-A: 50/50 GET/SET over a zipfian key
  distribution, 8 threads, 2048-byte values, records preloaded.

Both are parameterized by a :class:`Scale` so the same shape runs at
paper scale (28 M ops / 26 GB) or laptop scale (thousands of ops /
MBs). Values are deterministically generated per key with a target
compressibility, so snapshots behave like the paper's (compression
does real work but doesn't collapse the data).
"""

from repro.workloads.cluster import ClusterReport, ClusterWorkload
from repro.workloads.keys import (
    UniformKeys,
    ZipfianKeys,
    make_key,
    make_value,
)
from repro.workloads.runner import (
    ClosedLoopWorkload,
    RedisBenchWorkload,
    WorkloadReport,
    YcsbAWorkload,
)
from repro.workloads.trace import TraceWorkload, load_trace, save_trace

__all__ = [
    "UniformKeys",
    "ZipfianKeys",
    "make_key",
    "make_value",
    "ClosedLoopWorkload",
    "RedisBenchWorkload",
    "YcsbAWorkload",
    "WorkloadReport",
    "ClusterWorkload",
    "ClusterReport",
    "TraceWorkload",
    "load_trace",
    "save_trace",
]
