"""Replica bootstrap from an On-Demand snapshot (§2.1's use case).

The paper motivates On-Demand snapshots with "master-slave data
transfer or point-in-time backups". This module implements that full
sync the way Redis does it:

1. the master takes (or reuses) an On-Demand snapshot;
2. the snapshot stream is transferred to the replica over a modeled
   link (bandwidth + RTT) — on the master side it is read through the
   system's snapshot source (passthru read-ahead on SlimIO, page cache
   on the baseline), so the master's I/O path determines how fast the
   sync gets off the box;
3. records logged on the master after the snapshot's fork point are
   forwarded and replayed on the replica, which then matches the
   master exactly.

The replica is just another system handle (baseline or SlimIO); its
own persistence applies to the replicated writes as usual.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Generator

from repro.imdb import ClientOp
from repro.kernel.accounting import CpuAccount
from repro.persist import SnapshotKind
from repro.persist.compress import Compressor
from repro.persist.encoding import RdbReader
from repro.sim import Environment

__all__ = ["ReplicationLink", "SyncReport", "full_sync"]

MB = 1024 * 1024


@dataclass(frozen=True)
class ReplicationLink:
    """A point-to-point network model for the sync stream."""

    bandwidth: float = 1250 * MB / 10  # 1 GbE payload rate
    rtt: float = 200e-6
    mtu_payload: int = 64 * 1024  # streaming chunk

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.mtu_payload <= 0:
            raise ValueError("bandwidth and mtu must be positive")
        if self.rtt < 0:
            raise ValueError("negative rtt")

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth


@dataclass
class SyncReport:
    """Outcome of one full sync."""

    snapshot_bytes: int = 0
    snapshot_entries: int = 0
    records_forwarded: int = 0
    duration: float = 0.0
    transfer_time: float = 0.0

    @property
    def effective_throughput(self) -> float:
        return self.snapshot_bytes / self.duration if self.duration else 0.0


def full_sync(
    master,
    replica,
    link: ReplicationLink | None = None,
    reuse_snapshot: bool = False,
    key_filter: Callable[[bytes], bool] | None = None,
) -> Generator:
    """Bootstrap ``replica`` from ``master``; returns :class:`SyncReport`.

    Both systems must share one simulation environment. With
    ``reuse_snapshot`` the latest published On-Demand snapshot is
    shipped as-is (stale tail covered by WAL forwarding only for
    records the master still has buffered — Redis semantics require a
    fresh BGSAVE for true full sync, which is the default here).

    ``key_filter`` restricts the sync to a key subset: only matching
    snapshot entries are loaded on the replica and only matching
    post-fork writes are forwarded. This is the transfer engine for
    slot-range migration (:func:`repro.cluster.reshard.migrate_slots`),
    where the "replica" is a live shard that keeps its own keys.
    """
    env: Environment = master.env
    if replica.env is not env:
        raise ValueError("master and replica must share an environment")
    link = link or ReplicationLink()
    report = SyncReport()
    t0 = env.now

    # 1) snapshot at a pinned fork point; capture the replication
    #    backlog from that exact instant
    backlog: list[ClientOp] = []
    original_serve = master.server._serve

    def tapped_serve(op):
        if op.op in ("SET", "DEL") and \
                (key_filter is None or key_filter(op.key)):
            backlog.append(op)
        return original_serve(op)

    # the tap stays installed from the fork point until the backlog has
    # fully drained onto the replica — every master write in between is
    # part of this sync
    master.server._serve = tapped_serve
    try:
        if not reuse_snapshot:
            proc = master.server.start_snapshot(SnapshotKind.ON_DEMAND)
            if proc is None:
                raise RuntimeError(
                    "another snapshot is in progress; retry the full sync"
                )
            stats = yield proc
            if not stats.ok:
                raise RuntimeError("master snapshot failed")

        # 2) stream the snapshot: master-side reads through its I/O
        #    path, then the wire
        acct = CpuAccount(env, "repl-sender")
        source = master.snapshot_source(SnapshotKind.ON_DEMAND)
        total = source.size
        blob = bytearray()
        offset = 0
        t_wire = 0.0
        yield env.timeout(link.rtt)  # PSYNC handshake
        while offset < total:
            n = min(link.mtu_payload, total - offset)
            piece = yield from source.read(offset, n, acct)
            blob.extend(piece)
            wire = link.transfer_time(n)
            t_wire += wire
            yield env.timeout(wire)
            offset += n
        report.snapshot_bytes = total
        report.transfer_time = t_wire

        # 3) replica loads the image
        compressor = Compressor(
            level=replica.config.compression_level,
            model=replica.config.compression,
        )
        entries = RdbReader(compressor).read_all(bytes(blob))
        if key_filter is not None:
            entries = [(k, v) for k, v in entries if key_filter(k)]
        report.snapshot_entries = len(entries)
        model = replica.config.compression
        raw = sum(len(k) + len(v) for k, v in entries)
        r_acct = CpuAccount(env, "repl-loader")
        _cpu_ev = r_acct.charge(
            "decompress",
            model.decompress_time(raw, max(1, len(entries) // 64)),
        )
        if _cpu_ev is not None:
            yield _cpu_ev
        for key, value in entries:
            yield from replica.server.execute(ClientOp("SET", key, value))

        # 4) forward the backlog until it drains (new master writes may
        #    keep arriving while we replay)
        while backlog:
            op = backlog.pop(0)
            wire = link.transfer_time(len(op.key) + len(op.value) + 16)
            yield env.timeout(wire)
            yield from replica.server.execute(op)
            report.records_forwarded += 1
    finally:
        master.server._serve = original_serve

    report.duration = env.now - t0
    return report
