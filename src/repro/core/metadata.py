"""The Metadata Region: crash-safe state of the whole LBA space.

One logical record — WAL generation boundaries, slot roles and
published snapshot lengths, a monotone sequence number — stored as two
alternating physical copies (page A / page B). An update writes the
*other* page; recovery reads both and picks the valid copy with the
highest seqno, so a torn metadata write can never destroy the previous
consistent state.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from collections.abc import Generator

from repro.core.lba import LbaLayout, SlotRole
from repro.kernel.accounting import CpuAccount
from repro.kernel.iouring import PassthruQueuePair
from repro.nvme import ReadCmd, WriteCmd

__all__ = ["Metadata", "MetadataCodec", "MetadataStore"]

_MAGIC = b"SLIMMETA"
# magic, seqno, wal_gen_start, wal_head, wal_prev_start, wal_prev_bytes
_HDR = struct.Struct("<8sQQQQQ")
_SLOT = struct.Struct("<BQ")  # role, length
_CRC = struct.Struct("<I")
_NO_PREV = 0xFFFFFFFFFFFFFFFF


@dataclass
class Metadata:
    """The logical metadata record."""

    seqno: int = 0
    wal_gen_start: int = 0
    wal_head: int = 0
    wal_prev_start: int | None = None  # retired-pending generation
    wal_prev_bytes: int = 0  # logical bytes of that generation
    slot_roles: list[int] = field(
        default_factory=lambda: [int(SlotRole.RESERVE), int(SlotRole.UNUSED),
                                 int(SlotRole.UNUSED)]
    )
    slot_lengths: list[int] = field(default_factory=lambda: [0, 0, 0])

    def __post_init__(self) -> None:
        if len(self.slot_roles) != 3 or len(self.slot_lengths) != 3:
            raise ValueError("exactly three slots")


class MetadataCodec:
    """Fixed-size page encoding with CRC."""

    @staticmethod
    def encode(meta: Metadata, page_size: int) -> bytes:
        prev = _NO_PREV if meta.wal_prev_start is None else meta.wal_prev_start
        body = _HDR.pack(_MAGIC, meta.seqno, meta.wal_gen_start,
                         meta.wal_head, prev, meta.wal_prev_bytes)
        for role, length in zip(meta.slot_roles, meta.slot_lengths):
            body += _SLOT.pack(role, length)
        body += _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
        if len(body) > page_size:
            raise ValueError("metadata exceeds one page")
        return body + bytes(page_size - len(body))

    @staticmethod
    def decode(page: bytes) -> Metadata | None:
        """Returns None for blank/corrupt pages (not an error: recovery
        probes both copies)."""
        need = _HDR.size + 3 * _SLOT.size + _CRC.size
        if len(page) < need:
            return None
        magic, seqno, gen_start, head, prev, prev_bytes = _HDR.unpack_from(page, 0)
        if magic != _MAGIC:
            return None
        body_end = _HDR.size + 3 * _SLOT.size
        (crc,) = _CRC.unpack_from(page, body_end)
        if crc != (zlib.crc32(page[:body_end]) & 0xFFFFFFFF):
            return None
        roles, lengths = [], []
        for i in range(3):
            role, length = _SLOT.unpack_from(page, _HDR.size + i * _SLOT.size)
            roles.append(role)
            lengths.append(length)
        return Metadata(seqno=seqno, wal_gen_start=gen_start, wal_head=head,
                        wal_prev_start=None if prev == _NO_PREV else prev,
                        wal_prev_bytes=prev_bytes,
                        slot_roles=roles, slot_lengths=lengths)


class MetadataStore:
    """Dual-copy metadata I/O over a passthru ring."""

    def __init__(self, ring: PassthruQueuePair, layout: LbaLayout,
                 metadata_pid: int = 0):
        if layout.metadata_lbas < 2:
            raise ValueError("dual-copy metadata needs 2 pages")
        self.ring = ring
        self.layout = layout
        self.pid = metadata_pid
        self._next_copy = 0  # which physical page the next write targets
        self._seqno = 0

    @property
    def page_size(self) -> int:
        return self.ring.device.lba_size

    def write(self, meta: Metadata, account: CpuAccount) -> Generator:
        """Durably persist ``meta`` (seqno assigned here, alternating page)."""
        self._seqno += 1
        meta.seqno = self._seqno
        page = MetadataCodec.encode(meta, self.page_size)
        lba = self.layout.metadata_base + self._next_copy
        self._next_copy ^= 1
        yield from self.ring.submit_and_wait(
            WriteCmd(lba=lba, nlb=1, data=page, pid=self.pid), account
        )

    def read(self, account: CpuAccount) -> Generator:
        """Recovery: read both copies, return the freshest valid one
        (None on a factory-blank device)."""
        best: Metadata | None = None
        for i in range(2):
            page = yield from self.ring.submit_and_wait(
                ReadCmd(lba=self.layout.metadata_base + i, nlb=1), account
            )
            meta = MetadataCodec.decode(page)
            if meta is not None and (best is None or meta.seqno > best.seqno):
                best = meta
                self._next_copy = i ^ 1
        if best is not None:
            self._seqno = best.seqno
        return best
