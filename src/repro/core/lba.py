"""LBA space management: regions and the three-slot scheme (§4.2).

Bypassing the file system means SlimIO owns the raw LBA space. Redis
persistence is sequential, so management is simple:

* **Metadata Region** — two pages at the front (dual-copy metadata).
* **Snapshot Region** — three equal slots. A new snapshot is always
  written into the current **Reserve** slot; on success the reserve is
  *promoted* to the snapshot's role (WAL-Snapshot or On-Demand) and the
  role's previous slot becomes the new reserve (and is deallocated).
  A failure anywhere leaves the previous snapshot untouched.
* **WAL Region** — the rest, used as a circular log. Pages are
  addressed by a monotonically increasing *virtual page number*; the
  physical page is ``base + vpn % wal_pages``. A generation is
  ``[gen_start, head)``; the previous generation is deallocated only
  after the WAL-Snapshot covering it is durable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.persist.snapshot import SnapshotKind

__all__ = ["SlotRole", "LbaLayout", "SnapshotSlots", "WalRegion", "LbaSpaceManager"]


class SlotRole(enum.IntEnum):
    RESERVE = 0
    WAL_SNAPSHOT = 1
    ONDEMAND_SNAPSHOT = 2
    UNUSED = 3

    @staticmethod
    def for_kind(kind: SnapshotKind) -> SlotRole:
        return (
            SlotRole.WAL_SNAPSHOT
            if kind is SnapshotKind.WAL_TRIGGERED
            else SlotRole.ONDEMAND_SNAPSHOT
        )


@dataclass(frozen=True)
class LbaLayout:
    """Region boundaries, all in LBAs (pages)."""

    total_lbas: int
    metadata_lbas: int = 2
    slot_lbas: int = 0  # computed by `partition` when 0
    #: fraction of post-metadata space given to the snapshot region
    snapshot_fraction: float = 0.45

    def __post_init__(self) -> None:
        if self.total_lbas < 16:
            raise ValueError("device too small")
        if not 0.0 < self.snapshot_fraction < 1.0:
            raise ValueError("snapshot_fraction must be in (0, 1)")

    @staticmethod
    def partition(total_lbas: int, metadata_lbas: int = 2,
                  snapshot_fraction: float = 0.45) -> LbaLayout:
        usable = total_lbas - metadata_lbas
        slot = max(1, int(usable * snapshot_fraction) // 3)
        return LbaLayout(total_lbas, metadata_lbas, slot, snapshot_fraction)

    @property
    def metadata_base(self) -> int:
        return 0

    @property
    def snapshot_base(self) -> int:
        return self.metadata_lbas

    @property
    def wal_base(self) -> int:
        return self.metadata_lbas + 3 * self.slot_lbas

    @property
    def wal_lbas(self) -> int:
        return self.total_lbas - self.wal_base

    def slot_base(self, slot_idx: int) -> int:
        if not 0 <= slot_idx < 3:
            raise ValueError("slot index must be 0..2")
        return self.snapshot_base + slot_idx * self.slot_lbas


class SnapshotSlots:
    """Role assignment and promotion over the three snapshot slots."""

    def __init__(self, layout: LbaLayout):
        self.layout = layout
        self.roles: list[SlotRole] = [SlotRole.RESERVE, SlotRole.UNUSED,
                                      SlotRole.UNUSED]
        self.lengths: list[int] = [0, 0, 0]  # bytes of published snapshot

    def slot_of(self, role: SlotRole) -> int | None:
        try:
            return self.roles.index(role)
        except ValueError:
            return None

    @property
    def reserve_slot(self) -> int:
        idx = self.slot_of(SlotRole.RESERVE)
        assert idx is not None, "invariant: exactly one reserve slot"
        return idx

    def promote(self, kind: SnapshotKind, snapshot_bytes: int) -> int | None:
        """Publish the snapshot in the reserve slot.

        Returns the slot index that became the new reserve (the role's
        previous slot, to be deallocated by the caller), or None if the
        role had no previous slot.
        """
        role = SlotRole.for_kind(kind)
        new_slot = self.reserve_slot
        old_slot = self.slot_of(role)
        self.roles[new_slot] = role
        self.lengths[new_slot] = snapshot_bytes
        if old_slot is not None:
            self.roles[old_slot] = SlotRole.RESERVE
            self.lengths[old_slot] = 0
            return old_slot
        # use an UNUSED slot as the new reserve
        unused = self.slot_of(SlotRole.UNUSED)
        assert unused is not None, "invariant: reserve or unused available"
        self.roles[unused] = SlotRole.RESERVE
        return None

    def snapshot_state(self) -> tuple[list[SlotRole], list[int]]:
        """Capture (roles, lengths) so a failed promotion can revert."""
        return list(self.roles), list(self.lengths)

    def restore_state(self, state: tuple[list[SlotRole], list[int]]) -> None:
        """Revert to a state captured by :meth:`snapshot_state`.

        Used when the durable metadata write after a promotion fails:
        the in-memory roles must roll back to match what is on flash,
        or the next metadata write would publish a promotion whose
        snapshot the caller has already abandoned.
        """
        roles, lengths = state
        self.roles = list(roles)
        self.lengths = list(lengths)

    def check_invariants(self) -> None:
        if self.roles.count(SlotRole.RESERVE) != 1:
            raise AssertionError("must have exactly one reserve slot")
        for role in (SlotRole.WAL_SNAPSHOT, SlotRole.ONDEMAND_SNAPSHOT):
            if self.roles.count(role) > 1:
                raise AssertionError(f"duplicate {role.name} slot")


class WalRegion:
    """Circular WAL allocation in virtual page numbers."""

    def __init__(self, layout: LbaLayout):
        self.layout = layout
        self.gen_start = 0  # vpn
        self.head = 0  # vpn, next page to write
        self.prev_start: int | None = None  # retired gen awaiting dealloc
        #: logical byte length of the previous generation — lives here
        #: (not on the WAL path) so *every* metadata writer can build a
        #: complete, consistent Metadata from space state alone
        self.prev_bytes = 0

    @property
    def wal_pages(self) -> int:
        return self.layout.wal_lbas

    def vpn_to_lba(self, vpn: int) -> int:
        return self.layout.wal_base + vpn % self.wal_pages

    def live_pages(self) -> int:
        oldest = self.prev_start if self.prev_start is not None else self.gen_start
        return self.head - oldest

    def alloc(self, npages: int) -> int:
        """Reserve ``npages`` at the head; returns the starting vpn."""
        if npages < 0:
            raise ValueError("negative alloc")
        if self.live_pages() + npages > self.wal_pages:
            raise OSError(
                "WAL region full — WAL-snapshot trigger must fire earlier"
            )
        vpn = self.head
        self.head += npages
        return vpn

    def contiguous_run(self, vpn: int, npages: int) -> list[tuple[int, int]]:
        """Split a vpn run into physically contiguous (lba, n) pieces
        (at most two, when the run wraps the region end)."""
        out = []
        while npages > 0:
            lba = self.vpn_to_lba(vpn)
            room = self.layout.wal_base + self.wal_pages - lba
            n = min(npages, room)
            out.append((lba, n))
            vpn += n
            npages -= n
        return out

    def start_new_generation(self) -> tuple[int, int]:
        """Rotate: the live gen is retired; returns its (start, end) vpn
        for deallocation *after* metadata is durable."""
        retired = (self.gen_start, self.head)
        self.prev_start = self.gen_start
        self.gen_start = self.head
        return retired

    def retire_previous(self) -> None:
        """Previous generation fully deallocated."""
        self.prev_start = None
        self.prev_bytes = 0


class LbaSpaceManager:
    """The whole raw LBA space of one SlimIO deployment."""

    def __init__(self, total_lbas: int, metadata_lbas: int = 2,
                 snapshot_fraction: float = 0.45):
        self.layout = LbaLayout.partition(total_lbas, metadata_lbas,
                                          snapshot_fraction)
        self.slots = SnapshotSlots(self.layout)
        self.wal = WalRegion(self.layout)

    def slot_extent(self, slot_idx: int) -> tuple[int, int]:
        """(lba, npages) of a snapshot slot."""
        return self.layout.slot_base(slot_idx), self.layout.slot_lbas
