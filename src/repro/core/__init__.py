"""SlimIO — the paper's contribution.

SlimIO replaces Redis's file-backed persistence transports with
io_uring **I/O passthru** paths over a raw LBA space, and tags writes
with FDP **placement IDs** so WAL and snapshot lifetimes never share a
Reclaim Unit:

* :mod:`repro.core.lba` — the LBA space: Metadata Region, circular WAL
  Region, and a Snapshot Region of three slots (WAL-Snapshot slot,
  On-Demand slot, Reserve slot) with the promote-on-success state
  machine of §4.2.
* :mod:`repro.core.metadata` — the crash-safe metadata page (dual-copy,
  seqno + CRC) recording the WAL position and slot roles.
* :mod:`repro.core.placement` — lifetime → Placement ID policy (§4.3).
* :mod:`repro.core.paths` — the WAL-Path and Snapshot-Path: each
  process gets its own SQ/CQ pair in SQPOLL mode (§4.1), implementing
  the same :class:`~repro.persist.interfaces.AppendSink` /
  :class:`SnapshotSink` contracts as the baseline file transports.
* :mod:`repro.core.readahead` — the sequential read-ahead buffer that
  accelerates recovery (§5.3).
* :mod:`repro.core.engine` — one-call builders for the baseline system
  and the SlimIO system, plus recovery entry points; this is the
  library's main public API.
"""

from repro.core.engine import (
    BaselineSystem,
    SlimIOSystem,
    SystemConfig,
    build_baseline,
    build_slimio,
)
from repro.core.lba import LbaLayout, LbaSpaceManager, SlotRole
from repro.core.metadata import Metadata, MetadataCodec, MetadataStore
from repro.core.paths import SlimIOSnapshotSource, SnapshotPath, WalPath
from repro.core.placement import PlacementPolicy
from repro.core.readahead import ReadAheadBuffer
from repro.core.replicate import ReplicationLink, SyncReport, full_sync
from repro.core.verify import VerifyReport, verify_lba_space

__all__ = [
    "BaselineSystem",
    "SlimIOSystem",
    "SystemConfig",
    "build_baseline",
    "build_slimio",
    "LbaLayout",
    "LbaSpaceManager",
    "SlotRole",
    "Metadata",
    "MetadataCodec",
    "MetadataStore",
    "WalPath",
    "SnapshotPath",
    "SlimIOSnapshotSource",
    "PlacementPolicy",
    "ReadAheadBuffer",
    "VerifyReport",
    "verify_lba_space",
    "ReplicationLink",
    "SyncReport",
    "full_sync",
]
