"""The WAL-Path and Snapshot-Path (paper §4.1).

Each path owns a :class:`~repro.kernel.iouring.PassthruQueuePair` —
its private SQ/CQ pair in SQPOLL mode — so the main process's WAL
traffic and the snapshot child's bulk writes never meet above the NVMe
queues: no shared journal lock, no shared scheduler queue, no page
cache. Writes carry the lifetime PID from the
:class:`~repro.core.placement.PlacementPolicy`.

Byte framing: the LBA space is page-granular, so both paths keep a
tail-page staging buffer; a flush writes whole pages and the next
flush rewrites the (remapped-by-FTL) tail page with more data.

Durability/ordering contracts:

* ``WalPath.flush`` returns only when the appended records are on
  flash; the metadata head is then updated *asynchronously* — recovery
  treats it as a hint and scans forward (CRC-delimited), so no record
  durability is lost to metadata staleness.
* ``SnapshotPath`` streams into the **reserve slot** with a bounded
  in-flight window (the CQ handler thread reaps completions);
  ``finalize`` waits for all data, durably writes the promoted
  metadata, and only then deallocates the replaced slot.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.core.lba import LbaSpaceManager, SlotRole
from repro.core.metadata import Metadata, MetadataStore
from repro.core.placement import PlacementPolicy
from repro.core.readahead import ReadAheadBuffer
from repro.kernel.accounting import CpuAccount
from repro.kernel.iouring import PassthruQueuePair
from repro.nvme import ReadCmd, WriteCmd
from repro.persist.interfaces import AppendSink, SnapshotSink, SnapshotSource
from repro.persist.snapshot import SnapshotKind
from repro.sim import Environment, Event, Resource

__all__ = ["WalPath", "SnapshotPath", "SlimIOSnapshotSource"]


def _pad_to_page(data: bytes, page: int) -> bytes:
    rem = len(data) % page
    return data if rem == 0 else data + bytes(page - rem)


class WalPath(AppendSink):
    """Append log over the circular WAL region via passthru."""

    def __init__(
        self,
        env: Environment,
        ring: PassthruQueuePair,
        space: LbaSpaceManager,
        meta_store: MetadataStore,
        account: CpuAccount,
        placement: PlacementPolicy | None = None,
    ):
        self.env = env
        self.ring = ring
        self.space = space
        self.meta = meta_store
        self.account = account
        self.placement = placement or PlacementPolicy()
        self._staged: list[bytes] = []
        self._staged_bytes = 0
        self._tail: bytes = b""  # bytes already flushed into a partial page
        self._tail_vpn: int | None = None
        # the circular-log cursor is single-writer: WalManager's everysec
        # fsync runs outside its sink lock (safe for a file sink, whose
        # flush is an idempotent fsync), so concurrent flush() calls CAN
        # arrive here — serialize them or two flushes compute their
        # start page from stale _tail_vpn and overwrite each other
        self._flush_lock = Resource(env, capacity=1)
        self._gen_bytes = 0
        self._prev_gen_bytes = 0  # logical length of the retiring generation
        self._meta_inflight: Event | None = None
        self.obs = None

    def attach_obs(self, registry) -> None:
        """Register instruments: flush sizes and device page traffic."""
        self.obs = registry
        self._obs_flush_bytes = registry.histogram("walpath_flush_bytes")
        self._obs_flush_pages = registry.counter("walpath_flush_pages_total")
        self._obs_meta_writes = registry.counter("walpath_meta_writes_total")

    # ------------------------------------------------------------------ sink API
    @property
    def size(self) -> int:
        return self._gen_bytes

    def append(self, data: bytes, account: CpuAccount) -> Generator:
        """Stage at the tail (user-space; no device I/O yet)."""
        self._staged.append(data)
        self._staged_bytes += len(data)
        self._gen_bytes += len(data)
        return
        yield  # pragma: no cover - generator form for interface parity

    def flush(self, account: CpuAccount) -> Generator:
        """Write staged bytes; returns when they are on flash."""
        if not self._staged and self._tail_vpn is None:
            return
        req = self._flush_lock.request()
        yield req
        try:
            yield from self._flush_locked(account)
        finally:
            self._flush_lock.release(req)

    def _flush_locked(self, account: CpuAccount) -> Generator:
        if not self._staged:
            return  # tail already durable (or a rival flush drained us)
        page = self.ring.device.lba_size
        data = self._tail + b"".join(self._staged)
        self._staged.clear()
        self._staged_bytes = 0

        start_vpn = (
            self._tail_vpn
            if self._tail_vpn is not None
            else self.space.wal.alloc(0)
        )
        full_pages = len(data) // page
        rem = len(data) % page
        needed = full_pages + (1 if rem else 0)
        already = 1 if self._tail_vpn is not None else 0
        if needed > already:
            self.space.wal.alloc(needed - already)

        payload = _pad_to_page(data, page)
        events = []
        vpn = start_vpn
        for lba, n in self.space.wal.contiguous_run(start_vpn, needed):
            piece = payload[(vpn - start_vpn) * page : (vpn - start_vpn + n) * page]
            ev = yield from self.ring.submit(
                WriteCmd(lba=lba, nlb=n, data=piece, pid=self.placement.wal_pid),
                account,
            )
            events.append(ev)
            vpn += n
        for ev in events:
            yield from self.ring.wait(ev, account)
        if self.obs is not None:
            self._obs_flush_bytes.observe(float(len(data)))
            self._obs_flush_pages.inc(needed)

        if rem:
            self._tail = data[full_pages * page :]
            self._tail_vpn = start_vpn + full_pages
        else:
            self._tail = b""
            self._tail_vpn = None
        yield from self._update_metadata_async(account)

    def _update_metadata_async(self, account: CpuAccount) -> Generator:
        """Persist the WAL head hint without waiting for it."""
        if self._meta_inflight is not None and not self._meta_inflight.processed:
            return  # one in flight is enough: it's only a hint
        meta = self._current_meta()
        done = self.env.event()

        def _writer():
            yield from self.meta.write(meta, self.account)
            done.succeed()

        self.env.process(_writer(), name="wal-meta")
        self._meta_inflight = done
        if self.obs is not None:
            self._obs_meta_writes.inc()
        return
        yield  # pragma: no cover

    def _current_meta(self) -> Metadata:
        return Metadata(
            wal_gen_start=self.space.wal.gen_start,
            wal_head=self.space.wal.head,
            wal_prev_start=self.space.wal.prev_start,
            wal_prev_bytes=self._prev_gen_bytes,
            slot_roles=[int(r) for r in self.space.slots.roles],
            slot_lengths=list(self.space.slots.lengths),
        )

    def begin_generation(self, account: CpuAccount) -> Generator:
        """Start a new generation at the fork; the old one stays live.

        Metadata records both generations so a crash before the
        snapshot completes still replays the full chain.
        """
        yield from self.flush(account)
        self.space.wal.start_new_generation()
        self._tail = b""
        self._tail_vpn = None
        self._prev_gen_bytes = self._gen_bytes
        self._gen_bytes = 0
        yield from self.meta.write(self._current_meta(), account)

    def retire_previous(self, account: CpuAccount) -> Generator:
        """Deallocate the pre-snapshot generation (snapshot durable).

        Ordering: metadata stops referencing the old generation first,
        then its pages are TRIMmed — a crash in between only leaks
        pages until the next rotation, never loses data.
        """
        wal = self.space.wal
        if wal.prev_start is None:
            return
        retired_start, retired_end = wal.prev_start, wal.gen_start
        wal.retire_previous()
        self._prev_gen_bytes = 0
        yield from self.meta.write(self._current_meta(), account)
        for lba, n in wal.contiguous_run(
            retired_start, retired_end - retired_start
        ):
            if n:
                ev = yield from self.ring.deallocate(lba, n, account)
                yield from self.ring.wait(ev, account)

    def read_all(self, account: CpuAccount) -> Generator:
        """Read every live generation (recovery; CRC-delimited tail).

        Reads from the oldest live generation through the metadata head
        hint, then keeps scanning page batches until a batch of zero
        pages — the head hint may lag the last durable flush.
        """
        yield from self.flush(account)  # no-op post-crash; convenience live
        wal = self.space.wal
        blob = bytearray()
        # previous generation first, trimmed to its logical length so the
        # page padding at its tail doesn't break the record stream
        if wal.prev_start is not None:
            prev = yield from self._read_range(
                wal.prev_start, wal.gen_start, account
            )
            blob.extend(prev[: self._prev_gen_bytes])
        # current generation through the metadata head hint
        cur = yield from self._read_range(wal.gen_start, wal.head, account)
        blob.extend(cur)
        # scan beyond the hint (bounded by region capacity): the durable
        # head may be ahead of the last persisted metadata
        vpn = wal.head
        oldest = wal.prev_start if wal.prev_start is not None else wal.gen_start
        limit = oldest + wal.wal_pages
        while vpn < limit:
            n = min(16, limit - vpn)
            chunk = yield from self._read_range(vpn, vpn + n, account)
            vpn += n
            if not any(chunk):
                break
            blob.extend(chunk)
            wal.head = vpn  # adopt scanned pages into the live head
        return bytes(blob)

    def _read_range(self, vpn_start: int, vpn_end: int,
                    account: CpuAccount) -> Generator:
        wal = self.space.wal
        out = bytearray()
        vpn = vpn_start
        while vpn < vpn_end:
            for lba, n in wal.contiguous_run(vpn, min(vpn_end - vpn, 64)):
                data = yield from self.ring.submit_and_wait(
                    ReadCmd(lba=lba, nlb=n), account
                )
                out.extend(data)
                vpn += n
        return bytes(out)


class SnapshotPath(SnapshotSink):
    """Snapshot stream into the reserve slot via passthru (async writes)."""

    def __init__(
        self,
        env: Environment,
        ring: PassthruQueuePair,
        space: LbaSpaceManager,
        meta_store: MetadataStore,
        kind: SnapshotKind,
        placement: PlacementPolicy | None = None,
        write_batch_pages: int = 8,
        max_inflight_batches: int = 16,
    ):
        if write_batch_pages < 1 or max_inflight_batches < 1:
            raise ValueError("batch/window must be >= 1")
        self.env = env
        self.ring = ring
        self.space = space
        self.meta = meta_store
        self.kind = kind
        self.placement = placement or PlacementPolicy()
        self.batch_pages = write_batch_pages
        self.max_inflight = max_inflight_batches
        self._buffer = bytearray()
        self._slot: int | None = None
        self._pages_written = 0
        self._bytes = 0
        self._inflight: list[Event] = []
        self.obs = None

    def attach_obs(self, registry) -> None:
        """Register instruments: streamed pages + in-flight window."""
        self.obs = registry
        self._obs_pages = registry.counter("snapshot_path_pages_total",
                                           kind=self.kind.value)
        self._obs_window = registry.gauge("snapshot_path_inflight_batches",
                                          kind=self.kind.value)
        self._obs_window.set(0.0)

    @property
    def bytes_written(self) -> int:
        return self._bytes

    @property
    def pid(self) -> int:
        return self.placement.pid_for_snapshot(self.kind)

    def _ensure_slot(self) -> int:
        if self._slot is None:
            self._slot = self.space.slots.reserve_slot
            self._pages_written = 0
            self._bytes = 0
            self._buffer.clear()
            self._inflight.clear()
        return self._slot

    def write(self, data: bytes, account: CpuAccount) -> Generator:
        slot = self._ensure_slot()
        self._buffer.extend(data)
        self._bytes += len(data)
        page = self.ring.device.lba_size
        batch_bytes = self.batch_pages * page
        while len(self._buffer) >= batch_bytes:
            chunk = bytes(self._buffer[:batch_bytes])
            del self._buffer[:batch_bytes]
            yield from self._submit_pages(slot, chunk, account)

    def _submit_pages(self, slot: int, chunk: bytes,
                      account: CpuAccount) -> Generator:
        page = self.ring.device.lba_size
        base, cap = self.space.slot_extent(slot)
        npages = len(chunk) // page
        if self._pages_written + npages > cap:
            raise OSError("snapshot slot overflow — enlarge the slot size")
        ev = yield from self.ring.submit(
            WriteCmd(
                lba=base + self._pages_written,
                nlb=npages,
                data=chunk,
                pid=self.pid,
            ),
            account,
        )
        self._pages_written += npages
        self._inflight.append(ev)
        if self.obs is not None:
            self._obs_pages.inc(npages)
            self._obs_window.set(float(len(self._inflight)))
        # bounded window: the CQ handler keeps up, the submitter only
        # stalls when the device is genuinely behind
        while len(self._inflight) > self.max_inflight:
            oldest = self._inflight.pop(0)
            yield from self.ring.wait(oldest, account)
        if self.obs is not None:
            self._obs_window.set(float(len(self._inflight)))

    def finalize(self, account: CpuAccount) -> Generator:
        slot = self._ensure_slot()
        page = self.ring.device.lba_size
        if self._buffer:
            chunk = _pad_to_page(bytes(self._buffer), page)
            self._buffer.clear()
            yield from self._submit_pages(slot, chunk, account)
        # 1) all data durable
        while self._inflight:
            yield from self.ring.wait(self._inflight.pop(0), account)
        # 2) promote the reserve slot in the metadata, durably
        old_slot = self.space.slots.promote(self.kind, self._bytes)
        meta = Metadata(
            wal_gen_start=self.space.wal.gen_start,
            wal_head=self.space.wal.head,
            slot_roles=[int(r) for r in self.space.slots.roles],
            slot_lengths=list(self.space.slots.lengths),
        )
        yield from self.meta.write(meta, account)
        # 3) only now retire the previous snapshot of this kind
        if old_slot is not None:
            base, cap = self.space.slot_extent(old_slot)
            ev = yield from self.ring.deallocate(base, cap, account)
            yield from self.ring.wait(ev, account)
        self._slot = None

    def abort(self) -> None:
        """Discard the partial snapshot; the reserve slot stays reserve.

        Deallocation of the partial pages is deferred to the next use
        (writes simply overwrite); bookkeeping is reset immediately.
        """
        self._slot = None
        self._buffer.clear()
        self._inflight.clear()
        self._pages_written = 0
        self._bytes = 0


class SlimIOSnapshotSource(SnapshotSource):
    """Read a published snapshot slot through the read-ahead buffer."""

    def __init__(
        self,
        ring: PassthruQueuePair,
        space: LbaSpaceManager,
        kind: SnapshotKind,
        readahead_pages: int = 64,
    ):
        role = SlotRole.for_kind(kind)
        slot = space.slots.slot_of(role)
        if slot is None:
            raise FileNotFoundError(f"no published {role.name} snapshot")
        base, cap = space.slot_extent(slot)
        self._size = space.slots.lengths[slot]
        page = ring.device.lba_size
        npages = min(cap, -(-self._size // page)) if self._size else 0
        self._buffer = ReadAheadBuffer(
            ring, base, max(npages, 1), window_pages=readahead_pages
        )

    def attach_obs(self, registry) -> None:
        self._buffer.attach_obs(registry)

    @property
    def size(self) -> int:
        return self._size

    def read(self, offset: int, length: int, account: CpuAccount) -> Generator:
        length = max(0, min(length, self._size - offset))
        if length == 0:
            return b""
        data = yield from self._buffer.read(offset, length, account)
        return data
