"""The WAL-Path and Snapshot-Path (paper §4.1).

Each path owns a :class:`~repro.kernel.iouring.PassthruQueuePair` —
its private SQ/CQ pair in SQPOLL mode — so the main process's WAL
traffic and the snapshot child's bulk writes never meet above the NVMe
queues: no shared journal lock, no shared scheduler queue, no page
cache. Writes carry the lifetime PID from the
:class:`~repro.core.placement.PlacementPolicy`.

Byte framing: the LBA space is page-granular, so both paths keep a
tail-page staging buffer; a flush writes whole pages and the next
flush rewrites the (remapped-by-FTL) tail page with more data.

Durability/ordering contracts:

* ``WalPath.flush`` returns only when the appended records are on
  flash; the metadata head is then updated *asynchronously* — recovery
  treats it as a hint and scans forward (CRC-delimited), so no record
  durability is lost to metadata staleness.
* ``SnapshotPath`` streams into the **reserve slot** with a bounded
  in-flight window (the CQ handler thread reaps completions);
  ``finalize`` waits for all data, durably writes the promoted
  metadata, and only then deallocates the replaced slot.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.core.lba import LbaSpaceManager, SlotRole
from repro.core.metadata import Metadata, MetadataStore
from repro.core.placement import PlacementPolicy
from repro.core.readahead import ReadAheadBuffer
from repro.kernel.accounting import CpuAccount
from repro.kernel.iouring import PassthruQueuePair
from repro.nvme import ReadCmd, WriteCmd
from repro.persist.encoding import AofCodec
from repro.persist.interfaces import AppendSink, SnapshotSink, SnapshotSource
from repro.persist.snapshot import SnapshotKind
from repro.sim import Environment, Event, Resource

__all__ = ["WalPath", "SnapshotPath", "SlimIOSnapshotSource",
           "current_metadata"]


def _pad_to_page(data: bytes, page: int) -> bytes:
    rem = len(data) % page
    return data if rem == 0 else data + bytes(page - rem)


def current_metadata(space: LbaSpaceManager) -> Metadata:
    """A complete Metadata image of the space state *right now*.

    Every durable metadata write — the WAL head hint, generation
    rotation, snapshot promotion — must go through this one builder:
    recovery picks the copy with the highest seqno, so any writer that
    omits a field (the old snapshot-finalize path dropped the
    ``wal_prev_*`` handoff) durably erases another writer's state.
    """
    return Metadata(
        wal_gen_start=space.wal.gen_start,
        wal_head=space.wal.head,
        wal_prev_start=space.wal.prev_start,
        wal_prev_bytes=space.wal.prev_bytes,
        slot_roles=[int(r) for r in space.slots.roles],
        slot_lengths=list(space.slots.lengths),
    )


class WalPath(AppendSink):
    """Append log over the circular WAL region via passthru."""

    def __init__(
        self,
        env: Environment,
        ring: PassthruQueuePair,
        space: LbaSpaceManager,
        meta_store: MetadataStore,
        account: CpuAccount,
        placement: PlacementPolicy | None = None,
    ):
        self.env = env
        self.ring = ring
        self.space = space
        self.meta = meta_store
        self.account = account
        self.placement = placement or PlacementPolicy()
        self._staged: list[bytes] = []
        self._staged_bytes = 0
        self._tail: bytes = b""  # bytes already flushed into a partial page
        self._tail_vpn: int | None = None
        # the circular-log cursor is single-writer: WalManager's everysec
        # fsync runs outside its sink lock (safe for a file sink, whose
        # flush is an idempotent fsync), so concurrent flush() calls CAN
        # arrive here — serialize them or two flushes compute their
        # start page from stale _tail_vpn and overwrite each other
        self._flush_lock = Resource(env, capacity=1)
        self._gen_bytes = 0
        self._meta_inflight: Event | None = None
        self.obs = None

    @property
    def _prev_gen_bytes(self) -> int:
        """Logical length of the retiring generation (space-owned state,
        kept on :class:`WalRegion` so every metadata writer sees it)."""
        return self.space.wal.prev_bytes

    @_prev_gen_bytes.setter
    def _prev_gen_bytes(self, value: int) -> None:
        self.space.wal.prev_bytes = value

    def attach_obs(self, registry) -> None:
        """Register instruments: flush sizes and device page traffic."""
        self.obs = registry
        self._obs_flush_bytes = registry.histogram("walpath_flush_bytes")
        self._obs_flush_pages = registry.counter("walpath_flush_pages_total")
        self._obs_meta_writes = registry.counter("walpath_meta_writes_total")

    # ------------------------------------------------------------------ sink API
    @property
    def size(self) -> int:
        return self._gen_bytes

    @property
    def flush_is_noop(self) -> bool:
        """Nothing staged and no partial tail page: flush returns
        before even taking the flush lock — zero events, zero time."""
        return not self._staged and self._tail_vpn is None

    def append(self, data: bytes, account: CpuAccount) -> Generator:
        """Stage at the tail (user-space; no device I/O yet)."""
        self._staged.append(data)
        self._staged_bytes += len(data)
        self._gen_bytes += len(data)
        return
        yield  # pragma: no cover - generator form for interface parity

    def flush(self, account: CpuAccount) -> Generator:
        """Write staged bytes; returns when they are on flash."""
        if not self._staged and self._tail_vpn is None:
            return
        req = self._flush_lock.request()
        yield req
        try:
            yield from self._flush_locked(account)
        finally:
            self._flush_lock.release(req)

    def _flush_locked(self, account: CpuAccount) -> Generator:
        if not self._staged:
            return  # tail already durable (or a rival flush drained us)
        page = self.ring.device.lba_size
        data = self._tail + b"".join(self._staged)
        self._staged.clear()
        self._staged_bytes = 0

        start_vpn = (
            self._tail_vpn
            if self._tail_vpn is not None
            else self.space.wal.alloc(0)
        )
        full_pages = len(data) // page
        rem = len(data) % page
        needed = full_pages + (1 if rem else 0)
        already = 1 if self._tail_vpn is not None else 0
        if needed > already:
            self.space.wal.alloc(needed - already)

        payload = _pad_to_page(data, page)
        events = []
        vpn = start_vpn
        for lba, n in self.space.wal.contiguous_run(start_vpn, needed):
            piece = payload[(vpn - start_vpn) * page : (vpn - start_vpn + n) * page]
            ev = yield from self.ring.submit(
                WriteCmd(lba=lba, nlb=n, data=piece, pid=self.placement.wal_pid),
                account,
            )
            events.append(ev)
            vpn += n
        for ev in events:
            yield from self.ring.wait(ev, account)
        if self.obs is not None:
            self._obs_flush_bytes.observe(float(len(data)))
            self._obs_flush_pages.inc(needed)

        if rem:
            self._tail = data[full_pages * page :]
            self._tail_vpn = start_vpn + full_pages
        else:
            self._tail = b""
            self._tail_vpn = None
        yield from self._update_metadata_async(account)

    def _update_metadata_async(self, account: CpuAccount) -> Generator:
        """Persist the WAL head hint without waiting for it."""
        if self._meta_inflight is not None and not self._meta_inflight.processed:
            return  # one in flight is enough: it's only a hint
        done = self.env.event()

        def _writer():
            # Build the metadata at *write* time, inside the async
            # process — not when it is scheduled. A snapshot promotion
            # or generation rotation can land between the two, and the
            # seqno is assigned when meta.write runs: a stale capture
            # written later wins the A/B election and durably reverts
            # the promotion (whose old slot is already deallocated) —
            # a recovered server would then read a trimmed slot as its
            # published snapshot.
            yield from self.meta.write(self._current_meta(), self.account)
            done.succeed()

        self.env.process(_writer(), name="wal-meta")
        self._meta_inflight = done
        if self.obs is not None:
            self._obs_meta_writes.inc()
        return
        yield  # pragma: no cover

    def _current_meta(self) -> Metadata:
        return current_metadata(self.space)

    def begin_generation(self, account: CpuAccount) -> Generator:
        """Start a new generation at the fork; the old one stays live.

        Metadata records both generations so a crash before the
        snapshot completes still replays the full chain.
        """
        yield from self.flush(account)
        self.space.wal.start_new_generation()
        self._tail = b""
        self._tail_vpn = None
        self._prev_gen_bytes = self._gen_bytes
        self._gen_bytes = 0
        yield from self.meta.write(self._current_meta(), account)

    def retire_previous(self, account: CpuAccount) -> Generator:
        """Deallocate the pre-snapshot generation (snapshot durable).

        Ordering: metadata stops referencing the old generation first,
        then its pages are TRIMmed — a crash in between only leaks
        pages until the next rotation, never loses data.
        """
        wal = self.space.wal
        if wal.prev_start is None:
            return
        retired_start, retired_end = wal.prev_start, wal.gen_start
        wal.retire_previous()  # also zeroes wal.prev_bytes
        yield from self.meta.write(self._current_meta(), account)
        for lba, n in wal.contiguous_run(
            retired_start, retired_end - retired_start
        ):
            if n:
                ev = yield from self.ring.deallocate(lba, n, account)
                yield from self.ring.wait(ev, account)

    def read_all(self, account: CpuAccount) -> Generator:
        """Read every live generation (recovery; CRC-delimited tail).

        Reads from the oldest live generation through the metadata head
        hint, then keeps scanning forward — the head hint may lag the
        last durable flush. Adoption beyond the hint is *decode-driven*:
        a page joins the live head only while the CRC-validated record
        stream extends into it. Any nonzero-but-invalid page past the
        stream (a torn flush, or stale pages of a retired generation
        whose TRIM a crash interrupted) is left outside the head rather
        than adopted — adopting it would park the append cursor after
        garbage and strand every post-recovery record behind an
        undecodable gap on the *next* recovery.

        Also restores the append cursor (tail page staging) to the true
        durable tail, so post-recovery appends continue the record
        stream contiguously instead of leaving a zero-padding hole that
        a later replay would mistake for the end of the log.
        """
        yield from self.flush(account)  # no-op post-crash; convenience live
        wal = self.space.wal
        page = self.ring.device.lba_size
        blob = bytearray()
        # previous generation first, trimmed to its logical length so the
        # page padding at its tail doesn't break the record stream
        if wal.prev_start is not None:
            prev = yield from self._read_range(
                wal.prev_start, wal.gen_start, account
            )
            kept = prev[: self._prev_gen_bytes]
            if AofCodec.scan(bytes(kept)).consumed == len(kept):
                blob.extend(kept)
            else:
                # The prev region does not decode to its recorded length:
                # retire_previous TRIMmed it (fully or partially) before a
                # later metadata write could clear wal_prev_start. A TRIM
                # only ever starts once the covering snapshot is durable,
                # so these records are safe to drop — replaying a damaged
                # fragment would instead poison the scan and discard the
                # *current* generation's acked records after it.
                wal.prev_start = None
                self._prev_gen_bytes = 0
        gen_off = len(blob)  # byte offset where the current gen starts
        # current generation through the metadata head hint
        cur = yield from self._read_range(wal.gen_start, wal.head, account)
        blob.extend(cur)
        consumed = AofCodec.scan(bytes(blob)).consumed
        # scan beyond the hint (bounded by region capacity)
        vpn = wal.head
        oldest = wal.prev_start if wal.prev_start is not None else wal.gen_start
        limit = oldest + wal.wal_pages
        while vpn < limit:
            n = min(16, limit - vpn)
            chunk = yield from self._read_range(vpn, vpn + n, account)
            if not any(chunk):
                break
            base = len(blob)
            blob.extend(chunk)
            new_consumed = AofCodec.scan(bytes(blob), start=consumed).consumed
            if new_consumed <= base:
                # no valid record reaches into this chunk: stale/torn
                del blob[base:]
                break
            consumed = new_consumed
            adopted = -(-(consumed - base) // page)  # pages the stream reaches
            if adopted < n:
                del blob[base + adopted * page:]
                vpn += adopted
                wal.head = vpn
                break
            vpn += n
            wal.head = vpn  # adopt validated pages into the live head
        self._restore_cursor(blob, consumed, gen_off, page)
        return bytes(blob)

    def _restore_cursor(self, blob: bytearray, consumed: int, gen_off: int,
                        page: int) -> None:
        """Re-stage the partial tail page of the recovered stream.

        ``consumed`` is the end of the valid record stream within
        ``blob``; everything after it in the same page is a torn
        fragment or padding that the next flush must overwrite in place
        — otherwise the record stream acquires an interior zero gap and
        every record appended after recovery is silently unreachable by
        the following recovery.
        """
        rel = consumed - gen_off  # valid bytes of the current generation
        wal = self.space.wal
        if rel <= 0:
            # tear inside the previous generation: the current gen holds
            # no decodable bytes; restart it at its first page
            wal.head = wal.gen_start
            self._gen_bytes = 0
            self._tail = b""
            self._tail_vpn = None
            return
        full, rem = divmod(rel, page)
        wal.head = wal.gen_start + full + (1 if rem else 0)
        self._gen_bytes = rel
        if rem:
            self._tail = bytes(blob[gen_off + full * page: gen_off + rel])
            self._tail_vpn = wal.gen_start + full
        else:
            self._tail = b""
            self._tail_vpn = None

    def trim_beyond_head(self, account: CpuAccount) -> Generator:
        """TRIM every WAL page outside the live generations (recovery).

        A crash between ``retire_previous``'s metadata write and its
        deallocations leaves stale retired-generation pages on flash;
        a torn flush leaves fragments past the recovered head. Neither
        is adopted by :meth:`read_all`, but both would still sit in
        front of future appends — wiped here so the region beyond the
        head is genuinely blank, as every invariant assumes.
        """
        wal = self.space.wal
        oldest = wal.prev_start if wal.prev_start is not None else wal.gen_start
        npages = oldest + wal.wal_pages - wal.head
        if npages <= 0:
            return
        for lba, n in wal.contiguous_run(wal.head, npages):
            if n:
                ev = yield from self.ring.deallocate(lba, n, account)
                yield from self.ring.wait(ev, account)

    def _read_range(self, vpn_start: int, vpn_end: int,
                    account: CpuAccount) -> Generator:
        wal = self.space.wal
        out = bytearray()
        vpn = vpn_start
        while vpn < vpn_end:
            for lba, n in wal.contiguous_run(vpn, min(vpn_end - vpn, 64)):
                data = yield from self.ring.submit_and_wait(
                    ReadCmd(lba=lba, nlb=n), account
                )
                out.extend(data)
                vpn += n
        return bytes(out)


class SnapshotPath(SnapshotSink):
    """Snapshot stream into the reserve slot via passthru (async writes)."""

    def __init__(
        self,
        env: Environment,
        ring: PassthruQueuePair,
        space: LbaSpaceManager,
        meta_store: MetadataStore,
        kind: SnapshotKind,
        placement: PlacementPolicy | None = None,
        write_batch_pages: int = 8,
        max_inflight_batches: int = 16,
    ):
        if write_batch_pages < 1 or max_inflight_batches < 1:
            raise ValueError("batch/window must be >= 1")
        self.env = env
        self.ring = ring
        self.space = space
        self.meta = meta_store
        self.kind = kind
        self.placement = placement or PlacementPolicy()
        self.batch_pages = write_batch_pages
        self.max_inflight = max_inflight_batches
        self._buffer = bytearray()
        self._slot: int | None = None
        self._pages_written = 0
        self._bytes = 0
        self._inflight: list[Event] = []
        self.obs = None

    def attach_obs(self, registry) -> None:
        """Register instruments: streamed pages + in-flight window."""
        self.obs = registry
        self._obs_pages = registry.counter("snapshot_path_pages_total",
                                           kind=self.kind.value)
        self._obs_window = registry.gauge("snapshot_path_inflight_batches",
                                          kind=self.kind.value)
        self._obs_window.set(0.0)

    @property
    def bytes_written(self) -> int:
        return self._bytes

    @property
    def pid(self) -> int:
        return self.placement.pid_for_snapshot(self.kind)

    def _ensure_slot(self) -> int:
        if self._slot is None:
            self._slot = self.space.slots.reserve_slot
            self._pages_written = 0
            self._bytes = 0
            self._buffer.clear()
            self._inflight.clear()
        return self._slot

    def write(self, data: bytes, account: CpuAccount) -> Generator:
        slot = self._ensure_slot()
        self._buffer.extend(data)
        self._bytes += len(data)
        page = self.ring.device.lba_size
        batch_bytes = self.batch_pages * page
        while len(self._buffer) >= batch_bytes:
            chunk = bytes(self._buffer[:batch_bytes])
            del self._buffer[:batch_bytes]
            yield from self._submit_pages(slot, chunk, account)

    def _submit_pages(self, slot: int, chunk: bytes,
                      account: CpuAccount) -> Generator:
        page = self.ring.device.lba_size
        base, cap = self.space.slot_extent(slot)
        npages = len(chunk) // page
        if self._pages_written + npages > cap:
            raise OSError("snapshot slot overflow — enlarge the slot size")
        ev = yield from self.ring.submit(
            WriteCmd(
                lba=base + self._pages_written,
                nlb=npages,
                data=chunk,
                pid=self.pid,
            ),
            account,
        )
        self._pages_written += npages
        self._inflight.append(ev)
        if self.obs is not None:
            self._obs_pages.inc(npages)
            self._obs_window.set(float(len(self._inflight)))
        # bounded window: the CQ handler keeps up, the submitter only
        # stalls when the device is genuinely behind
        while len(self._inflight) > self.max_inflight:
            oldest = self._inflight.pop(0)
            yield from self.ring.wait(oldest, account)
        if self.obs is not None:
            self._obs_window.set(float(len(self._inflight)))

    def finalize(self, account: CpuAccount) -> Generator:
        slot = self._ensure_slot()
        page = self.ring.device.lba_size
        if self._buffer:
            chunk = _pad_to_page(bytes(self._buffer), page)
            self._buffer.clear()
            yield from self._submit_pages(slot, chunk, account)
        # 1) all data durable
        while self._inflight:
            yield from self.ring.wait(self._inflight.pop(0), account)
        # 2) promote the reserve slot in the metadata, durably. The
        # in-memory promotion happens first so any concurrent metadata
        # writer (the WAL head hint) that wins a higher seqno carries
        # the promoted roles too — publishing early is safe because the
        # snapshot data is already durable (step 1). The full space
        # image (incl. the wal_prev_* handoff) must be written: a
        # partial Metadata here would durably drop a pending previous
        # generation and lose acknowledged records on recovery.
        undo = self.space.slots.snapshot_state()
        old_slot = self.space.slots.promote(self.kind, self._bytes)
        try:
            yield from self.meta.write(current_metadata(self.space), account)
        except Exception:
            # the durable write failed: roll the in-memory promotion
            # back so memory matches flash — the old snapshot stays
            # published and the written-but-unpromoted data stays in
            # the reserve slot for a retry
            self.space.slots.restore_state(undo)
            raise
        # 3) only now retire the previous snapshot of this kind
        if old_slot is not None:
            base, cap = self.space.slot_extent(old_slot)
            ev = yield from self.ring.deallocate(base, cap, account)
            yield from self.ring.wait(ev, account)
        self._slot = None

    def abort(self) -> None:
        """Discard the partial snapshot; the reserve slot stays reserve.

        Deallocation of the partial pages is deferred to the next use
        (writes simply overwrite); bookkeeping is reset immediately.
        """
        self._slot = None
        self._buffer.clear()
        self._inflight.clear()
        self._pages_written = 0
        self._bytes = 0


class SlimIOSnapshotSource(SnapshotSource):
    """Read a published snapshot slot through the read-ahead buffer."""

    def __init__(
        self,
        ring: PassthruQueuePair,
        space: LbaSpaceManager,
        kind: SnapshotKind,
        readahead_pages: int = 64,
    ):
        role = SlotRole.for_kind(kind)
        slot = space.slots.slot_of(role)
        if slot is None:
            raise FileNotFoundError(f"no published {role.name} snapshot")
        base, cap = space.slot_extent(slot)
        self._size = space.slots.lengths[slot]
        page = ring.device.lba_size
        npages = min(cap, -(-self._size // page)) if self._size else 0
        self._buffer = ReadAheadBuffer(
            ring, base, max(npages, 1), window_pages=readahead_pages
        )

    def attach_obs(self, registry) -> None:
        self._buffer.attach_obs(registry)

    @property
    def size(self) -> int:
        return self._size

    def read(self, offset: int, length: int, account: CpuAccount) -> Generator:
        length = max(0, min(length, self._size - offset))
        if length == 0:
            return b""
        data = yield from self._buffer.read(offset, length, account)
        return data
