"""Sequential read-ahead over a passthru ring (recovery fast path).

The baseline gets prefetching for free from the page cache; a passthru
application must build its own. Recovery is a single sequential scan,
so the buffer keeps a window of page reads in flight ahead of the
cursor: while the CPU decompresses chunk *n*, the device is already
reading chunks *n+1 … n+w*. This overlap is where Table 5's ~20 %
recovery speedup comes from.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.kernel.accounting import CpuAccount
from repro.kernel.iouring import PassthruQueuePair
from repro.nvme import ReadCmd
from repro.sim import Event

__all__ = ["ReadAheadBuffer"]


class ReadAheadBuffer:
    """Prefetching reader over a contiguous LBA extent."""

    def __init__(
        self,
        ring: PassthruQueuePair,
        base_lba: int,
        npages: int,
        window_pages: int = 64,
        batch_pages: int = 16,
    ):
        if window_pages < 1 or batch_pages < 1:
            raise ValueError("window/batch must be >= 1")
        self.ring = ring
        self.base_lba = base_lba
        self.npages = npages
        self.window_pages = window_pages
        self.batch_pages = min(batch_pages, window_pages)
        self._pages: dict[int, bytes] = {}  # page_idx -> data
        self._inflight: dict[int, Event] = {}  # first page idx -> completion
        self._next_prefetch = 0
        self.obs = None

    def attach_obs(self, registry) -> None:
        """Register instruments: per-page prefetch outcome counts.

        hit = page already buffered when requested; wait = in flight
        (the pipeline is keeping up but not ahead); random_miss =
        outside the prefetch stream entirely. The hit rate is
        hits / (hits + waits + random_misses).
        """
        self.obs = registry
        self._obs_hits = registry.counter("readahead_hits_total")
        self._obs_waits = registry.counter("readahead_waits_total")
        self._obs_misses = registry.counter("readahead_random_misses_total")

    @property
    def page_size(self) -> int:
        return self.ring.device.lba_size

    def _prefetch(self, account: CpuAccount) -> Generator:
        """Top the window up with async batch reads.

        The window bounds *in-flight* pages only — pages already
        buffered for the current sequential pass must not stall the
        pipeline (they are dropped once the cursor passes them).
        """
        while (
            self._next_prefetch < self.npages
            and self._inflight_pages() < self.window_pages
        ):
            start = self._next_prefetch
            n = min(self.batch_pages, self.npages - start)
            # advance the cursor BEFORE the submit yields: two readers
            # driving the same buffer interleave here, and reserving the
            # range first keeps a rival _prefetch from re-submitting it
            # (slimflow SLIM010 caught the read-yield-write form)
            self._next_prefetch = start + n
            ev = yield from self.ring.submit(
                ReadCmd(lba=self.base_lba + start, nlb=n), account
            )
            self._inflight[start] = ev

    def _inflight_pages(self) -> int:
        return sum(
            min(self.batch_pages, self.npages - s) for s in self._inflight
        )

    def _absorb(self, start: int, data: bytes) -> None:
        ps = self.page_size
        n = len(data) // ps
        for j in range(n):
            self._pages[start + j] = data[j * ps : (j + 1) * ps]

    def read(self, offset: int, length: int, account: CpuAccount) -> Generator:
        """Read ``length`` bytes at byte ``offset`` of the extent."""
        if offset < 0 or length < 0:
            raise ValueError("bad extent")
        if offset + length > self.npages * self.page_size:
            raise ValueError("read beyond extent")
        ps = self.page_size
        first = offset // ps
        last = (offset + length - 1) // ps if length else first
        yield from self._prefetch(account)
        for idx in range(first, last + 1):
            if self.obs is not None:
                if idx in self._pages:
                    self._obs_hits.inc()
                elif self._find_inflight_for(idx) is not None:
                    self._obs_waits.inc()
                else:
                    self._obs_misses.inc()
            while idx not in self._pages:
                ev = self._find_inflight_for(idx)
                if ev is None:
                    # random access outside the prefetch stream
                    data = yield from self.ring.submit_and_wait(
                        ReadCmd(lba=self.base_lba + idx, nlb=1), account
                    )
                    self._pages[idx] = data
                    break
                start, event = ev
                data = yield from self.ring.wait(event, account)
                del self._inflight[start]
                self._absorb(start, data)
            yield from self._prefetch(account)
        out = bytearray(length)
        pos = 0
        while pos < length:
            abs_off = offset + pos
            idx, in_page = divmod(abs_off, ps)
            n = min(ps - in_page, length - pos)
            out[pos : pos + n] = self._pages[idx][in_page : in_page + n]
            pos += n
        # drop pages behind the cursor (bounded memory)
        for idx in [i for i in self._pages if i < first]:
            del self._pages[idx]
        return bytes(out)

    def _find_inflight_for(self, idx: int) -> tuple[int, Event] | None:
        for start, ev in self._inflight.items():
            n = min(self.batch_pages, self.npages - start)
            if start <= idx < start + n:
                return start, ev
        return None
