"""Lifetime-based FDP placement policy (paper §4.3).

Data classes with different lifetimes get different Placement IDs so
the FDP SSD groups them into different Reclaim Units:

* metadata — tiny, rewritten in place, own PID;
* WAL — short-lived (retired at every WAL-Snapshot), own PID;
* WAL-Snapshots — retired at the next WAL-Snapshot, own PID;
* On-Demand Snapshots — long-lived (daily/manual backups), own PID.

The paper's device exposes 8 PIDs; this policy uses 4. Multi-tenant
deployments (``repro.cluster``) may not have 4 PIDs per tenant to
spare: ``collapse_snapshots=True`` relaxes the lifetime separation so
both snapshot classes share one PID — the bounded-degradation sharing
mode the :class:`repro.cluster.pids.PidAllocator` falls back to when
the device's PID space is oversubscribed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.persist.snapshot import SnapshotKind

__all__ = ["PlacementPolicy", "validate_placement"]


@dataclass(frozen=True)
class PlacementPolicy:
    """PID assignment per data class."""

    metadata_pid: int = 0
    wal_pid: int = 1
    wal_snapshot_pid: int = 2
    ondemand_snapshot_pid: int = 3
    #: multi-tenant sharing mode: both snapshot classes intentionally
    #: share one PID (WAL-Snapshot and On-Demand lifetimes mix)
    collapse_snapshots: bool = False

    def __post_init__(self) -> None:
        pids = self.pids
        if any(p < 0 for p in pids):
            raise ValueError("PIDs must be non-negative")
        if len(set(pids)) != len(pids):
            raise ValueError("PIDs must be distinct (lifetime separation)")
        if self.collapse_snapshots and \
                self.wal_snapshot_pid != self.ondemand_snapshot_pid:
            raise ValueError(
                "collapse_snapshots=True requires both snapshot classes "
                "to share one PID"
            )

    @property
    def pids(self) -> tuple[int, ...]:
        """The distinct PIDs this policy writes with."""
        base = (self.metadata_pid, self.wal_pid, self.wal_snapshot_pid)
        if self.collapse_snapshots:
            return base
        return base + (self.ondemand_snapshot_pid,)

    def pid_for_snapshot(self, kind: SnapshotKind) -> int:
        if kind is SnapshotKind.WAL_TRIGGERED:
            return self.wal_snapshot_pid
        return self.ondemand_snapshot_pid

    @property
    def max_pid(self) -> int:
        return max(self.pids)


def validate_placement(policy: PlacementPolicy, num_pids: int,
                       context: str = "device") -> None:
    """Fail fast when a policy references PIDs the device cannot host.

    An over-range Placement ID is *not* an error on real NVMe hardware
    — it silently falls back to default placement (stream 0), which
    defeats the whole write-isolation design without any visible
    failure. Builders therefore validate at construction time instead
    of letting the misconfiguration surface as a mysterious WAF > 1.
    """
    if policy.max_pid >= num_pids:
        raise ValueError(
            f"PlacementPolicy uses PID {policy.max_pid} but {context} "
            f"exposes only {num_pids} PIDs (0..{num_pids - 1}); writes "
            f"with out-of-range PIDs would silently fall back to stream 0 "
            f"and defeat write isolation — shrink the policy's PIDs or "
            f"raise the device's num_pids"
        )
