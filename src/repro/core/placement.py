"""Lifetime-based FDP placement policy (paper §4.3).

Data classes with different lifetimes get different Placement IDs so
the FDP SSD groups them into different Reclaim Units:

* metadata — tiny, rewritten in place, own PID;
* WAL — short-lived (retired at every WAL-Snapshot), own PID;
* WAL-Snapshots — retired at the next WAL-Snapshot, own PID;
* On-Demand Snapshots — long-lived (daily/manual backups), own PID.

The paper's device exposes 8 PIDs; this policy uses 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.persist.snapshot import SnapshotKind

__all__ = ["PlacementPolicy"]


@dataclass(frozen=True)
class PlacementPolicy:
    """PID assignment per data class."""

    metadata_pid: int = 0
    wal_pid: int = 1
    wal_snapshot_pid: int = 2
    ondemand_snapshot_pid: int = 3

    def __post_init__(self) -> None:
        pids = (
            self.metadata_pid,
            self.wal_pid,
            self.wal_snapshot_pid,
            self.ondemand_snapshot_pid,
        )
        if any(p < 0 for p in pids):
            raise ValueError("PIDs must be non-negative")
        if len(set(pids)) != len(pids):
            raise ValueError("PIDs must be distinct (lifetime separation)")

    def pid_for_snapshot(self, kind: SnapshotKind) -> int:
        if kind is SnapshotKind.WAL_TRIGGERED:
            return self.wal_snapshot_pid
        return self.ondemand_snapshot_pid

    @property
    def max_pid(self) -> int:
        return max(
            self.metadata_pid,
            self.wal_pid,
            self.wal_snapshot_pid,
            self.ondemand_snapshot_pid,
        )
