"""System builders: the baseline stack and the SlimIO stack.

``build_baseline`` assembles stock Redis on the traditional path:

    clients → Server → WalManager → FileAppendSink → PosixFile
                                   → FileSnapshotSink ┘
    PosixFile → page cache → file system (EXT4/F2FS) → block layer →
    conventional NVMe device

``build_slimio`` assembles the paper's design:

    clients → Server → WalManager → WalPath  (own SQ/CQ, SQPOLL)
                                   → SnapshotPath (own SQ/CQ, SQPOLL)
    both → NVMe passthru → FDP device (PID per lifetime)

Both return a ``System`` handle exposing the server, the device, and a
``recover()`` generator implementing the full §4.2 recovery procedure,
so experiments and applications drive the two designs through one
interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Generator

from repro.core.lba import LbaSpaceManager, SlotRole
from repro.core.metadata import MetadataStore
from repro.core.paths import SlimIOSnapshotSource, SnapshotPath, WalPath
from repro.core.placement import PlacementPolicy, validate_placement
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import KVStore, Server, ServerConfig
from repro.kernel import (
    BlockLayer,
    CpuAccount,
    Ext4,
    F2fs,
    KernelCosts,
    PageCache,
    PassthruQueuePair,
)
from repro.nvme import NvmeDevice
from repro.persist import LoggingPolicy, SnapshotKind, WalManager, recover_store
from repro.persist.compress import CompressionModel, Compressor
from repro.persist.file_backends import (
    FileAppendSink,
    FileSnapshotSink,
    FileSnapshotSource,
)
from repro.sim import Environment

__all__ = [
    "SystemConfig",
    "BaselineSystem",
    "SlimIOSystem",
    "build_baseline",
    "build_slimio",
]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to stand up either system."""

    geometry: FlashGeometry = field(
        default_factory=lambda: FlashGeometry.scaled(mb=64)
    )
    nand: NandTiming = field(default_factory=NandTiming)
    ftl: FtlConfig = field(default_factory=FtlConfig)
    costs: KernelCosts = field(default_factory=KernelCosts)
    server: ServerConfig = field(default_factory=ServerConfig)
    policy: LoggingPolicy = LoggingPolicy.PERIODICAL
    wal_flush_interval: float = 1.0
    #: Redis's AOF-buffer hard limit: write queries block above this
    wal_buffer_limit_bytes: int = 32 * 1024 * 1024
    compression_level: int = 1
    compression: CompressionModel = field(default_factory=CompressionModel)

    # baseline knobs
    fs: str = "f2fs"  # "ext4" | "f2fs"
    scheduler: str = "none"  # "none" | "sync-priority" | "mq-deadline"
    dirty_limit_bytes: int = 8 * 1024 * 1024
    fs_extent_pages: int = 256

    # SlimIO knobs
    sqpoll: bool = True
    fdp: bool = True
    #: ablation: snapshot traffic shares the WAL-Path ring instead of
    #: getting its own SQ/CQ pair (defeats §4.1's write isolation)
    shared_ring: bool = False
    placement: PlacementPolicy = field(default_factory=PlacementPolicy)
    snapshot_fraction: float = 0.45
    recovery_readahead_pages: int = 64
    #: PID (stream) count of the built FDP device; ``None`` = enough
    #: for the placement policy (min 8, the paper's device). Setting
    #: it explicitly makes the build fail fast if the policy does not
    #: fit — see :func:`repro.core.placement.validate_placement`.
    num_pids: int | None = None
    #: run the repro.analysis runtime sanitizers: every write is
    #: validated against the region/PID its origin declared, slot
    #: promotion is guarded, and fork-snapshot races are detected.
    #: Ignored by the baseline (its invariants live in the fs layer).
    sanitize: bool = False
    #: wrap the SlimIO device in a repro.faults transient-error
    #: injector (seeded NVMe errors/timeouts absorbed by the ring's
    #: RetryPolicy). Power cuts are driven by the crash-matrix harness,
    #: not this flag. Ignored by the baseline, whose block layer has no
    #: retry path.
    faults: bool = False
    fault_seed: int = 20260807

    # simulator performance knobs — all are result-invariant: any
    # combination produces byte-identical reports (pinned by
    # tests/bench/test_determinism.py); they only trade heap events
    # for wall-clock time.
    #: closed-form NAND burst realization (False = per-page events)
    batched: bool = True
    #: engine inline-resume / timeout-recycling fast paths
    fast_sim: bool = True
    #: quiescence fast-forward lane: closed-form absorption of pure
    #: delays, idle WAL flush ticks, and idle poll loops
    fast_forward: bool = True

    def __post_init__(self) -> None:
        if self.num_pids is not None and self.num_pids < 1:
            raise ValueError("num_pids must be >= 1")
        if self.fs not in ("ext4", "f2fs"):
            raise ValueError("fs must be ext4 or f2fs")
        if self.scheduler not in ("none", "sync-priority", "mq-deadline"):
            raise ValueError(
                "scheduler must be none, sync-priority, or mq-deadline"
            )


class _SystemBase:
    """Shared surface of both system handles."""

    env: Environment
    device: NvmeDevice
    server: Server
    config: SystemConfig
    #: optional telemetry registry (``None`` = instrumentation disabled)
    obs = None

    def attach_obs(self, registry=None):
        """Attach a :class:`repro.obs.MetricsRegistry` to every layer.

        Creates one named after the server when ``registry`` is None.
        Returns the registry so callers can export/summarize it later.
        """
        from repro.obs.wiring import attach_registry

        return attach_registry(self, registry)

    @property
    def metrics(self):
        return self.server.metrics

    @property
    def waf(self) -> float:
        return self.device.waf

    def stop(self) -> None:
        self.server.stop()


class BaselineSystem(_SystemBase):
    """Stock Redis over the traditional kernel path.

    ``device`` lets multi-tenant deployments (``repro.cluster``) hand
    in a pre-built device or :class:`~repro.nvme.LbaPartition`; when
    None, a private conventional device is built from the config.
    """

    def __init__(self, env: Environment, config: SystemConfig,
                 device=None, name: str = "baseline"):
        self.env = env
        self.config = config
        self.name = name
        if device is None:
            device = NvmeDevice(env, config.geometry, config.nand,
                                config.ftl, fdp=False,
                                batched=config.batched)
        self.device = device
        self.block = BlockLayer(env, self.device, config.costs,
                                scheduler=config.scheduler)
        self.cache = PageCache(env, self.block, config.costs,
                               page_size=self.device.lba_size,
                               dirty_limit_bytes=config.dirty_limit_bytes)
        fs_cls = Ext4 if config.fs == "ext4" else F2fs
        self.fs = fs_cls(env, self.block, self.cache, config.costs,
                         extent_pages=config.fs_extent_pages)
        self.main_account = CpuAccount(env, f"{name}-main")
        compressor = Compressor(level=config.compression_level,
                                model=config.compression)
        self.wal = WalManager(
            env, FileAppendSink(self.fs), self.main_account,
            policy=config.policy, flush_interval=config.wal_flush_interval,
            buffer_limit_bytes=config.wal_buffer_limit_bytes,
        )
        self.server = Server(
            env, KVStore(page_size=self.device.lba_size), self.wal,
            lambda kind: FileSnapshotSink(self.fs, f"{kind.value}.rdb"),
            config.server, compressor, config.compression, name=name,
        )

    def snapshot_source(self, kind: SnapshotKind = SnapshotKind.WAL_TRIGGERED,
                        ) -> FileSnapshotSource:
        return FileSnapshotSource(self.fs, f"{kind.value}.rdb")

    def recover(self, kind: SnapshotKind = SnapshotKind.WAL_TRIGGERED,
                account: CpuAccount | None = None) -> Generator:
        """Full recovery: load the snapshot file, replay the AOF."""
        acct = account or CpuAccount(self.env, "baseline-recovery")
        source = None
        if self.fs.exists(f"{kind.value}.rdb"):
            source = self.snapshot_source(kind)
        result = yield from recover_store(
            self.env, source, self.wal.sink, acct,
            Compressor(level=self.config.compression_level,
                       model=self.config.compression),
            self.config.compression,
            obs=self.obs,
        )
        return result

    def crash(self) -> None:
        """Power loss: the page cache vanishes; the device persists."""
        self.cache.crash()


class SlimIOSystem(_SystemBase):
    """SlimIO: passthru paths over an FDP (or conventional) device.

    ``device`` lets multi-tenant deployments (``repro.cluster``) hand
    in a pre-built device or :class:`~repro.nvme.LbaPartition` whose
    PID space is shared with other tenants; when None, a private
    device is built from the config. Either way the placement policy
    is validated against the device's PID count at build time — an
    over-range PID would otherwise fall back to stream 0 silently.
    """

    def __init__(self, env: Environment, config: SystemConfig,
                 device=None, name: str = "slimio"):
        self.env = env
        self.config = config
        self.name = name
        if device is None:
            num_pids = config.num_pids
            if num_pids is None:
                num_pids = max(8, config.placement.max_pid + 1)
            device = NvmeDevice(
                env, config.geometry, config.nand, config.ftl,
                fdp=config.fdp, num_pids=num_pids,
                batched=config.batched,
            )
        self.device = device
        if self.device.fdp:
            validate_placement(config.placement, self.device.num_pids,
                               context=f"the device backing {name!r}")
        self.fault_injector = None
        if config.faults:
            # lazy import: faults sits above core in the layering
            from repro.faults import ErrorSpec, FaultyDevice

            self.fault_injector = FaultyDevice(
                self.device, errors=ErrorSpec.light(config.fault_seed)
            )
            self.device = self.fault_injector
        self.sanitizer = None
        if config.sanitize:
            # lazy import: analysis sits above core in the layering
            from repro.analysis.sanitize import SlimIOSanitizer

            self.sanitizer = SlimIOSanitizer(name=name)
            self.device = self.sanitizer.wrap_device(self.device)
        self.space = LbaSpaceManager(
            self.device.num_lbas,
            snapshot_fraction=config.snapshot_fraction,
        )
        if self.sanitizer is not None:
            self.sanitizer.bind(self.space, config.placement)
        self.main_account = CpuAccount(env, f"{name}-main")
        # the WAL-Path ring lives in the main process (§4.1)
        self.wal_ring = PassthruQueuePair(
            env, self.device, config.costs, sqpoll=config.sqpoll,
            name="wal-path",
        )
        self.meta_store = MetadataStore(
            self.wal_ring, self.space.layout, config.placement.metadata_pid
        )
        self.wal_path = WalPath(
            env, self.wal_ring, self.space, self.meta_store,
            self.main_account, config.placement,
        )
        compressor = Compressor(level=config.compression_level,
                                model=config.compression)
        self.wal = WalManager(
            env, self.wal_path, self.main_account,
            policy=config.policy, flush_interval=config.wal_flush_interval,
            buffer_limit_bytes=config.wal_buffer_limit_bytes,
        )
        self._snap_rings: dict[SnapshotKind, PassthruQueuePair] = {}
        self.server = Server(
            env, KVStore(page_size=self.device.lba_size), self.wal,
            self._make_snapshot_sink, config.server, compressor,
            config.compression, name=name,
        )
        if self.sanitizer is not None:
            self.sanitizer.watch_server(self.server)

    def _make_snapshot_sink(self, kind: SnapshotKind) -> SnapshotPath:
        if self.config.shared_ring:
            ring = self.wal_ring  # ablation: no write isolation
        else:
            # each snapshot process initializes its own SQ/CQ pair (§4.1)
            ring = PassthruQueuePair(
                self.env, self.device, self.config.costs,
                sqpoll=self.config.sqpoll, name=f"snapshot-path-{kind.value}",
            )
        self._snap_rings[kind] = ring
        path = SnapshotPath(
            self.env, ring, self.space, self.meta_store, kind,
            self.config.placement,
        )
        if self.obs is not None:
            # ring may be the shared WAL ring (ablation) — already wired
            if ring is not self.wal_ring:
                ring.attach_obs(self.obs)
            path.attach_obs(self.obs)
        return path

    def snapshot_source(self, kind: SnapshotKind = SnapshotKind.WAL_TRIGGERED,
                        ring: PassthruQueuePair | None = None,
                        ) -> SlimIOSnapshotSource:
        source = SlimIOSnapshotSource(
            ring or self.wal_ring, self.space, kind,
            readahead_pages=self.config.recovery_readahead_pages,
        )
        if self.obs is not None:
            source.attach_obs(self.obs)
        return source

    def recover(self, kind: SnapshotKind = SnapshotKind.WAL_TRIGGERED,
                account: CpuAccount | None = None,
                strict_wal: bool = False) -> Generator:
        """§4.2 recovery: metadata → snapshot slot → WAL replay.

        After replay the WAL region beyond the recovered head is
        TRIMmed: a crash can strand stale retired-generation pages
        (``retire_previous`` interrupted mid-deallocate) or torn-flush
        fragments there, and future appends must land on blank pages.
        ``strict_wal`` escalates interior WAL corruption to an
        exception (see :func:`repro.persist.recover_store`).
        """
        acct = account or CpuAccount(self.env, f"{self.name}-recovery")
        meta = yield from self.meta_store.read(acct)
        if meta is not None:
            self.space.slots.roles = [SlotRole(r) for r in meta.slot_roles]
            self.space.slots.lengths = list(meta.slot_lengths)
            self.space.wal.gen_start = meta.wal_gen_start
            self.space.wal.head = meta.wal_head
            self.space.wal.prev_start = meta.wal_prev_start
            self.wal_path._prev_gen_bytes = meta.wal_prev_bytes
        source = None
        role = SlotRole.for_kind(kind)
        if meta is not None and self.space.slots.slot_of(role) is not None:
            source = self.snapshot_source(kind)
        # Replay the WAL even with no valid metadata: a crash before
        # (or tearing) the first-ever metadata write leaves acknowledged
        # records on flash with both A/B copies blank — the forward
        # scan finds them from the fresh space's vpn 0. On a genuinely
        # blank device this costs one zero-page probe read.
        wal_sink = self.wal_path
        result = yield from recover_store(
            self.env, source, wal_sink, acct,
            Compressor(level=self.config.compression_level,
                       model=self.config.compression),
            self.config.compression,
            obs=self.obs,
            strict_wal=strict_wal,
        )
        yield from self.wal_path.trim_beyond_head(acct)
        if self.sanitizer is not None:
            self.sanitizer.notify_recovery()
        return result

    def crash(self) -> None:
        """Power loss: passthru has no page cache — user-space staging
        buffers (un-flushed WAL tail) are lost; flash contents persist."""
        self.wal_path._staged.clear()
        self.wal_path._staged_bytes = 0
        self.wal_path._tail = b""
        self.wal_path._tail_vpn = None


def build_baseline(env: Environment | None = None,
                   config: SystemConfig | None = None,
                   **overrides) -> BaselineSystem:
    """Stand up the baseline system (see module docstring).

    ``overrides`` are applied to :class:`SystemConfig` via ``replace``.
    """
    cfg = config or SystemConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    return BaselineSystem(
        env or Environment(fast_resume=cfg.fast_sim,
                           fast_forward=cfg.fast_forward),
        cfg,
    )


def build_slimio(env: Environment | None = None,
                 config: SystemConfig | None = None,
                 **overrides) -> SlimIOSystem:
    """Stand up the SlimIO system (see module docstring)."""
    cfg = config or SystemConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    return SlimIOSystem(
        env or Environment(fast_resume=cfg.fast_sim,
                           fast_forward=cfg.fast_forward),
        cfg,
    )
