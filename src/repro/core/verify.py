"""Offline consistency checker for a SlimIO LBA space (fsck-style).

Inspects a device *as a crash would leave it* — through the data plane
only, no in-memory state — and validates every invariant the §4.2
design promises:

* at least one metadata copy decodes (unless the device is blank);
* slot roles form a legal assignment (exactly one reserve, no
  duplicate roles);
* every published snapshot slot decodes as a complete, CRC-valid RDB
  stream of exactly the length metadata records;
* the WAL generation chain decodes from its oldest live record, and
  the byte length metadata claims for a retiring generation matches a
  record boundary;
* WAL/snapshot/metadata regions do not overlap.

Returns a :class:`VerifyReport`; ``ok`` is True when no issues were
found. Used by the crash-recovery property tests: after killing the
system at an arbitrary instant, the space must still verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lba import LbaLayout, SlotRole
from repro.core.metadata import Metadata, MetadataCodec
from repro.nvme import NvmeDevice
from repro.persist.compress import Compressor
from repro.persist.encoding import AofCodec, CorruptRecord, RdbReader

__all__ = ["VerifyReport", "verify_lba_space"]


@dataclass
class VerifyReport:
    """Findings of one verification pass."""

    blank_device: bool = False
    metadata: Metadata | None = None
    issues: list[str] = field(default_factory=list)
    snapshot_entries: dict[str, int] = field(default_factory=dict)
    wal_records: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def problem(self, msg: str) -> None:
        self.issues.append(msg)


def _read(device: NvmeDevice, lba: int, n: int) -> bytes:
    """Zero-time raw read (offline inspection)."""
    # the verifier is the offline fsck: raw access is its whole job
    return device.peek(lba, n)  # slimlint: ignore[SLIM001]


def verify_lba_space(
    device: NvmeDevice,
    layout: LbaLayout | None = None,
    compressor: Compressor | None = None,
    snapshot_fraction: float = 0.45,
    allow_missing_metadata: bool = False,
) -> VerifyReport:
    """Validate the on-device state of a SlimIO deployment.

    ``allow_missing_metadata`` accepts a device with data but no valid
    metadata copy — the state a power cut before (or tearing) the
    first-ever metadata write leaves behind. Crash harnesses enable
    it; offline fsck keeps the default and reports the anomaly.
    """
    report = VerifyReport()
    lay = layout or LbaLayout.partition(
        device.num_lbas, snapshot_fraction=snapshot_fraction
    )
    comp = compressor or Compressor()

    # region geometry sanity
    if lay.wal_base <= lay.snapshot_base:
        report.problem("snapshot region does not precede WAL region")
    if lay.wal_lbas <= 0:
        report.problem("empty WAL region")

    # metadata: freshest valid copy
    best: Metadata | None = None
    for i in range(lay.metadata_lbas):
        meta = MetadataCodec.decode(_read(device, lay.metadata_base + i, 1))
        if meta is not None and (best is None or meta.seqno > best.seqno):
            best = meta
    if best is None:
        if device.written_lbas() == 0:
            report.blank_device = True
            return report
        if not allow_missing_metadata:
            report.problem("no valid metadata copy on a non-blank device")
            return report
        # A crash before — or tearing — the first-ever metadata write
        # is a legal state: flash already holds acknowledged WAL
        # records (and possibly a garbage metadata page) while both
        # A/B copies are invalid. Recovery replays the WAL from vpn 0
        # by forward scan; mirror that instead of flagging it.
        blob = bytearray()
        for vpn in range(lay.wal_lbas):
            page = _read(device, lay.wal_base + vpn, 1)
            if not any(page):
                break
            blob.extend(page)
        report.wal_records = len(AofCodec.scan(bytes(blob)).records)
        return report
    report.metadata = best

    # slot roles
    roles = [SlotRole(r) for r in best.slot_roles]
    if roles.count(SlotRole.RESERVE) != 1:
        report.problem(f"slot roles {roles} lack exactly one reserve")
    for role in (SlotRole.WAL_SNAPSHOT, SlotRole.ONDEMAND_SNAPSHOT):
        if roles.count(role) > 1:
            report.problem(f"duplicate {role.name} slot")

    # published snapshots decode completely
    for idx, role in enumerate(roles):
        if role not in (SlotRole.WAL_SNAPSHOT, SlotRole.ONDEMAND_SNAPSHOT):
            continue
        length = best.slot_lengths[idx]
        cap_bytes = lay.slot_lbas * device.lba_size
        if length > cap_bytes:
            report.problem(
                f"slot {idx} ({role.name}) claims {length} bytes "
                f"> capacity {cap_bytes}"
            )
            continue
        npages = -(-length // device.lba_size) if length else 0
        blob = _read(device, lay.slot_base(idx), max(npages, 1))[:length]
        try:
            entries = RdbReader(comp).read_all(blob)
        except CorruptRecord as exc:
            report.problem(f"slot {idx} ({role.name}) snapshot corrupt: {exc}")
            continue
        report.snapshot_entries[role.name] = len(entries)

    # WAL chain decodes from the oldest live generation
    wal_pages = lay.wal_lbas
    oldest = (
        best.wal_prev_start if best.wal_prev_start is not None
        else best.wal_gen_start
    )
    if best.wal_head < oldest:
        report.problem(
            f"WAL head {best.wal_head} precedes oldest start {oldest}"
        )
        return report
    if best.wal_head - oldest > wal_pages:
        report.problem("live WAL span exceeds the WAL region")
        return report

    def read_vpns(start: int, end: int) -> bytes:
        out = bytearray()
        for vpn in range(start, end):
            out.extend(_read(device, lay.wal_base + vpn % wal_pages, 1))
        return bytes(out)

    blob = bytearray()
    if best.wal_prev_start is not None:
        prev = read_vpns(best.wal_prev_start, best.wal_gen_start)
        if best.wal_prev_bytes > len(prev):
            report.problem("metadata prev-generation length exceeds extent")
            return report
        prev_records = list(AofCodec.decode_stream(prev[: best.wal_prev_bytes]))
        decoded_len = sum(
            AofCodec.encoded_size(len(r.key), len(r.value))
            for r in prev_records
        )
        if decoded_len != best.wal_prev_bytes:
            report.problem(
                "previous WAL generation does not end on a record boundary"
            )
        blob.extend(prev[: best.wal_prev_bytes])
    blob.extend(read_vpns(best.wal_gen_start, best.wal_head))
    # scan past the head hint, as recovery does
    vpn = best.wal_head
    limit = oldest + wal_pages
    while vpn < limit:
        page = read_vpns(vpn, vpn + 1)
        if not any(page):
            break
        blob.extend(page)
        vpn += 1
    report.wal_records = sum(1 for _ in AofCodec.decode_stream(bytes(blob)))
    return report
