"""The client-facing façade: route each op to its slot's shard.

Workload clients call :meth:`ClusterRouter.execute` exactly as they
would a single :class:`~repro.imdb.Server`; the router hashes the key
(CRC16 mod 16384, hash tags honoured), looks up the owning shard in
the live :class:`~repro.cluster.slots.HashSlotMap`, and forwards.

During a live migration (:mod:`repro.cluster.reshard`) the map still
points migrating slots at the source shard; writes land there and the
migration's tap forwards them to the destination, so the router itself
never needs migration state — cutover is a single ``move`` on the map
and the very next op routes to the new owner.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.cluster.slots import key_hash_slot
from repro.imdb import ClientOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.engine import ShardHandle, SlimIOCluster

__all__ = ["ClusterRouter"]


class ClusterRouter:
    """Slot-hash routing over a cluster's shards."""

    def __init__(self, cluster: SlimIOCluster):
        self.cluster = cluster
        #: ops routed per shard index (routing-table hit counts)
        self.routed = [0] * len(cluster.shards)

    @property
    def slot_map(self):
        return self.cluster.slot_map

    def shard_for_key(self, key: bytes | str) -> ShardHandle:
        return self.cluster.shards[self.slot_map.shard_for_key(key)]

    def shard_for_slot(self, slot: int) -> ShardHandle:
        return self.cluster.shards[self.slot_map.shard_for_slot(slot)]

    def execute(self, op: ClientOp) -> Generator:
        """Serve one request on the owning shard (a generator, like
        ``Server.execute``; clients ``yield from`` it)."""
        index = self.slot_map.shard_for_key(op.key)
        self.routed[index] += 1
        result = yield from self.cluster.shards[index].server.execute(op)
        return result

    def slot_of(self, key: bytes | str) -> int:
        return key_hash_slot(key)
