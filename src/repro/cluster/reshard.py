"""Live resharding: migrate a slot range between shards.

The protocol reuses :func:`repro.core.replicate.full_sync` as the
transfer engine, restricted by a key filter to the migrating range:

1. **Transfer.** The source shard takes an On-Demand snapshot; the
   in-range entries are streamed to the destination over the modeled
   link. Writes that land on the source after the fork point (clients
   keep routing to it — the slot map is untouched during transfer)
   are captured by the sync's tap and forwarded until the backlog
   drains, so the destination converges on the live range contents.
2. **Cutover.** The slot map is flipped atomically on the simulated
   clock — ``move`` happens with no intervening event, so no op can
   route between "backlog drained" and "destination owns the range".
3. **Retire.** The source deletes the migrated keys through its normal
   command path, so the DELs are WAL-logged and a post-migration crash
   recovers a source *without* the moved keys and a destination *with*
   them — recovery stays correct on both sides.

WAF note: the retire phase is real write traffic (DEL records, later
WAL retirement), which is exactly why resharding on a shared device is
worth measuring rather than assuming free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.cluster.slots import key_hash_slot
from repro.core.replicate import ReplicationLink, SyncReport, full_sync
from repro.imdb import ClientOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.engine import SlimIOCluster

__all__ = ["MigrationReport", "migrate_slots"]


@dataclass
class MigrationReport:
    """Outcome of one slot-range migration."""

    slot_lo: int = 0
    slot_hi: int = 0
    src: int = 0
    dst: int = 0
    slots_moved: int = 0
    keys_migrated: int = 0
    keys_forwarded: int = 0
    keys_retired: int = 0
    duration: float = 0.0
    sync: SyncReport = field(default_factory=SyncReport)


def migrate_slots(
    cluster: SlimIOCluster,
    slot_lo: int,
    slot_hi: int,
    dst: int,
    link: ReplicationLink | None = None,
) -> Generator:
    """Move slots ``[slot_lo, slot_hi)`` to shard ``dst``; returns
    :class:`MigrationReport`. The range must currently be owned by one
    shard (migrate per-owner ranges separately otherwise); concurrent
    client traffic through the router is safe throughout.
    """
    slot_map = cluster.slot_map
    owners = {
        slot_map.shard_for_slot(s) for s in range(slot_lo, slot_hi)
    }
    if len(owners) != 1:
        raise ValueError(
            f"slots [{slot_lo}, {slot_hi}) span owners {sorted(owners)}; "
            f"migrate one owner's range at a time"
        )
    src = owners.pop()
    if src == dst:
        raise ValueError(f"slots [{slot_lo}, {slot_hi}) already on shard {dst}")
    source = cluster.shards[src]
    target = cluster.shards[dst]
    env = cluster.env
    t0 = env.now

    def in_range(key: bytes) -> bool:
        return slot_lo <= key_hash_slot(key) < slot_hi

    report = MigrationReport(slot_lo=slot_lo, slot_hi=slot_hi,
                             src=src, dst=dst)
    if cluster.obs is not None:
        cluster.obs.event("reshard_begin", src=source.name, dst=target.name,
                          slot_lo=slot_lo, slot_hi=slot_hi)

    # 1) transfer + forward (the slot map still routes writes to the
    #    source; the sync tap relays the in-range ones)
    report.sync = yield from full_sync(
        source.system, target.system, link=link, key_filter=in_range,
    )
    report.keys_migrated = report.sync.snapshot_entries
    report.keys_forwarded = report.sync.records_forwarded

    # 2) cutover: atomic on the simulated clock (no yield until after)
    report.slots_moved = slot_map.move(slot_lo, slot_hi, dst)

    # 3) retire the moved keys on the source through its command path,
    #    so the DELs are WAL-logged and recovery stays correct
    moved_keys = [
        k for k, _ in source.server.store.snapshot_items() if in_range(k)
    ]
    for key in moved_keys:
        existed = yield from source.server.execute(ClientOp("DEL", key))
        if existed:
            report.keys_retired += 1

    report.duration = env.now - t0
    if cluster.obs is not None:
        cluster.obs.event(
            "reshard_end", src=source.name, dst=target.name,
            slots=report.slots_moved, keys=report.keys_migrated,
            forwarded=report.keys_forwarded,
        )
    return report
