"""Hash-slot sharding over one FDP device (Redis-Cluster style).

``repro.cluster`` deploys N shard servers on a single simulated clock
and a single NVMe namespace:

* :mod:`repro.cluster.slots` — the CRC16-mod-16384 key space and the
  slot → shard map, including hash tags (``{user}.follows`` routes by
  ``user``) exactly as Redis Cluster does;
* :mod:`repro.cluster.pids` — carving the device's limited Placement
  ID space across shards: dedicated PIDs while they last, then a
  configurable sharing policy (collapse snapshot classes, or share
  WAL PIDs) layered on :class:`repro.core.placement.PlacementPolicy`;
* :mod:`repro.cluster.engine` — builders that stand up the shards on
  per-shard LBA partitions of one shared device/FTL, so cross-shard
  GC interference and per-shard WAF are measurable;
* :mod:`repro.cluster.router` — the client-facing façade workloads
  call instead of a single server;
* :mod:`repro.cluster.reshard` — live slot-range migration using
  :func:`repro.core.replicate.full_sync` as the transfer engine.

See ``docs/CLUSTER.md`` for the protocol walk-throughs.
"""

from repro.cluster.engine import (
    ClusterConfig,
    ShardHandle,
    SlimIOCluster,
    build_cluster,
)
from repro.cluster.pids import PidAllocator, SharingMode
from repro.cluster.reshard import MigrationReport, migrate_slots
from repro.cluster.router import ClusterRouter
from repro.cluster.slots import (
    NUM_SLOTS,
    HashSlotMap,
    crc16,
    key_hash_slot,
)

__all__ = [
    "NUM_SLOTS",
    "crc16",
    "key_hash_slot",
    "HashSlotMap",
    "PidAllocator",
    "SharingMode",
    "ClusterConfig",
    "ShardHandle",
    "SlimIOCluster",
    "build_cluster",
    "ClusterRouter",
    "migrate_slots",
    "MigrationReport",
]
