"""Cluster builders: N shards on one device, one simulated clock.

One :class:`~repro.nvme.NvmeDevice` is split into per-shard LBA
partitions (:func:`repro.nvme.partition_evenly`); every shard gets a
full SlimIO (or baseline) stack over its partition. Because the FTL —
streams, Reclaim Units, GC — is shared, cross-shard interference is
physical, not assumed: two shards whose PIDs collide really do mix
lifetimes in one RU, and per-shard WAF read off the per-stream FTL
counters shows it.

PID budgeting is delegated to :class:`repro.cluster.pids.PidAllocator`
(dedicated 4-PID policies while they last, then the configured sharing
mode). Each shard's policy is validated against the shared device at
build time, so an oversubscription bug fails loudly instead of
silently landing writes in stream 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.pids import PidAllocator, SharingMode
from repro.cluster.router import ClusterRouter
from repro.cluster.slots import HashSlotMap
from repro.core.engine import (
    BaselineSystem,
    SlimIOSystem,
    SystemConfig,
)
from repro.core.placement import PlacementPolicy
from repro.nvme import LbaPartition, NvmeDevice, partition_evenly
from repro.sim import Environment

__all__ = ["ClusterConfig", "ShardHandle", "SlimIOCluster", "build_cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to stand up a cluster on one device."""

    num_shards: int = 4
    design: str = "slimio"  # "slimio" | "baseline"
    #: PID count of the shared device (the paper's device exposes 8)
    num_pids: int = 8
    #: fallback when dedicated PIDs run out; ``None`` = pick the
    #: least-sharing mode that fits (see ``PidAllocator.auto_mode``)
    sharing: SharingMode | None = None
    #: per-shard stack template; ``geometry`` sizes the *whole* shared
    #: device, ``placement`` is overridden by the PID allocator
    system: SystemConfig = field(default_factory=SystemConfig)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.design not in ("slimio", "baseline"):
            raise ValueError("design must be slimio or baseline")


@dataclass
class ShardHandle:
    """One shard: its stack, its LBA partition, its PID policy."""

    index: int
    name: str
    system: SlimIOSystem | BaselineSystem
    partition: LbaPartition
    #: None for baseline shards (conventional device, no PIDs)
    policy: PlacementPolicy | None

    @property
    def server(self):
        return self.system.server

    @property
    def env(self):
        return self.system.env


class SlimIOCluster:
    """N shard stacks over one shared device, plus the slot map.

    Despite the name this also hosts the baseline design (stock Redis
    shards over the kernel path on the same shared conventional
    device) so scaling comparisons hold everything but the I/O path
    constant.
    """

    #: optional telemetry registry (``None`` = instrumentation disabled)
    obs = None
    #: optional request tracer (``None`` = tracing disabled)
    rtrace = None

    def __init__(self, env: Environment, config: ClusterConfig):
        self.env = env
        self.config = config
        slimio = config.design == "slimio"
        cfg = config.system
        self.device = NvmeDevice(
            env, cfg.geometry, cfg.nand, cfg.ftl,
            fdp=slimio and cfg.fdp,
            num_pids=config.num_pids,
            batched=cfg.batched,
        )
        partitions = partition_evenly(self.device, config.num_shards)
        self.allocator: PidAllocator | None = None
        policies: list[PlacementPolicy | None] = [None] * config.num_shards
        if slimio:
            mode = config.sharing or PidAllocator.auto_mode(
                config.num_pids, config.num_shards
            )
            self.allocator = PidAllocator(config.num_pids, mode=mode)
            policies = list(self.allocator.allocate(config.num_shards))
        self.shards: list[ShardHandle] = []
        for i, part in enumerate(partitions):
            name = f"shard{i}"
            if slimio:
                shard_cfg = replace(cfg, placement=policies[i])
                system = SlimIOSystem(env, shard_cfg, device=part, name=name)
            else:
                system = BaselineSystem(env, cfg, device=part, name=name)
            self.shards.append(
                ShardHandle(i, name, system, part, policies[i])
            )
        self.slot_map = HashSlotMap(config.num_shards)
        self.router = ClusterRouter(self)

    # ------------------------------------------------------------ shards
    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def __getitem__(self, index: int) -> ShardHandle:
        return self.shards[index]

    # ------------------------------------------------------------ accounting
    def shard_waf(self, index: int) -> float:
        """WAF attributed to one shard's Placement IDs.

        SlimIO shards are attributed by stream (shared streams count
        in full for every sharer — the honest tenant's-eye view);
        baseline shards all write stream 0, so the device-global WAF
        is the best available attribution.
        """
        policy = self.shards[index].policy
        if policy is None:
            return self.device.waf
        return self.device.ftl.waf_for_streams(policy.pids)

    @property
    def waf(self) -> float:
        return self.device.waf

    def pid_report(self) -> dict:
        """The PID allocation summary (empty for baseline clusters)."""
        if self.allocator is None:
            return {}
        return self.allocator.describe(self.config.num_shards)

    # ------------------------------------------------------------ telemetry
    def attach_obs(self, registry=None):
        """One registry, one view per shard: every shard-side
        instrument and span carries a ``shard=`` label; the shared FTL
        is wired unlabeled (its GC belongs to the device, not to any
        single tenant). Returns the base registry."""
        from repro.obs.registry import MetricsRegistry
        from repro.obs.wiring import attach_registry

        if registry is None:
            registry = MetricsRegistry(
                self.env, name=f"cluster-{self.config.design}"
            )
        self.obs = registry
        for shard in self.shards:
            attach_registry(
                shard.system, registry.labeled(shard=shard.name),
                include_device=False,
            )
        self.device.ftl.attach_obs(registry)
        return registry

    def attach_tracer(self, tracer=None, **tracer_kw):
        """One shared request tracer across every shard (traces carry
        the shard name as tenant) plus the shared FTL, so a slow
        request on one shard can be blamed on GC provoked by another.
        Returns the tracer."""
        from repro.obs.trace import RequestTracer
        from repro.obs.wiring import attach_tracer

        if tracer is None:
            tracer = RequestTracer(self.env, **tracer_kw)
        self.rtrace = tracer
        for shard in self.shards:
            attach_tracer(shard.system, tracer, include_device=False,
                          tenant=shard.name)
        self.device.ftl.rtrace = tracer
        return tracer

    def stream_owners(self) -> dict[int, set]:
        """stream id (= FDP PID) -> names of the shards that write it;
        the ownership map cross-tenant blame is judged against."""
        owners: dict[int, set] = {}
        for shard in self.shards:
            if shard.policy is None:
                owners.setdefault(0, set()).add(shard.name)
                continue
            for pid in shard.policy.pids:
                owners.setdefault(pid, set()).add(shard.name)
        return owners

    def stop(self) -> None:
        for shard in self.shards:
            shard.system.stop()


def build_cluster(env: Environment | None = None,
                  config: ClusterConfig | None = None,
                  **overrides) -> SlimIOCluster:
    """Stand up a cluster; ``overrides`` patch :class:`ClusterConfig`."""
    cfg = config or ClusterConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    return SlimIOCluster(
        env or Environment(fast_resume=cfg.system.fast_sim,
                           fast_forward=cfg.system.fast_forward),
        cfg,
    )
