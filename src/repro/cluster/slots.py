"""The hash-slot key space: CRC16 mod 16384, Redis Cluster style.

Every key maps to one of 16384 slots via CRC16-CCITT (XModem variant,
polynomial 0x1021 — the exact function Redis uses, so the canonical
test vector holds: ``crc16(b"123456789") == 0x31C3``). Hash tags work
too: if the key contains ``{...}`` with a non-empty body, only the
body is hashed, letting applications pin related keys (``{user}.cart``
and ``{user}.profile``) to one slot and therefore one shard.

:class:`HashSlotMap` assigns each slot to a shard. Assignment is a
plain array — resharding is ``move(lo, hi, dst)`` on the map plus the
data migration protocol in :mod:`repro.cluster.reshard`.
"""

from __future__ import annotations

__all__ = ["NUM_SLOTS", "crc16", "key_hash_slot", "HashSlotMap"]

#: Redis Cluster's slot count; 14 bits of the CRC.
NUM_SLOTS = 16384


def _build_crc16_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_CRC16_TABLE = _build_crc16_table()


def crc16(data: bytes) -> int:
    """CRC16-CCITT (XModem): poly 0x1021, init 0, no reflection."""
    crc = 0
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


#: memoized key → slot: workloads hash the same small key set on every
#: operation, and the mapping is a pure function of the key bytes
_slot_cache: dict[bytes, int] = {}
_SLOT_CACHE_CAP = 1 << 16


def key_hash_slot(key: bytes | str) -> int:
    """The slot a key belongs to, honouring ``{hashtag}`` routing."""
    if isinstance(key, str):
        key = key.encode()
    slot = _slot_cache.get(key)
    if slot is not None:
        return slot
    hashed = key
    start = key.find(b"{")
    if start >= 0:
        end = key.find(b"}", start + 1)
        if end > start + 1:  # non-empty tag, Redis rule
            hashed = key[start + 1 : end]
    slot = crc16(hashed) % NUM_SLOTS
    if len(_slot_cache) >= _SLOT_CACHE_CAP:
        _slot_cache.clear()
    _slot_cache[key] = slot
    return slot


class HashSlotMap:
    """Slot → shard assignment for ``num_shards`` shards.

    Starts with contiguous even ranges (shard i owns slots
    ``[i*16384//N, (i+1)*16384//N)``), the layout every fresh Redis
    Cluster uses; :meth:`move` reassigns a contiguous range, which is
    the map half of resharding.
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if num_shards > NUM_SLOTS:
            raise ValueError(f"more shards than slots ({NUM_SLOTS})")
        self.num_shards = num_shards
        self._owner = [0] * NUM_SLOTS
        for shard in range(num_shards):
            lo, hi = self.shard_range(shard)
            for slot in range(lo, hi):
                self._owner[slot] = shard

    def shard_range(self, shard: int) -> tuple[int, int]:
        """The initial contiguous range ``[lo, hi)`` of a shard."""
        self._check_shard(shard)
        lo = shard * NUM_SLOTS // self.num_shards
        hi = (shard + 1) * NUM_SLOTS // self.num_shards
        return lo, hi

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range 0..{self.num_shards - 1}"
            )

    # ------------------------------------------------------------ lookup
    def shard_for_slot(self, slot: int) -> int:
        if not 0 <= slot < NUM_SLOTS:
            raise ValueError(f"slot {slot} out of range 0..{NUM_SLOTS - 1}")
        return self._owner[slot]

    def shard_for_key(self, key: bytes | str) -> int:
        return self._owner[key_hash_slot(key)]

    def slots_of(self, shard: int) -> list[int]:
        """All slots a shard currently owns (possibly non-contiguous)."""
        self._check_shard(shard)
        return [s for s, owner in enumerate(self._owner) if owner == shard]

    def slot_counts(self) -> list[int]:
        """Owned-slot count per shard (sums to 16384)."""
        counts = [0] * self.num_shards
        for owner in self._owner:
            counts[owner] += 1
        return counts

    # ------------------------------------------------------------ reshard
    def move(self, lo: int, hi: int, dst: int) -> int:
        """Reassign slots ``[lo, hi)`` to ``dst``; returns moved count.

        Only flips the map — callers must migrate the data first (see
        :func:`repro.cluster.reshard.migrate_slots`, which calls this
        at cutover).
        """
        self._check_shard(dst)
        if not (0 <= lo < hi <= NUM_SLOTS):
            raise ValueError(f"bad slot range [{lo}, {hi})")
        moved = 0
        for slot in range(lo, hi):
            if self._owner[slot] != dst:
                self._owner[slot] = dst
                moved += 1
        return moved
