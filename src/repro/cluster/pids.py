"""Carving a device's Placement-ID space across shards.

The paper's device exposes 8 PIDs and a single SlimIO instance wants 4
(metadata, WAL, WAL-Snapshot, On-Demand Snapshot). Multi-tenant
deployments therefore hit a wall at 3+ shards: there are not enough
PIDs for full per-shard lifetime separation. The allocator hands out
**dedicated** 4-PID policies while they last and then falls back to a
configured :class:`SharingMode`:

* ``COLLAPSE`` — metadata shares PID 0 across shards (tiny,
  rewrite-in-place traffic), each shard keeps a *dedicated* WAL PID
  (the hottest, shortest-lived class — the one whose isolation the
  paper shows matters most), and the two snapshot classes collapse
  into one PID drawn round-robin from the leftover pool. Needs
  ``num_pids >= num_shards + 2``.
* ``SHARE_WAL`` — metadata and both snapshot classes each share one
  cluster-wide PID (3 total) and the remaining PIDs are dealt to the
  WAL class round-robin, so shards' WALs pair up. Scales to any shard
  count with ``num_pids >= 4``; WAF degrades more because two shards'
  WAL retirement cycles interleave inside one Reclaim Unit.
* ``DEDICATED`` — refuse to share: raise when 4 PIDs per shard do not
  fit. For experiments that must guarantee WAF 1.00.

Either sharing mode keeps WAF *bounded*: lifetimes are still grouped
per class, just across tenants, which is exactly the trade studied by
Allison et al. for FDP cache sharing.
"""

from __future__ import annotations

from enum import Enum

from repro.core.placement import PlacementPolicy

__all__ = ["SharingMode", "PidAllocator", "PIDS_PER_SHARD"]

#: full lifetime separation takes 4 PIDs per SlimIO instance
PIDS_PER_SHARD = 4


class SharingMode(Enum):
    DEDICATED = "dedicated"
    COLLAPSE = "collapse"
    SHARE_WAL = "share-wal"


class PidAllocator:
    """Allocates per-shard :class:`PlacementPolicy` on one device."""

    def __init__(self, num_pids: int = 8,
                 mode: SharingMode = SharingMode.COLLAPSE):
        if num_pids < PIDS_PER_SHARD:
            raise ValueError(
                f"device exposes {num_pids} PIDs; one SlimIO shard "
                f"already needs {PIDS_PER_SHARD}"
            )
        self.num_pids = num_pids
        self.mode = mode

    # ------------------------------------------------------------ queries
    def fits_dedicated(self, num_shards: int) -> bool:
        return num_shards * PIDS_PER_SHARD <= self.num_pids

    @staticmethod
    def auto_mode(num_pids: int, num_shards: int) -> SharingMode:
        """The least-sharing mode that can host ``num_shards``."""
        if num_shards * PIDS_PER_SHARD <= num_pids:
            return SharingMode.DEDICATED
        if num_shards + 2 <= num_pids:
            return SharingMode.COLLAPSE
        return SharingMode.SHARE_WAL

    # ------------------------------------------------------------ allocate
    def allocate(self, num_shards: int) -> list[PlacementPolicy]:
        """One policy per shard, dedicated when possible.

        Dedicated allocation ignores the sharing mode — sharing is a
        *fallback*, never a preference; with ``num_shards`` small
        enough every shard gets its own 4 PIDs and WAF stays 1.00.
        """
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if self.fits_dedicated(num_shards):
            return [self._dedicated(i) for i in range(num_shards)]
        if self.mode is SharingMode.DEDICATED:
            raise ValueError(
                f"{num_shards} shards x {PIDS_PER_SHARD} PIDs do not fit "
                f"in {self.num_pids} PIDs and mode is DEDICATED — use "
                f"COLLAPSE or SHARE_WAL, or shrink the cluster"
            )
        if self.mode is SharingMode.COLLAPSE:
            return self._collapse(num_shards)
        return self._share_wal(num_shards)

    def _dedicated(self, shard: int) -> PlacementPolicy:
        base = shard * PIDS_PER_SHARD
        return PlacementPolicy(
            metadata_pid=base,
            wal_pid=base + 1,
            wal_snapshot_pid=base + 2,
            ondemand_snapshot_pid=base + 3,
        )

    def _collapse(self, num_shards: int) -> list[PlacementPolicy]:
        # PID 0 = shared metadata; 1..num_shards = dedicated WALs;
        # the rest = collapsed snapshot PIDs, dealt round-robin.
        pool = list(range(num_shards + 1, self.num_pids))
        if not pool:
            raise ValueError(
                f"COLLAPSE needs num_pids >= num_shards + 2 "
                f"({self.num_pids} PIDs, {num_shards} shards) — "
                f"use SHARE_WAL for clusters this wide"
            )
        policies = []
        for shard in range(num_shards):
            snap = pool[shard % len(pool)]
            policies.append(PlacementPolicy(
                metadata_pid=0,
                wal_pid=1 + shard,
                wal_snapshot_pid=snap,
                ondemand_snapshot_pid=snap,
                collapse_snapshots=True,
            ))
        return policies

    def _share_wal(self, num_shards: int) -> list[PlacementPolicy]:
        # PIDs 0/1/2 = cluster-wide metadata / WAL-Snapshot /
        # On-Demand; 3.. = WAL PIDs, dealt round-robin.
        wal_pool = list(range(3, self.num_pids))
        return [
            PlacementPolicy(
                metadata_pid=0,
                wal_pid=wal_pool[shard % len(wal_pool)],
                wal_snapshot_pid=1,
                ondemand_snapshot_pid=2,
            )
            for shard in range(num_shards)
        ]

    # ------------------------------------------------------------ reporting
    def describe(self, num_shards: int) -> dict:
        """Allocation summary for reports and logs."""
        policies = self.allocate(num_shards)
        dedicated = self.fits_dedicated(num_shards)
        seen: dict[int, int] = {}
        for policy in policies:
            for pid in policy.pids:
                seen[pid] = seen.get(pid, 0) + 1
        return {
            "num_pids": self.num_pids,
            "num_shards": num_shards,
            "mode": "dedicated" if dedicated else self.mode.value,
            "shared_pids": sorted(p for p, n in seen.items() if n > 1),
            "pids_per_shard": [list(p.pids) for p in policies],
        }
