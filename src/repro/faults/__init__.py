"""repro.faults — deterministic fault injection for the SlimIO I/O path.

Two fault families, both seeded and replayable:

* **power cuts** (:class:`PowerCutSpec`) — stop the world at a chosen
  sim instant or at the Nth page write, leaving a *durable prefix* of
  any in-flight multi-page command (optionally an out-of-order subset,
  modeling drives that persist pages non-sequentially). The surviving
  device image is what recovery gets to see.
* **transient NVMe errors** (:class:`ErrorSpec`) — per-command seeded
  error/timeout completions, absorbed by the ring's bounded
  retry-with-backoff (:class:`repro.kernel.iouring.RetryPolicy`).

:class:`FaultyDevice` wraps the raw :class:`~repro.nvme.NvmeDevice`
below any sanitizer, so sanitized systems still validate commands
before faults mangle them. The crash-matrix harness
(:mod:`repro.faults.harness`) replays one workload, cuts power at
every page-write boundary, recovers on the surviving image, and checks
the recovered keyspace against the acknowledged-write prefix.
"""

from repro.faults.injector import (
    ErrorSpec,
    FaultyDevice,
    PowerCutSpec,
    TraceEntry,
)

__all__ = ["PowerCutSpec", "ErrorSpec", "TraceEntry", "FaultyDevice"]
