"""Crash-matrix harness: cut power everywhere, recover, compare.

The strongest crash-consistency check the simulator can run:

1. **Golden run** — replay a fixed workload on a traced
   :class:`~repro.faults.FaultyDevice` to learn every page-write the
   I/O path issues (WAL appends, tail rewrites, snapshot streams,
   metadata A/B updates) in the device-wide page-counter coordinate
   system power cuts are scheduled in.
2. **Matrix** — for each selected cut point, rerun the *same* workload
   (the simulator is deterministic, so the run is identical up to the
   cut), kill power at that page write, harvest the surviving image.
3. **Reboot** — load the image into a fresh device, build a fresh
   system, run §4.2 recovery, and assert:

   * recovery never raises and the offline checker accepts the image;
   * the recovered keyspace equals the state after *some* prefix of
     the issued operations, at least everything acknowledged and at
     most everything started (Always-Log, serial driver: durability
     may lead the ack by exactly the in-flight op, never more, never
     reordered, never invented);
   * **aftershock**: the recovered system keeps working — more writes,
     another clean harvest, a second recovery — pinning the
     recovered-cursor bugs a single recovery pass cannot see.

Every coordinate is deterministic: the same config produces the same
trace, the same cut points, and the same verdicts on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import SlimIOSystem, SystemConfig
from repro.core.verify import verify_lba_space
from repro.faults.injector import ErrorSpec, FaultyDevice, PowerCutSpec
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp, ServerConfig
from repro.nvme import NvmeDevice
from repro.persist import LoggingPolicy, SnapshotKind
from repro.sim import Environment

__all__ = [
    "CrashMatrixConfig",
    "CutOutcome",
    "CrashMatrixReport",
    "ErrorLaneResult",
    "build_ops",
    "prefix_states",
    "select_cut_points",
    "run_crash_matrix",
    "run_error_lane",
]


@dataclass(frozen=True)
class CrashMatrixConfig:
    """One matrix campaign: workload shape, cut policy, sim knobs."""

    ops: int = 48
    keys: int = 12
    value_bytes: int = 600
    #: DEL every Nth op (0 disables deletes)
    del_every: int = 4
    #: issue an On-Demand snapshot before this op index (None = never)
    snapshot_at: int | None = 16
    #: WAL-Snapshot trigger, sized to rotate at least once mid-run
    wal_trigger_bytes: int | None = 16 * 1024
    #: "prefix" (in-order programming) or "shuffle" (out-of-order)
    torn: str = "prefix"
    seed: int = 20260807
    #: cap on matrix size; None = cut at every single page write
    max_cuts: int | None = 64
    #: post-recovery writes + second recovery per cut (bug-4 lane)
    aftershock_ops: int = 6
    #: sim-time settle window after the last op (drains async metadata)
    settle: float = 0.01
    device_mb: int = 4
    batched: bool = True
    fast_sim: bool = True
    sanitize: bool = False
    #: causal tracing on every cut run: each kept trace is validated
    #: post-cut (well-formed even when truncated mid-WAL-append)
    trace: bool = False

    def system_config(self) -> SystemConfig:
        """Tiny, fast geometry — the matrix reruns the workload dozens
        of times, so every page counts."""
        return SystemConfig(
            geometry=FlashGeometry(channels=1, dies_per_channel=2,
                                   blocks_per_die=64, pages_per_block=16),
            nand=NandTiming(page_read=2e-6, page_program=5e-6,
                            block_erase=20e-6, channel_transfer=0.5e-6),
            ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3,
                          gc_stop_segments=4, gc_reserve_segments=2),
            policy=LoggingPolicy.ALWAYS,
            server=ServerConfig(
                wal_snapshot_trigger_bytes=self.wal_trigger_bytes,
                snapshot_chunk_entries=8,
            ),
            snapshot_fraction=0.30,
            sanitize=self.sanitize,
            batched=self.batched,
            fast_sim=self.fast_sim,
        )


@dataclass
class CutOutcome:
    """Verdict for one power-cut point."""

    cut_page: int
    acked: int
    started: int
    matched_prefix: int | None = None
    recovered_keys: int = 0
    wal_tail: str = "clean"
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


@dataclass
class CrashMatrixReport:
    """Everything one campaign learned."""

    config: CrashMatrixConfig
    total_pages: int = 0
    outcomes: list[CutOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> list[CutOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> dict[str, float]:
        outs = self.outcomes
        return {
            "cuts": float(len(outs)),
            "total_pages": float(self.total_pages),
            "failures": float(len(self.failures)),
            "torn_tails": float(
                sum(1 for o in outs if o.wal_tail != "clean")
            ),
            "mean_recovered_keys": (
                sum(o.recovered_keys for o in outs) / len(outs)
                if outs else 0.0
            ),
            "max_durability_lead": float(
                max(
                    (o.matched_prefix - o.acked for o in outs
                     if o.matched_prefix is not None),
                    default=0,
                )
            ),
        }


@dataclass
class ErrorLaneResult:
    """Verdict of one transient-error campaign."""

    retries: float
    giveups: float
    errors_injected: float
    timeouts_injected: float
    final_state_ok: bool
    recovered_state_ok: bool

    @property
    def ok(self) -> bool:
        return (self.giveups == 0 and self.final_state_ok
                and self.recovered_state_ok)


# ---------------------------------------------------------------------- workload
def build_ops(cfg: CrashMatrixConfig) -> list[ClientOp]:
    """The deterministic op sequence every run replays."""
    ops: list[ClientOp] = []
    for i in range(cfg.ops):
        key = b"k%d" % (i % cfg.keys)
        if cfg.del_every and i % cfg.del_every == cfg.del_every - 1:
            ops.append(ClientOp("DEL", key))
        else:
            val = bytes([(i * 7 + cfg.seed) % 251 or 1]) * cfg.value_bytes
            ops.append(ClientOp("SET", key, val))
    return ops


def prefix_states(ops: list[ClientOp]) -> list[dict[bytes, bytes]]:
    """``states[j]`` = keyspace after the first ``j`` ops."""
    states = [dict()]
    cur: dict[bytes, bytes] = {}
    for op in ops:
        if op.op == "SET":
            cur[op.key] = op.value
        elif op.op == "DEL":
            cur.pop(op.key, None)
        states.append(dict(cur))
    return states


def _make_device(env: Environment, cfg: SystemConfig) -> NvmeDevice:
    """Mirror :class:`SlimIOSystem`'s default device construction, so a
    harness-built device is indistinguishable from an engine-built one."""
    num_pids = cfg.num_pids
    if num_pids is None:
        num_pids = max(8, cfg.placement.max_pid + 1)
    return NvmeDevice(env, cfg.geometry, cfg.nand, cfg.ftl,
                      fdp=cfg.fdp, num_pids=num_pids, batched=cfg.batched)


def _driver(system: SlimIOSystem, ops: list[ClientOp],
            progress: dict, snapshot_at: int | None, settle: float):
    """Serial client: one op at a time, Always-Log acks in order."""
    env = system.env
    server = system.server
    for i, op in enumerate(ops):
        if snapshot_at is not None and i == snapshot_at:
            server.start_snapshot(SnapshotKind.ON_DEMAND)
        progress["started"] = i + 1
        yield from server.execute(op)
        progress["acked"] = i + 1
    # wait out any snapshot (incl. its retire_previous), then let
    # trailing async metadata writes land
    while True:
        proc = server._snapshot_proc
        if proc is not None and proc.is_alive:
            yield proc
            continue
        if not server.snapshot_in_progress:
            break
        yield env.timeout(1e-6)
    yield env.timeout(settle)


# ---------------------------------------------------------------------- matrix
def select_cut_points(trace, total_pages: int,
                      max_cuts: int | None) -> list[int]:
    """Pick cut points: exhaustive when it fits the budget, otherwise
    every command boundary first (cut *between* commands — the clean
    cases recovery must nail exactly), then torn interiors of
    multi-page commands, then an even stride over what remains."""
    if max_cuts is None or total_pages <= max_cuts:
        return list(range(total_pages))
    chosen: set[int] = set()
    boundaries: list[int] = []
    interiors: list[int] = []
    for entry in trace:
        if entry.kind != "write":
            continue
        boundaries.append(entry.first_page)
        if entry.nlb > 1:
            interiors.append(entry.first_page + entry.nlb // 2)
            interiors.append(entry.first_page + entry.nlb - 1)
    # interleave so a small budget still gets *both* torn interiors and
    # clean boundaries — either pool alone can exhaust the budget
    pools = [interiors, boundaries]
    while len(chosen) < max_cuts and any(pools):
        for pool in pools:
            if pool and len(chosen) < max_cuts:
                page = pool.pop(0)
                if 0 <= page < total_pages:
                    chosen.add(page)
    stride = max(1, total_pages // max_cuts)
    for page in range(0, total_pages, stride):
        if len(chosen) >= max_cuts:
            break
        chosen.add(page)
    return sorted(chosen)


def _golden_run(cfg: CrashMatrixConfig, sys_cfg: SystemConfig,
                ops: list[ClientOp]):
    """Trace the workload's page writes; returns (trace, total_pages)."""
    env = Environment(fast_resume=sys_cfg.fast_sim,
                      fast_forward=sys_cfg.fast_forward)
    faulty = FaultyDevice(_make_device(env, sys_cfg), trace=True)
    system = SlimIOSystem(env, sys_cfg, device=faulty)
    progress: dict[str, int] = {"started": 0, "acked": 0}
    done = env.process(
        _driver(system, ops, progress, cfg.snapshot_at, cfg.settle),
        name="crash-driver",
    )
    env.run(until=done)
    system.stop()
    if progress["acked"] != len(ops):
        raise RuntimeError("golden run did not complete the workload")
    return faulty.trace, faulty.pages_seen


def _recover_image(image: dict[int, bytes], sys_cfg: SystemConfig):
    """Boot a fresh system on a crash image; returns
    (system, RecoveryResult)."""
    env = Environment(fast_resume=sys_cfg.fast_sim,
                      fast_forward=sys_cfg.fast_forward)
    device = _make_device(env, sys_cfg)
    device.load_image(image)
    system = SlimIOSystem(env, sys_cfg, device=device)
    proc = env.process(system.recover(SnapshotKind.WAL_TRIGGERED),
                       name="crash-recovery")
    result = env.run(until=proc)
    return system, result


def _match_prefix(data: dict[bytes, bytes],
                  states: list[dict[bytes, bytes]],
                  lo: int, hi: int) -> int | None:
    """Smallest j in [lo, hi] with ``states[j] == data`` (None = no
    prefix matches — a consistency violation)."""
    for j in range(lo, min(hi, len(states) - 1) + 1):
        if states[j] == data:
            return j
    return None


def _run_one_cut(cfg: CrashMatrixConfig, sys_cfg: SystemConfig,
                 ops: list[ClientOp],
                 states: list[dict[bytes, bytes]],
                 cut_page: int) -> CutOutcome:
    env = Environment(fast_resume=sys_cfg.fast_sim,
                      fast_forward=sys_cfg.fast_forward)
    spec = PowerCutSpec(at_page_write=cut_page, torn=cfg.torn,
                        seed=cfg.seed + cut_page)
    faulty = FaultyDevice(_make_device(env, sys_cfg), power=spec)
    system = SlimIOSystem(env, sys_cfg, device=faulty)
    tracer = None
    if cfg.trace:
        from repro.obs.wiring import attach_tracer

        # every request traced: a cut can land on any op, and the
        # truncated trace is exactly the forensic artifact we validate
        tracer = attach_tracer(system, sample_every=1)
    progress: dict[str, int] = {"started": 0, "acked": 0}
    done = env.process(
        _driver(system, ops, progress, cfg.snapshot_at, cfg.settle),
        name="crash-driver",
    )
    env.run(until=env.any_of([faulty.cut_event, done]))
    system.stop()
    out = CutOutcome(cut_page=cut_page, acked=progress["acked"],
                     started=progress["started"])
    if tracer is not None:
        from repro.obs.trace import validate_trace

        tracer.drain_open()
        problems = [f"trace {ctx.trace_id}: {p}"
                    for ctx in tracer.kept.values()
                    for p in validate_trace(ctx)]
        if problems:
            out.issues.append(
                f"malformed crash traces: {problems[:3]}"
            )
    if not faulty.power_lost:
        out.issues.append("cut point never reached (driver finished)")
        return out
    image = faulty.inner.image()

    # the crash image itself must pass the offline checker
    check_env = Environment()
    check_dev = _make_device(check_env, sys_cfg)
    check_dev.load_image(image)
    pre = verify_lba_space(
        check_dev, snapshot_fraction=sys_cfg.snapshot_fraction,
        allow_missing_metadata=True,
    )
    if not pre.ok:
        out.issues.append(f"crash image fails verify: {pre.issues}")

    try:
        system2, result = _recover_image(image, sys_cfg)
    except Exception as exc:  # noqa: BLE001 — every failure is a finding
        out.issues.append(f"recovery raised {type(exc).__name__}: {exc}")
        return out
    out.recovered_keys = len(result.data)
    out.wal_tail = result.wal_tail
    out.matched_prefix = _match_prefix(
        result.data, states, out.acked, out.started
    )
    if out.matched_prefix is None:
        out.issues.append(
            f"recovered keyspace matches no op prefix in "
            f"[{out.acked}, {out.started}] "
            f"({len(result.data)} keys recovered)"
        )
        system2.stop()
        return out

    if cfg.aftershock_ops:
        out.issues.extend(
            _aftershock(cfg, sys_cfg, system2, dict(result.data))
        )
    system2.stop()
    return out


def _aftershock(cfg: CrashMatrixConfig, sys_cfg: SystemConfig,
                system2: SlimIOSystem,
                base: dict[bytes, bytes]) -> list[str]:
    """Write through the recovered system, then recover *again*.

    Pins the class of bug where recovery leaves a cursor the next
    writer misuses — e.g. a padding hole after a mid-page tail that
    makes post-recovery appends invisible to the second recovery."""
    env2 = system2.env
    system2.server.store.load(base)
    after_ops = [
        ClientOp("SET", b"k%d" % (i % cfg.keys),
                 bytes([(i * 11 + 3) % 251 or 1]) * cfg.value_bytes)
        for i in range(cfg.aftershock_ops)
    ]
    progress: dict[str, int] = {"started": 0, "acked": 0}
    done = env2.process(
        _driver(system2, after_ops, progress, None, cfg.settle),
        name="aftershock-driver",
    )
    env2.run(until=done)
    if progress["acked"] != len(after_ops):
        return ["aftershock writes did not complete on the recovered system"]
    expected = dict(base)
    for op in after_ops:
        expected[op.key] = op.value
    image2 = system2.device.image()
    try:
        system3, result2 = _recover_image(image2, sys_cfg)
    except Exception as exc:  # noqa: BLE001
        return [f"second recovery raised {type(exc).__name__}: {exc}"]
    system3.stop()
    if result2.data != expected:
        missing = sorted(set(expected) - set(result2.data))
        wrong = sorted(
            k for k in set(expected) & set(result2.data)
            if expected[k] != result2.data[k]
        )
        return [
            f"aftershock state diverged: missing={missing!r} "
            f"wrong={wrong!r} extra="
            f"{sorted(set(result2.data) - set(expected))!r}"
        ]
    return []


def run_crash_matrix(cfg: CrashMatrixConfig | None = None,
                     progress_cb=None) -> CrashMatrixReport:
    """Run one full campaign; returns the report (``report.ok`` is the
    headline verdict). ``progress_cb(i, n, outcome)`` is called after
    each cut for live reporting."""
    cfg = cfg or CrashMatrixConfig()
    sys_cfg = cfg.system_config()
    ops = build_ops(cfg)
    states = prefix_states(ops)
    trace, total_pages = _golden_run(cfg, sys_cfg, ops)
    report = CrashMatrixReport(config=cfg, total_pages=total_pages)
    cuts = select_cut_points(trace, total_pages, cfg.max_cuts)
    for i, cut_page in enumerate(cuts):
        outcome = _run_one_cut(cfg, sys_cfg, ops, states, cut_page)
        report.outcomes.append(outcome)
        if progress_cb is not None:
            progress_cb(i, len(cuts), outcome)
    return report


# ---------------------------------------------------------------------- errors
def run_error_lane(cfg: CrashMatrixConfig | None = None,
                   error_spec: ErrorSpec | None = None) -> ErrorLaneResult:
    """Transient-error campaign: run the workload under seeded NVMe
    errors/timeouts, let the ring's RetryPolicy absorb them, and check
    nothing was lost — in memory or through a clean-image recovery."""
    cfg = cfg or CrashMatrixConfig()
    if error_spec is None:
        # heavy enough that a short workload *will* see failures — the
        # lane must demonstrate retries, not merely tolerate them
        error_spec = ErrorSpec(seed=cfg.seed, write_error_rate=0.05,
                               read_error_rate=0.02)
    sys_cfg = replace(cfg.system_config(), faults=True,
                      fault_seed=cfg.seed)
    env = Environment(fast_resume=sys_cfg.fast_sim,
                      fast_forward=sys_cfg.fast_forward)
    system = SlimIOSystem(env, sys_cfg)
    injector = system.fault_injector
    injector.errors = error_spec  # FaultyDevice spec is swappable
    injector._rng_errors.seed(error_spec.seed)
    ops = build_ops(cfg)
    states = prefix_states(ops)
    progress: dict[str, int] = {"started": 0, "acked": 0}
    done = env.process(
        _driver(system, ops, progress, cfg.snapshot_at, cfg.settle),
        name="error-lane-driver",
    )
    env.run(until=done)
    system.stop()
    final_ok = (
        progress["acked"] == len(ops)
        and system.server.store.as_dict() == states[-1]
    )
    rings = [system.wal_ring, *system._snap_rings.values()]
    retries = sum(r.counters.get("retries") for r in rings)
    giveups = sum(r.counters.get("retry_giveups") for r in rings)
    image = injector.inner.image()
    try:
        # recover on a fault-free config: the campaign under test is the
        # write path, not recovery-under-errors
        system2, result = _recover_image(image, replace(sys_cfg, faults=False))
        system2.stop()
        recovered_ok = result.data == states[-1]
    except Exception:  # noqa: BLE001
        recovered_ok = False
    return ErrorLaneResult(
        retries=retries,
        giveups=giveups,
        errors_injected=injector.counters.get("errors_injected"),
        timeouts_injected=injector.counters.get("timeouts_injected"),
        final_state_ok=final_ok,
        recovered_state_ok=recovered_ok,
    )
