"""CLI: run the crash matrix and the transient-error lane.

    python -m repro.faults                    # default campaign
    python -m repro.faults --torn shuffle     # out-of-order pages
    python -m repro.faults --cuts all         # every single page write
    python -m repro.faults --ops 96 --cuts 128 --no-errors

Exit status 0 only if every cut recovers consistently and the error
lane loses nothing.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.faults.harness import (
    CrashMatrixConfig,
    run_crash_matrix,
    run_error_lane,
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _cuts(text: str) -> int | None:
    if text == "all":
        return None
    try:
        return _positive_int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'all', got {text!r}"
        ) from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Power-cut crash matrix + NVMe error injection "
                    "against the SlimIO I/O path",
    )
    parser.add_argument("--ops", type=_positive_int, default=48,
                        help="workload length (default 48)")
    parser.add_argument("--cuts", type=_cuts, default=64,
                        help="max cut points, or 'all' (default 64)")
    parser.add_argument("--torn", choices=("prefix", "shuffle", "both"),
                        default="both",
                        help="torn-write model (default: run both)")
    parser.add_argument("--seed", type=int, default=20260807)
    parser.add_argument("--no-errors", action="store_true",
                        help="skip the transient-error lane")
    parser.add_argument("--no-aftershock", action="store_true",
                        help="skip post-recovery write + second recovery")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the repro.analysis runtime sanitizers "
                             "inside every crash run")
    args = parser.parse_args(argv)
    max_cuts = args.cuts

    failed = False
    modes = (("prefix", "shuffle") if args.torn == "both"
             else (args.torn,))
    for torn in modes:
        cfg = CrashMatrixConfig(
            ops=args.ops, max_cuts=max_cuts, torn=torn, seed=args.seed,
            aftershock_ops=0 if args.no_aftershock else 6,
            sanitize=args.sanitize,
        )
        t0 = time.perf_counter()
        report = run_crash_matrix(cfg)
        s = report.summary()
        verdict = "ok" if report.ok else "FAIL"
        print(
            f"crash-matrix torn={torn}: {verdict} — "
            f"{int(s['cuts'])} cuts over {int(s['total_pages'])} page "
            f"writes, {int(s['torn_tails'])} torn tails, "
            f"max durability lead {int(s['max_durability_lead'])} op(s) "
            f"[{time.perf_counter() - t0:.1f}s]"
        )
        for out in report.failures:
            failed = True
            print(f"  cut at page {out.cut_page} "
                  f"(acked={out.acked} started={out.started}):")
            for issue in out.issues:
                print(f"    - {issue}")

    if not args.no_errors:
        cfg = CrashMatrixConfig(ops=args.ops, seed=args.seed)
        lane = run_error_lane(cfg)
        verdict = "ok" if lane.ok else "FAIL"
        print(
            f"error-lane: {verdict} — "
            f"{int(lane.errors_injected)} errors + "
            f"{int(lane.timeouts_injected)} timeouts injected, "
            f"{int(lane.retries)} ring retries, "
            f"{int(lane.giveups)} giveups"
        )
        if not lane.ok:
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
