"""Deterministic fault injection for the NVMe device.

:class:`FaultyDevice` wraps an :class:`~repro.nvme.NvmeDevice` (the
same proxy idiom as ``repro.analysis.SanitizedDevice``) and perturbs
the command stream in two seeded, reproducible ways:

**Power cuts.** A cut can be scheduled at an absolute sim instant
(``PowerCutSpec.at_time``) or at the Nth page write across the whole
device (``at_page_write``). A multi-page write straddling the cut is
*torn*: only some of its pages persist. ``torn="prefix"`` keeps the
first k pages (in-order programming), ``torn="shuffle"`` keeps a seeded
arbitrary k-subset (out-of-order programming across dies — the worst
case the Metadata Region's A/B scheme and the WAL's CRC framing must
survive). Commands still in flight at the instant of the cut are torn
the same way; commands submitted after it hang forever — a dead device
returns nothing, not errors — so the only observable is the one a real
host has: the machine stops, and recovery reads the surviving image.

**Transient errors.** With an :class:`ErrorSpec`, each write/read
command independently fails with a seeded probability, raising
:class:`~repro.nvme.NvmeError` (or ``NvmeTimeout``) after a realistic
delay. The kernel ring's :class:`~repro.kernel.RetryPolicy` is expected
to absorb these; ``max_failures_per_cmd`` bounds how many times one
command fails so a bounded retry loop can always make progress unless a
test forces otherwise (:meth:`FaultyDevice.force_errors`).

Determinism: all choices come from ``random.Random(seed)`` streams
consumed in command-submission order, which the simulator makes
deterministic. Two runs of the same workload with the same specs tear
the same pages and fail the same commands.
"""

from __future__ import annotations

import random
from collections.abc import Generator
from dataclasses import dataclass

from repro.nvme import (
    DeallocateCmd,
    NvmeCommand,
    NvmeDevice,
    NvmeError,
    NvmeTimeout,
    ReadCmd,
    WriteCmd,
)
from repro.sim import Event
from repro.sim.stats import Counter

__all__ = ["PowerCutSpec", "ErrorSpec", "TraceEntry", "FaultyDevice"]

_TORN_MODES = ("prefix", "shuffle")


@dataclass(frozen=True)
class PowerCutSpec:
    """When and how power dies.

    Exactly one of ``at_page_write`` / ``at_time`` should be set.
    ``at_page_write=N`` cuts power during the write that would program
    the (N+1)th page overall: N pages of acknowledged-or-earlier data
    survive in full, and the straddling command keeps only its share.
    """

    at_page_write: int | None = None
    at_time: float | None = None
    torn: str = "prefix"
    seed: int = 0

    def __post_init__(self) -> None:
        if (self.at_page_write is None) == (self.at_time is None):
            raise ValueError("set exactly one of at_page_write / at_time")
        if self.at_page_write is not None and self.at_page_write < 0:
            raise ValueError("negative at_page_write")
        if self.torn not in _TORN_MODES:
            raise ValueError(f"torn must be one of {_TORN_MODES}")


@dataclass(frozen=True)
class ErrorSpec:
    """Seeded transient-failure policy for the command stream."""

    seed: int = 0
    write_error_rate: float = 0.0
    read_error_rate: float = 0.0
    timeout_fraction: float = 0.25  # injected failures that are timeouts
    max_failures_per_cmd: int = 2
    error_latency: float = 20e-6
    timeout_latency: float = 400e-6

    def __post_init__(self) -> None:
        for rate in (self.write_error_rate, self.read_error_rate,
                     self.timeout_fraction):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be within [0, 1]")
        if self.max_failures_per_cmd < 0:
            raise ValueError("negative max_failures_per_cmd")

    @classmethod
    def light(cls, seed: int = 0) -> ErrorSpec:
        """A mild background error rate every retry policy should absorb."""
        return cls(seed=seed, write_error_rate=0.002, read_error_rate=0.001)


@dataclass(frozen=True)
class TraceEntry:
    """One traced command: where it landed and which pages it covered.

    ``first_page`` is the device-wide cumulative page-write counter at
    the start of the command — the coordinate system ``at_page_write``
    cuts are scheduled in. Deallocate entries carry ``nlb`` trimmed
    pages but do not advance the counter.
    """

    kind: str  # "write" | "dealloc"
    index: int
    first_page: int
    lba: int
    nlb: int


@dataclass
class _Inflight:
    cmd: WriteCmd
    undo: bytes


class FaultyDevice:
    """NVMe device proxy injecting power cuts and transient errors."""

    def __init__(
        self,
        inner: NvmeDevice,
        power: PowerCutSpec | None = None,
        errors: ErrorSpec | None = None,
        trace: bool = False,
    ):
        self.inner = inner
        self.env = inner.env
        self.power = power
        self.errors = errors
        self.counters = Counter()
        self.trace: list[TraceEntry] | None = [] if trace else None
        self.cut_event: Event = inner.env.event()
        self.pages_seen = 0
        self._cmd_index = 0
        self._lost = False
        self._rng_torn = random.Random(power.seed if power else 0)
        self._rng_errors = random.Random(errors.seed if errors else 0)
        self._inflight: dict[int, _Inflight] = {}
        self._inflight_next = 0
        self._fail_counts: dict[int, int] = {}
        self._forced: list[list] = []  # [lo, hi, remaining, kind, opcode]
        self.obs = None
        self._obs_counters: dict[str, object] = {}
        if power is not None and power.at_time is not None:
            self.env.process(self._watch(power.at_time), name="power-cut")

    # ------------------------------------------------------------------ proxy
    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    @property
    def power_lost(self) -> bool:
        return self._lost

    # ------------------------------------------------------------------ obs
    def attach_obs(self, registry) -> None:
        self.obs = registry
        for name in ("faults_power_cuts_total",
                     "faults_torn_write_cmds_total",
                     "faults_torn_pages_total",
                     "faults_errors_injected_total",
                     "faults_timeouts_injected_total",
                     "faults_commands_after_cut_total"):
            self._obs_counters[name] = registry.counter(name)

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.counters.add(name, amount)
        inst = self._obs_counters.get(f"faults_{name}_total")
        if inst is not None:
            inst.inc(amount)

    # ------------------------------------------------------------------ control
    def force_errors(
        self,
        lba_lo: int,
        lba_hi: int,
        count: int = 1,
        kind: str = "error",
        opcode: str | None = None,
    ) -> None:
        """Fail the next ``count`` commands touching [lba_lo, lba_hi).

        A targeted test hook: e.g. force the metadata-region write of a
        snapshot ``finalize`` to fail and assert the promotion reverts.
        ``opcode`` restricts matching to "write"/"read"/"deallocate".
        """
        if kind not in ("error", "timeout"):
            raise ValueError("kind must be 'error' or 'timeout'")
        self._forced.append([lba_lo, lba_hi, count, kind, opcode])

    def cut_now(self) -> None:
        """Immediately cut power (tears whatever is in flight)."""
        self._cut()

    # ------------------------------------------------------------------ service
    def submit(self, cmd: NvmeCommand) -> Generator:
        if self._lost:
            self._count("commands_after_cut")
            yield self._halt()
        if isinstance(cmd, WriteCmd):
            return (yield from self._write(cmd))
        if isinstance(cmd, ReadCmd):
            return (yield from self._read(cmd))
        if isinstance(cmd, DeallocateCmd):
            return (yield from self._deallocate(cmd))
        return (yield from self.inner.submit(cmd))

    def _write(self, cmd: WriteCmd) -> Generator:
        spec = self.power
        first = self.pages_seen
        if (spec is not None and spec.at_page_write is not None
                and spec.at_page_write < first + cmd.nlb):
            # power dies while this command is being programmed
            keep = max(0, spec.at_page_write - first)
            self._persist_subset(cmd, self._survivors(cmd.nlb, keep))
            self._count("torn_write_cmds")
            self._count("torn_pages", cmd.nlb - keep)
            self._cut()
            yield self._halt()
        self.pages_seen += cmd.nlb
        if self.trace is not None:
            self.trace.append(TraceEntry("write", self._cmd_index, first,
                                         cmd.lba, cmd.nlb))
        self._cmd_index += 1
        yield from self._maybe_error(cmd, "write",
                                     self.errors.write_error_rate
                                     if self.errors else 0.0)
        token = None
        if spec is not None:
            token = self._inflight_next
            self._inflight_next += 1
            self._inflight[token] = _Inflight(cmd, self.inner.peek(cmd.lba,
                                                                   cmd.nlb))
        try:
            result = yield from self.inner.submit(cmd)
        finally:
            if token is not None:
                self._inflight.pop(token, None)
        if self._lost:
            yield self._halt()  # completion never reaches a dead host
        self._fail_counts.pop(id(cmd), None)
        return result

    def _read(self, cmd: ReadCmd) -> Generator:
        # reads are not crash boundaries and are kept out of the trace
        self._cmd_index += 1
        yield from self._maybe_error(cmd, "read",
                                     self.errors.read_error_rate
                                     if self.errors else 0.0)
        result = yield from self.inner.submit(cmd)
        if self._lost:
            yield self._halt()
        self._fail_counts.pop(id(cmd), None)
        return result

    def _deallocate(self, cmd: DeallocateCmd) -> Generator:
        if self.trace is not None:
            self.trace.append(TraceEntry("dealloc", self._cmd_index,
                                         self.pages_seen, cmd.lba, cmd.nlb))
        self._cmd_index += 1
        yield from self._maybe_error(cmd, "deallocate", 0.0)
        result = yield from self.inner.submit(cmd)
        if self._lost:
            yield self._halt()
        return result

    # ------------------------------------------------------------------ faults
    def _watch(self, at: float) -> Generator:
        yield self.env.at(at)
        self._cut()

    def _cut(self) -> None:
        if self._lost:
            return
        self._lost = True
        self._count("power_cuts")
        for entry in self._inflight.values():
            # roll the in-flight command back to a seeded surviving subset
            cmd = entry.cmd
            keep = self._rng_torn.randint(0, cmd.nlb)
            survivors = self._survivors(cmd.nlb, keep)
            if len(survivors) < cmd.nlb:
                self._count("torn_write_cmds")
                self._count("torn_pages", cmd.nlb - len(survivors))
            page = self.inner.lba_size
            buf = bytearray(self.inner.peek(cmd.lba, cmd.nlb))
            for i in range(cmd.nlb):
                if i not in survivors:
                    buf[i * page:(i + 1) * page] = \
                        entry.undo[i * page:(i + 1) * page]
            self.inner.poke(cmd.lba, bytes(buf))
        self._inflight.clear()
        if not self.cut_event.triggered:
            self.cut_event.succeed(self.env.now)

    def _survivors(self, nlb: int, keep: int) -> set[int]:
        keep = max(0, min(nlb, keep))
        if self.power is not None and self.power.torn == "shuffle":
            return set(self._rng_torn.sample(range(nlb), keep))
        return set(range(keep))

    def _persist_subset(self, cmd: WriteCmd, survivors: set[int]) -> None:
        """Materialize only ``survivors`` of a never-forwarded write."""
        if not survivors:
            return
        page = self.inner.lba_size
        src = cmd.data if cmd.data is not None else bytes(cmd.nlb * page)
        buf = bytearray(self.inner.peek(cmd.lba, cmd.nlb))
        for i in survivors:
            buf[i * page:(i + 1) * page] = src[i * page:(i + 1) * page]
        self.inner.poke(cmd.lba, bytes(buf))

    def _maybe_error(self, cmd: NvmeCommand, opcode: str,
                     rate: float) -> Generator:
        forced = self._match_forced(cmd, opcode)
        if forced is not None:
            yield from self._raise_injected(cmd, opcode, forced)
        spec = self.errors
        if spec is None or rate <= 0.0:
            return
        if self._fail_counts.get(id(cmd), 0) >= spec.max_failures_per_cmd:
            return
        if self._rng_errors.random() < rate:
            self._fail_counts[id(cmd)] = self._fail_counts.get(id(cmd), 0) + 1
            kind = ("timeout"
                    if self._rng_errors.random() < spec.timeout_fraction
                    else "error")
            yield from self._raise_injected(cmd, opcode, kind)

    def _raise_injected(self, cmd: NvmeCommand, opcode: str,
                        kind: str) -> Generator:
        spec = self.errors or ErrorSpec()
        if kind == "timeout":
            self._count("timeouts_injected")
            yield self.env.timeout(spec.timeout_latency)
            raise NvmeTimeout(f"injected {opcode} timeout at lba {cmd.lba}",
                              opcode=opcode, lba=cmd.lba)
        self._count("errors_injected")
        yield self.env.timeout(spec.error_latency)
        raise NvmeError(f"injected {opcode} error at lba {cmd.lba}",
                        opcode=opcode, lba=cmd.lba)

    def _match_forced(self, cmd: NvmeCommand, opcode: str) -> str | None:
        for entry in self._forced:
            lo, hi, remaining, kind, op = entry
            if remaining <= 0:
                continue
            if op is not None and op != opcode:
                continue
            if cmd.lba < hi and cmd.lba + cmd.nlb > lo:
                entry[2] -= 1
                return kind
        return None

    def _halt(self) -> Event:
        # an event that never fires: the host-visible face of a dead drive
        return self.env.event()
