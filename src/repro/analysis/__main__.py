"""slimlint / slimflow CLI.

Usage::

    python -m repro.analysis [paths ...]
    python -m repro.analysis src --format sarif --output slimlint.sarif
    python -m repro.analysis --list-rules
    python -m repro.analysis flow [paths ...]      # whole-program rules

Exit status: 0 clean, 1 findings (or unreadable files), 2 usage error.
``flow`` dispatches to :mod:`repro.analysis.flow.cli`, the
interprocedural analyzer with baseline drift detection.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.linter import lint_paths
from repro.analysis.output import FORMATS
from repro.analysis.rules import RULES


def main(argv=None) -> int:
    args_in = list(sys.argv[1:] if argv is None else argv)
    if args_in and args_in[0] == "flow":
        from repro.analysis.flow.cli import flow_main
        return flow_main(args_in[1:])
    argv = args_in
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="slimlint: domain-aware static analysis for the "
                    "SlimIO tree.",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             "(default: src tests examples)")
    parser.add_argument("--format", choices=sorted(FORMATS),
                        default="text", help="output format")
    parser.add_argument("--output", default=None,
                        help="write the report to this file instead of "
                             "stdout")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.name:<26} {rule.summary}")
        return 0

    known = {rule.code for rule in RULES}
    select = set(known)
    if args.select:
        select = {c.strip().upper() for c in args.select.split(",") if c.strip()}
    if args.ignore:
        select -= {c.strip().upper() for c in args.ignore.split(",")
                   if c.strip()}
    unknown = select - known
    if unknown:
        print(f"unknown rule code(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = args.paths or [p for p in ("src", "tests", "examples")
                           if Path(p).exists()]
    if not paths:
        print("nothing to lint (no paths given and no src/tests/examples "
              "here)", file=sys.stderr)
        return 2

    result = lint_paths(paths, select=select)
    report = FORMATS[args.format](result)
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n", encoding="utf-8")
        print(f"(report written to {out})", file=sys.stderr)
    else:
        print(report)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
