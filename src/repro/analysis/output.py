"""Render slimlint results as text, JSON, or SARIF 2.1.0.

SARIF output follows the minimal schema GitHub code scanning ingests:
one run, one rule descriptor per SLIM rule, one result per finding
with a physical location.  The JSON format is a flat machine-readable
dump for ad-hoc tooling.
"""

from __future__ import annotations

import json

from repro.analysis.linter import LintResult
from repro.analysis.rules import RULES

__all__ = ["render_text", "render_json", "render_sarif", "FORMATS"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def render_text(result: LintResult) -> str:
    lines = [f.render() for f in result.findings]
    lines.extend(result.errors)
    n = len(result.findings)
    noun = "finding" if n == 1 else "findings"
    lines.append(f"slimlint: {n} {noun} in {result.files_checked} files "
                 f"({result.suppressed} suppressed)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "tool": "slimlint",
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "errors": list(result.errors),
        "findings": [
            {
                "code": f.code,
                "message": f.message,
                "file": f.file,
                "line": f.line,
                "col": f.col + 1,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2)


def render_sarif(result: LintResult) -> str:
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in RULES
    ]
    results = [
        {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.file.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in result.findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "slimlint",
                        "informationUri":
                            "https://example.invalid/slimio/slimlint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


FORMATS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
