"""Render slimlint/slimflow results as text, JSON, or SARIF 2.1.0.

SARIF output follows the minimal schema GitHub code scanning ingests:
one run, one rule descriptor per SLIM rule, one result per finding
with a physical location.  The JSON format is a flat machine-readable
dump for ad-hoc tooling.  Both linters share these renderers: the
``tool`` and ``rules`` parameters decide whose banner and rule
catalogue appear, and flow findings that carry a race *trace* export
it as SARIF ``relatedLocations`` (one per read/yield/write step).
"""

from __future__ import annotations

import json

from repro.analysis.linter import LintResult
from repro.analysis.rules import RULES

__all__ = ["render_text", "render_json", "render_sarif", "FORMATS"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def render_text(result: LintResult, *, tool: str = "slimlint") -> str:
    lines = [f.render() for f in result.findings]
    lines.extend(result.errors)
    n = len(result.findings)
    noun = "finding" if n == 1 else "findings"
    lines.append(f"{tool}: {n} {noun} in {result.files_checked} files "
                 f"({result.suppressed} suppressed)")
    return "\n".join(lines)


def render_json(result: LintResult, *, tool: str = "slimlint") -> str:
    payload = {
        "tool": tool,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "errors": list(result.errors),
        "findings": [
            {
                "code": f.code,
                "message": f.message,
                "file": f.file,
                "line": f.line,
                "col": f.col + 1,
                **({"trace": [{"label": label, "line": line}
                              for label, line in f.trace]}
                   if getattr(f, "trace", ()) else {}),
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2)


def _location(uri: str, line: int, col: int, message: str | None = None) -> dict:
    loc = {
        "physicalLocation": {
            "artifactLocation": {"uri": uri.replace("\\", "/")},
            "region": {"startLine": line, "startColumn": col + 1},
        }
    }
    if message is not None:
        loc["message"] = {"text": message}
    return loc


def render_sarif(result: LintResult, *, tool: str = "slimlint",
                 rules=RULES) -> str:
    descriptors = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    results = []
    for f in result.findings:
        entry = {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [_location(f.file, f.line, f.col)],
        }
        trace = getattr(f, "trace", ())
        if trace:
            entry["relatedLocations"] = [
                _location(f.file, line, 0, message=label)
                for label, line in trace
            ]
        results.append(entry)
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "informationUri":
                            f"https://example.invalid/slimio/{tool}",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


FORMATS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
