"""slimlint driver: file discovery, package scoping, pragma suppression.

The driver walks the requested paths, infers each module's *package
scope* (``src/repro/<pkg>/...`` and ``tests/<pkg>/...`` both map onto
``<pkg>``, so a layer's own tests share its privileges), parses the
module once, runs every selected rule from :mod:`repro.analysis.rules`,
and then filters the findings through ``# slimlint:`` pragmas:

* ``# slimlint: ignore[SLIM001]`` — trailing comment suppresses the
  named rule(s) on that line (comma-separate for several).
* ``# slimlint: ignore-file[SLIM003]`` — anywhere in the file,
  suppresses the rule(s) for the whole module.

Suppression is deliberately *rule-scoped*: there is no bare ``ignore``
that silences everything, so every pragma documents which invariant it
is waiving.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.flow.rules import FLOW_CODES
from repro.analysis.rules import RULES, Finding, ModuleContext, run_rules

__all__ = ["LintResult", "lint_paths", "lint_source", "lint_file"]

_PRAGMA = re.compile(r"#\s*slimlint:\s*(ignore(?:-file)?)\[([A-Za-z0-9,\s]+)\]")
#: any line that *tries* to write a pragma — used to diagnose typos
#: that the strict pattern would otherwise silently skip
_PRAGMA_ATTEMPT = re.compile(r"#\s*slimlint:\s*ignore")
_ALL_CODES = {rule.code for rule in RULES}
#: pragma-known codes: slimlint's own rules plus slimflow's, since the
#: whole-program findings honour the same suppression syntax
_KNOWN_CODES = _ALL_CODES | FLOW_CODES


@dataclass
class LintResult:
    """Findings plus bookkeeping from one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def _infer_context(path: Path, display: str) -> ModuleContext:
    """Map a path onto its repro package scope."""
    parts = path.parts
    package: str | None = None
    is_test = False
    is_src = False
    for anchor in ("repro", "tests"):
        if anchor in parts:
            i = parts.index(anchor)
            if i + 1 < len(parts) - 0 and len(parts) > i + 1:
                nxt = parts[i + 1]
                candidate = nxt if not nxt.endswith(".py") else None
                if anchor == "repro":
                    is_src = "src" in parts[:i] or parts[0] == "repro"
                    if candidate:
                        package = candidate
                else:
                    is_test = True
                    if candidate and package is None:
                        package = candidate
            if anchor == "tests":
                is_test = True
    return ModuleContext(path=display, package=package,
                         is_test=is_test, is_src=is_src)


def _parse_pragmas(
    source: str, path: str = "<string>",
) -> tuple[dict[int, set[str]], set[str], list[str]]:
    """Per-line and file-level suppressed rule codes, plus diagnostics.

    A pragma that would silently suppress *nothing* is worse than no
    pragma — the author believes an invariant is waived when it is not
    — so a line that attempts an ignore pragma but does not parse, or
    that names a rule id no rule owns, is reported as an error instead
    of being skipped.
    """
    line_sup: dict[int, set[str]] = {}
    file_sup: set[str] = set()
    problems: list[str] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        matches = _PRAGMA.findall(line)
        if not matches:
            if _PRAGMA_ATTEMPT.search(line):
                problems.append(
                    f"{path}:{lineno}: malformed slimlint pragma (expected "
                    f"ignore[SLIM0xx] or ignore-file[SLIM0xx] after the "
                    f"marker)")
            continue
        for kind, codes_str in matches:
            codes = {c.strip() for c in codes_str.split(",") if c.strip()}
            if not codes:
                problems.append(f"{path}:{lineno}: slimlint pragma names "
                                f"no rule codes")
                continue
            unknown = codes - _KNOWN_CODES
            if unknown:
                problems.append(
                    f"{path}:{lineno}: unknown rule id(s) in slimlint "
                    f"pragma: {', '.join(sorted(unknown))}")
            codes -= unknown
            if kind == "ignore-file":
                file_sup |= codes
            else:
                line_sup.setdefault(lineno, set()).update(codes)
    return line_sup, file_sup, problems


def _suppressed_lines(node_lines: tuple[int, int],
                      line_sup: dict[int, set[str]], code: str) -> bool:
    lo, hi = node_lines
    for lineno in (lo, hi):
        if code in line_sup.get(lineno, ()):
            return True
    return False


def lint_source(source: str, path: str = "<string>",
                package: str | None = None, *,
                is_test: bool = False, is_src: bool = True,
                select: set[str] | None = None,
                result: LintResult | None = None) -> LintResult:
    """Lint one in-memory module (the unit-test entry point)."""
    res = result if result is not None else LintResult()
    res.files_checked += 1
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        res.errors.append(f"{path}:{exc.lineno or 0}: syntax error: "
                          f"{exc.msg}")
        return res
    ctx = ModuleContext(path=path, package=package,
                        is_test=is_test, is_src=is_src)
    line_sup, file_sup, problems = _parse_pragmas(source, path=path)
    res.errors.extend(problems)
    _collect(tree, ctx, source, line_sup, file_sup, select, res)
    return res


def _collect(tree: ast.Module, ctx: ModuleContext, source: str,
             line_sup: dict[int, set[str]], file_sup: set[str],
             select: set[str] | None, res: LintResult) -> None:
    # map findings back to nodes via (line, col) is lossy; instead run
    # rules and use each finding's own line plus the node end line when
    # the rule recorded a multi-line node.  The pragma contract is: the
    # pragma sits on the finding's anchor line or the statement's last
    # line, which rules report via lineno of the offending node.
    end_lines = _end_line_index(tree)
    for f in run_rules(tree, ctx, select):
        if f.code in file_sup:
            res.suppressed += 1
            continue
        node_end = end_lines.get((f.line, f.col), f.line)
        if _suppressed_lines((f.line, node_end), line_sup, f.code):
            res.suppressed += 1
            continue
        res.findings.append(f)


def _end_line_index(tree: ast.Module) -> dict[tuple[int, int], int]:
    """(lineno, col) -> end_lineno for every node, for pragma matching."""
    index: dict[tuple[int, int], int] = {}
    for node in ast.walk(tree):
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is not None and end is not None:
            key = (lineno, node.col_offset)
            index[key] = max(index.get(key, end), end)
    return index


def lint_file(path: Path, root: Path | None = None,
              select: set[str] | None = None,
              result: LintResult | None = None) -> LintResult:
    """Lint one file on disk."""
    res = result if result is not None else LintResult()
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        res.errors.append(f"{path}: unreadable: {exc}")
        return res
    display = str(path)
    if root is not None:
        try:
            display = str(path.relative_to(root))
        except ValueError:
            pass
    ctx = _infer_context(path.resolve(), display)
    res.files_checked += 1
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        res.errors.append(f"{display}:{exc.lineno or 0}: syntax error: "
                          f"{exc.msg}")
        return res
    line_sup, file_sup, problems = _parse_pragmas(source, path=display)
    res.errors.extend(problems)
    _collect(tree, ctx, source, line_sup, file_sup, select, res)
    return res


def lint_paths(paths: list[str], *, select: set[str] | None = None,
               root: Path | None = None) -> LintResult:
    """Lint files and/or directory trees; directories recurse over .py."""
    res = LintResult()
    base = root if root is not None else Path.cwd()
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files = sorted(p.rglob("*.py"))
        elif p.is_file():
            files = [p]
        else:
            res.errors.append(f"{raw}: no such file or directory")
            continue
        for f in files:
            rp = f.resolve()
            if rp in seen:
                continue
            seen.add(rp)
            lint_file(f, root=base, select=select, result=res)
    res.findings.sort(key=lambda f: (f.file, f.line, f.col, f.code))
    return res
