"""repro.analysis.flow — slimflow: whole-program dataflow analysis.

slimlint (SLIM001-009) judges one module at a time; slimflow builds a
project-wide call graph plus per-function CFGs that model simulator
generators (every ``yield`` is a preemption point) and lock regions,
and checks the three invariants that only make sense whole-program:

* **SLIM010** yield-interleaving races on shared attribute state,
* **SLIM011** RNG seed provenance back to the run's seed root,
* **SLIM012** durability protocol on the imdb/net ack path.

Entry points: ``python -m repro.analysis flow`` (CLI with baseline
drift detection and a digest-keyed fact cache), or
:func:`analyze_paths` / :func:`analyze_sources` from code and tests.
"""

from repro.analysis.flow.baseline import (
    BaselineDiff,
    diff_against,
    fingerprints,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.driver import analyze_paths, analyze_project, analyze_sources
from repro.analysis.flow.project import (
    FunctionFacts,
    ModuleFacts,
    Project,
    extract_module,
    load_project,
)
from repro.analysis.flow.rules import FLOW_CODES, FLOW_RULES, FlowFinding

__all__ = [
    "FLOW_CODES",
    "FLOW_RULES",
    "BaselineDiff",
    "CallGraph",
    "FlowFinding",
    "FunctionFacts",
    "ModuleFacts",
    "Project",
    "analyze_paths",
    "analyze_project",
    "analyze_sources",
    "build_callgraph",
    "diff_against",
    "extract_module",
    "fingerprints",
    "load_baseline",
    "load_project",
    "write_baseline",
]
