"""slimflow orchestration: extract → call graph → rules → pragmas.

Two entry points mirror slimlint's: :func:`analyze_paths` for trees on
disk (with the digest cache) and :func:`analyze_sources` for in-memory
module sets — the unit-test surface, which is why it takes a mapping
of display paths to sources: whole-program rules need several modules
to mean anything.

Findings reuse :class:`~repro.analysis.linter.LintResult` so the
existing renderers apply, and they respect the same ``# slimlint:
ignore[SLIM010]`` pragmas (rule-scoped suppression with the intent
documented inline); the baseline layer is applied by the CLI on top.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.project import Project, extract_module, load_project
from repro.analysis.flow.protocol import check_protocol
from repro.analysis.flow.races import check_races
from repro.analysis.flow.rules import FLOW_CODES
from repro.analysis.flow.taint import check_taint
from repro.analysis.linter import LintResult, _parse_pragmas

__all__ = ["analyze_project", "analyze_paths", "analyze_sources"]

_CHECKS = {
    "SLIM010": check_races,
    "SLIM011": check_taint,
    "SLIM012": check_protocol,
}


def analyze_project(project: Project, *, select: set[str] | None = None,
                    sources: dict[str, str] | None = None,
                    src_root: Path | None = None) -> LintResult:
    """Run the whole-program rules over extracted facts.

    ``sources`` maps display paths to source text for pragma filtering;
    files missing from it are read from disk, resolving relative
    display paths against ``src_root`` (best-effort — a file that
    vanished mid-run simply keeps its findings).
    """
    res = LintResult(files_checked=project.files_checked,
                     errors=list(project.errors))
    graph: CallGraph = build_callgraph(project)
    findings = []
    for code, check in _CHECKS.items():
        if select is None or code in select:
            findings.extend(check(graph))
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.code))

    pragmas: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    for f in findings:
        if f.file not in pragmas:
            src = (sources or {}).get(f.file)
            if src is None:
                p = Path(f.file)
                if not p.is_absolute() and src_root is not None:
                    p = src_root / p
                try:
                    src = p.read_text(encoding="utf-8")
                except OSError:
                    src = ""
            line_sup, file_sup, problems = _parse_pragmas(src, path=f.file)
            # pragma-syntax problems are already reported by slimlint;
            # re-reporting them here would double up in CI logs
            del problems
            pragmas[f.file] = (line_sup, file_sup)
        line_sup, file_sup = pragmas[f.file]
        if f.code in file_sup or f.code in line_sup.get(f.line, ()):
            res.suppressed += 1
        else:
            res.findings.append(f)
    return res


def analyze_paths(paths: list[str], *, root: Path | None = None,
                  cache_dir: Path | None = None,
                  select: set[str] | None = None) -> LintResult:
    """Analyze files/trees on disk (the CLI entry point)."""
    project = load_project(paths, root=root, cache_dir=cache_dir)
    return analyze_project(project, select=select, src_root=root)


def analyze_sources(sources: dict[str, str], *,
                    select: set[str] | None = None) -> LintResult:
    """Analyze an in-memory module set, keyed by display path (e.g.
    ``{"src/repro/imdb/fake.py": "..."}`` — the path decides the
    module's dotted name and package scope)."""
    project = Project()
    for display, source in sources.items():
        project.files_checked += 1
        try:
            project.modules.append(extract_module(source, display))
        except SyntaxError as exc:
            project.errors.append(
                f"{display}:{exc.lineno or 0}: syntax error: {exc.msg}")
    return analyze_project(project, select=select, sources=sources)


def validate_select(select: set[str]) -> set[str]:
    """Reject rule codes slimflow does not know."""
    return select - FLOW_CODES
