"""SLIM012 — durability-protocol checking on the ack path.

The contract the crash matrix (PR 5) polices dynamically: a reply the
client can observe must not promise more durability than the WAL has
delivered. Statically: every write-ack emission site in ``repro.imdb``
/ ``repro.net`` (an ``encode("OK")`` RESP ack, or the value-return of a
WAL-staging ``execute`` generator) must be

* CFG-dominated by a direct durability await (``ensure_durable`` /
  ``flush_now``), or
* CFG-dominated by a call into a function that itself *handles the
  durability decision* (transitively awaits a gate, or is explicitly
  tagged) — the dispatcher that acks after ``yield from
  backend.execute(op)`` is fine because the backend decides, or
* explicitly tagged ``# slimflow: relaxed-durability`` on the ack line
  or the enclosing ``def`` — the documented escape hatch for
  Periodical-Log's everysec window, where losing the last second of
  acked writes is the configured contract, not a bug.
"""

from __future__ import annotations

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import FunctionFacts
from repro.analysis.flow.rules import FlowFinding

__all__ = ["check_protocol"]

#: packages whose ack paths are in scope for SLIM012
_SCOPE = frozenset({"imdb", "net"})

_KIND_LABEL = {
    "resp-ok": 'write ack encode("OK")',
    "execute-return": "write-command result return",
}


class _Durability:
    """Memoized "does calling this function settle the durability
    decision?" — true only when it awaits a gate in its *own* body, is
    tagged relaxed on its ``def``, or is itself an ack emitter whose
    every ack site checks out (the backend-delegation idiom: the
    dispatcher that acks after ``yield from backend.execute(op)`` is
    covered because the backend's own ack discipline is). Deliberately
    **not** a blanket transitive closure over all call edges — a
    conditional snapshot trigger three calls away must not absolve a
    write ack. Cycles resolve to False."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.memo: dict[str, bool] = {}
        self.active: set[str] = set()

    def handles(self, f: FunctionFacts) -> bool:
        if f.ref in self.memo:
            return self.memo[f.ref]
        if f.ref in self.active:
            return False
        if f.calls_gates or f.relaxed_def:
            self.memo[f.ref] = True
            return True
        if not f.acks:
            self.memo[f.ref] = False
            return False
        self.active.add(f.ref)
        try:
            out = all(self.ack_ok(f, ack) for ack in f.acks)
        finally:
            self.active.discard(f.ref)
        self.memo[f.ref] = out
        return out

    def ack_ok(self, f: FunctionFacts, ack: dict) -> bool:
        if ack["gated"] or ack["relaxed"]:
            return True
        return any(
            self.handles(t)
            for name in ack["dom_calls"]
            for t in self.graph.resolve(name, cls=f.cls, recv="self")
        )


def check_protocol(graph: CallGraph) -> list[FlowFinding]:
    dur = _Durability(graph)
    findings: list[FlowFinding] = []
    for f in graph.functions:
        if f.package not in _SCOPE or not f.acks:
            continue
        for i, ack in enumerate(f.acks):
            if dur.ack_ok(f, ack):
                continue
            label = _KIND_LABEL.get(ack["kind"], ack["kind"])
            msg = (
                f"{label} in {f.qualname} is not dominated by a WAL "
                f"durability await (ensure_durable/flush_now) or a call "
                f"that handles the durability decision; await the flush "
                f"before acking, or tag the relaxed contract with "
                f"`# slimflow: relaxed-durability — <reason>`"
            )
            findings.append(FlowFinding(
                code="SLIM012", message=msg, file=f.file,
                line=ack["line"], col=ack["col"],
                scope=f.ref, detail=f"ack:{f.qualname}:{ack['kind']}:{i}",
            ))
    return findings
