"""slimflow CLI.

Usage::

    python -m repro.analysis flow [paths ...]
    python -m repro.analysis flow src/repro --format sarif --output f.sarif
    python -m repro.analysis flow --write-baseline
    python -m repro.analysis flow --list-rules

Exit status mirrors slimlint — 0 clean, 1 findings, 2 usage error —
with one twist: when a baseline is in play (``--baseline FILE``, or
the committed ``slimflow_baseline.json`` auto-discovered in the
working directory), only findings *not in the baseline* fail the run.
The parsed-fact cache (``--cache DIR``, default ``.slimflow-cache``)
is keyed on file content digests, so warm runs skip every unchanged
file's parse; ``--cache off`` disables it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.flow.baseline import (
    DEFAULT_BASELINE,
    diff_against,
    write_baseline,
)
from repro.analysis.flow.driver import analyze_paths, validate_select
from repro.analysis.flow.rules import FLOW_CODES, FLOW_RULES
from repro.analysis.output import FORMATS


def flow_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis flow",
        description="slimflow: whole-program dataflow analysis for the "
                    "SlimIO tree (yield races, seed provenance, "
                    "durability protocol).",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=sorted(FORMATS),
                        default="text", help="output format")
    parser.add_argument("--output", default=None,
                        help="write the report to this file instead of "
                             "stdout")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all of SLIM010-012)")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--baseline", default=None,
                        help="baseline file for drift detection (default: "
                             f"{DEFAULT_BASELINE} if it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any committed baseline: every "
                             "finding fails the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="(re)write the baseline from this run's "
                             "findings and exit 0")
    parser.add_argument("--cache", default=".slimflow-cache",
                        help="fact-cache directory, or 'off' (default: "
                             ".slimflow-cache)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in FLOW_RULES:
            print(f"{rule.code}  {rule.name:<22} {rule.summary}")
        return 0

    select = set(FLOW_CODES)
    if args.select:
        select = {c.strip().upper() for c in args.select.split(",")
                  if c.strip()}
    if args.ignore:
        select -= {c.strip().upper() for c in args.ignore.split(",")
                   if c.strip()}
    unknown = validate_select(select)
    if unknown:
        print(f"unknown rule code(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            print("nothing to analyze (no paths given and no src/repro "
                  "here)", file=sys.stderr)
            return 2
        paths = [str(default)]

    cache_dir = None if args.cache == "off" else Path(args.cache)
    result = analyze_paths(paths, cache_dir=cache_dir, select=select)

    baseline: Path | None = None
    if not args.no_baseline and not args.write_baseline:
        if args.baseline:
            baseline = Path(args.baseline)
            if not baseline.is_file():
                print(f"baseline not found: {baseline}", file=sys.stderr)
                return 2
        elif Path(DEFAULT_BASELINE).is_file():
            baseline = Path(DEFAULT_BASELINE)

    renderer = FORMATS[args.format]
    kwargs = {"tool": "slimflow"}
    if args.format == "sarif":
        kwargs["rules"] = FLOW_RULES
    report = renderer(result, **kwargs)

    footer: list[str] = []
    ok = result.ok
    if baseline is not None:
        try:
            diff = diff_against(result.findings, baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"unreadable baseline {baseline}: {exc}", file=sys.stderr)
            return 2
        ok = diff.clean and not result.errors
        footer.append(
            f"baseline {baseline}: {len(diff.new)} new, "
            f"{len(diff.unchanged)} baselined, "
            f"{len(diff.absolved)} absolved")
        for f in diff.new:
            footer.append(f"  NEW {f.render().splitlines()[0]}")
        if diff.absolved:
            footer.append("  (absolved entries linger in the baseline — "
                          "refresh it with --write-baseline)")

    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n", encoding="utf-8")
        print(f"(report written to {out})", file=sys.stderr)
    else:
        print(report)
    for line in footer:
        print(line)

    if args.write_baseline:
        target = Path(args.baseline) if args.baseline \
            else Path(DEFAULT_BASELINE)
        write_baseline(result.findings, target)
        print(f"baseline written: {target} "
              f"({len(result.findings)} findings)", file=sys.stderr)
        return 0 if not result.errors else 1
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - module is run via __main__
    sys.exit(flow_main())
