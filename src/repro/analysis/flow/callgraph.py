"""Whole-program call graph over extracted facts.

Resolution is *name-based* (duck typing is the repo's idiom: the
cluster router quacks like a server), refined by one heuristic — a
``self.f(...)`` call prefers a same-class method when one exists. That
over-approximates edges, which errs in the safe direction for every
client: race detection sees *more* sharing, the lock fixpoint proves
*less* protection only when an edge is genuinely ambiguous, and taint
resolution unions over all plausible callers.

Three whole-program facts are computed here:

* **roots** — the simulator process entry points (``env.process(f())``
  spawn targets), the threads of the static race model;
* **shared classes** — classes whose methods are reachable from two or
  more distinct roots; only their attribute state can interleave;
* **always_called_under_lock** — the greatest fixpoint of "every call
  edge into *f* either holds a lexical lock at the call site or comes
  from a function that itself is always called under a lock". This is
  what keeps the historical ``WalPath`` pattern quiet: the racy body
  lives in ``_flush_locked``, but its only caller (``flush``) invokes
  it inside ``_flush_lock`` — and what makes the check fire the moment
  that lock is stripped;
* **blocking** — does calling a generator transitively reach a bare
  ``yield`` (a real preemption)? ``yield from`` chains preempt only if
  their leaf does; unresolved callees are assumed blocking (again the
  conservative direction for race detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.flow.project import FunctionFacts, Project

__all__ = ["CallGraph", "build_callgraph"]


@dataclass
class CallGraph:
    functions: list[FunctionFacts]
    by_name: dict[str, list[FunctionFacts]] = field(default_factory=dict)
    by_ref: dict[str, FunctionFacts] = field(default_factory=dict)
    #: ref -> refs it may call (calls + yield-from + spawns)
    edges: dict[str, list[str]] = field(default_factory=dict)
    #: root function refs (spawned as simulator processes)
    roots: list[str] = field(default_factory=list)
    #: ref -> set of root refs it is reachable from
    reached_by: dict[str, set[str]] = field(default_factory=dict)
    #: class keys ("module.Class") reachable from >= 2 roots
    shared_classes: set[str] = field(default_factory=set)
    always_under_lock: set[str] = field(default_factory=set)
    blocking: set[str] = field(default_factory=set)

    # ------------------------------------------------------------ queries
    def resolve(self, name: str, *, cls: str = "",
                recv: str = "") -> list[FunctionFacts]:
        """All functions a call to ``name`` may reach; ``self.name(...)``
        narrows to the caller's class when that class defines it."""
        cands = self.by_name.get(name, [])
        if recv == "self" and cls:
            own = [f for f in cands if f.cls == cls]
            if own:
                return own
        return cands

    def class_key(self, f: FunctionFacts) -> str:
        return f"{f.module}.{f.cls}" if f.cls else ""

    def is_shared(self, f: FunctionFacts) -> bool:
        return self.class_key(f) in self.shared_classes

    def is_blocking_yield(self, f: FunctionFacts,
                          callees: list[str]) -> bool:
        """Does a ``yield``/``yield from`` at this point preempt? Bare
        yields (empty callee list) always do."""
        if not callees:
            return True
        for name in callees:
            targets = self.resolve(name, cls=f.cls, recv="self")
            if not targets:
                return True  # unresolved: assume it parks the process
            if any(t.ref in self.blocking for t in targets):
                return True
        return False


def build_callgraph(project: Project) -> CallGraph:
    g = CallGraph(functions=project.functions())
    for f in g.functions:
        g.by_name.setdefault(f.name, []).append(f)
        g.by_ref[f.ref] = f

    # ---- edges (call sites + yield-from callees + spawn targets)
    for f in g.functions:
        out: list[str] = []
        names = [(c["name"], c.get("recv", "")) for c in f.calls]
        names.extend((n, "self") for n in f.yield_callees)
        names.extend((s["name"], "self" if s["cls"] else "")
                     for s in f.spawns)
        seen: set[str] = set()
        for name, recv in names:
            for t in g.resolve(name, cls=f.cls, recv=recv):
                if t.ref not in seen:
                    seen.add(t.ref)
                    out.append(t.ref)
        g.edges[f.ref] = out

    # ---- roots: every distinct spawn-target function
    root_set: set[str] = set()
    for f in g.functions:
        for s in f.spawns:
            for t in g.resolve(s["name"], cls=s["cls"] or f.cls,
                               recv="self" if s["cls"] else ""):
                root_set.add(t.ref)
    g.roots = sorted(root_set)

    # ---- per-root reachability and shared classes
    for root in g.roots:
        stack = [root]
        seen = {root}
        while stack:
            ref = stack.pop()
            g.reached_by.setdefault(ref, set()).add(root)
            for nxt in g.edges.get(ref, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
    counts: dict[str, set[str]] = {}
    for ref, roots in g.reached_by.items():
        f = g.by_ref[ref]
        key = g.class_key(f)
        if key:
            counts.setdefault(key, set()).update(roots)
    g.shared_classes = {key for key, roots in counts.items()
                        if len(roots) >= 2}

    # ---- always-called-under-lock: greatest fixpoint, demote-only
    incoming: dict[str, list[tuple[str, bool]]] = {f.ref: [] for f in g.functions}
    for f in g.functions:
        # a ``yield from self.f(...)`` delegation shows up in f.calls
        # too (the callee expression is a call site), so call edges
        # already cover it
        for c in f.calls:
            for t in g.resolve(c["name"], cls=f.cls, recv=c.get("recv", "")):
                incoming[t.ref].append((f.ref, bool(c.get("locked"))))
    under = {ref for ref, edges in incoming.items() if edges}
    under -= root_set  # a spawned process starts with no lock held
    changed = True
    while changed:
        changed = False
        for ref in list(under):
            ok = all(locked or caller in under
                     for caller, locked in incoming[ref])
            if not ok:
                under.discard(ref)
                changed = True
    g.always_under_lock = under

    # ---- blocking: least fixpoint, promote-only
    blocking = {f.ref for f in g.functions if f.has_bare_yield}
    changed = True
    while changed:
        changed = False
        for f in g.functions:
            if f.ref in blocking or not f.yield_callees:
                continue
            for name in f.yield_callees:
                targets = g.resolve(name, cls=f.cls, recv="self")
                if not targets or any(t.ref in blocking for t in targets):
                    blocking.add(f.ref)
                    changed = True
                    break
    g.blocking = blocking
    return g
