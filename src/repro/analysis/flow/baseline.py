"""Baseline drift detection: CI fails only on *new* findings.

A whole-program analysis lands on a tree with history; the deal that
makes it adoptable is that the initial triaged findings are frozen in
a committed baseline, and only *drift* — a finding not in the baseline
— fails the build. Fingerprints deliberately exclude line numbers
(code|file|scope|detail, plus an occurrence index for same-identity
duplicates), so editing an unrelated part of a file does not churn the
baseline; moving the offending code to another file or function does,
which is the point — it *is* a new place to re-judge the finding.

Findings in the baseline that no longer occur are reported as
``absolved`` so the file can be re-written (``--write-baseline``) and
shrink toward empty, never silently rot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.rules import Finding

__all__ = ["BaselineDiff", "fingerprints", "diff_against",
           "load_baseline", "write_baseline", "DEFAULT_BASELINE"]

BASELINE_VERSION = 1
DEFAULT_BASELINE = "slimflow_baseline.json"


def _identity(f: Finding) -> str:
    scope = getattr(f, "scope", "")
    detail = getattr(f, "detail", "") or f.message
    return f"{f.code}|{f.file}|{scope}|{detail}"


def fingerprints(findings: list[Finding]) -> list[str]:
    """One stable fingerprint per finding (order-aligned)."""
    counts: dict[str, int] = {}
    out: list[str] = []
    for f in findings:
        ident = _identity(f)
        n = counts.get(ident, 0)
        counts[ident] = n + 1
        h = hashlib.sha256(f"{ident}#{n}".encode()).hexdigest()[:16]
        out.append(h)
    return out


@dataclass
class BaselineDiff:
    new: list[Finding] = field(default_factory=list)
    unchanged: list[Finding] = field(default_factory=list)
    #: baseline entries whose finding no longer occurs
    absolved: list[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new


def load_baseline(path: Path) -> set[str]:
    """Fingerprints recorded in a baseline file (raises on malformed)."""
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ValueError(f"{path}: not a slimflow baseline file")
    return {e["fingerprint"] for e in doc["findings"]}


def diff_against(findings: list[Finding], path: Path) -> BaselineDiff:
    doc = json.loads(path.read_text(encoding="utf-8"))
    entries = {e["fingerprint"]: e for e in doc.get("findings", [])}
    diff = BaselineDiff()
    seen: set[str] = set()
    for f, fp in zip(findings, fingerprints(findings)):
        if fp in entries:
            diff.unchanged.append(f)
            seen.add(fp)
        else:
            diff.new.append(f)
    diff.absolved = [e for fp, e in sorted(entries.items())
                     if fp not in seen]
    return diff


def write_baseline(findings: list[Finding], path: Path) -> None:
    entries = [
        {
            "fingerprint": fp,
            "code": f.code,
            "file": f.file,
            "scope": getattr(f, "scope", ""),
            "detail": getattr(f, "detail", ""),
            # informative only — never part of the fingerprint
            "line": f.line,
            "message": f.message,
        }
        for f, fp in zip(findings, fingerprints(findings))
    ]
    doc = {
        "version": BASELINE_VERSION,
        "tool": "slimflow",
        "findings": sorted(entries, key=lambda e: e["fingerprint"]),
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
