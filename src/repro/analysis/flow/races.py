"""SLIM010 — yield-interleaving race detection.

The per-function CFG pass (:func:`repro.analysis.flow.cfg
.find_race_candidates`) already found every read-…-yield-…-write
sequence on a ``self`` attribute with no common lexical lock and no
re-read between the yield and the write. This module applies the three
*whole-program* filters that separate a race from a single-threaded
update:

1. the attribute must belong to a **shared class** — one whose methods
   the call graph reaches from at least two simulator process roots
   (one process cannot race with itself);
2. the function must not be **always called under a lock** — the
   interprocedural fixpoint that recognises the ``WalPath.flush`` →
   ``_flush_locked`` idiom where the caller holds the lock;
3. the yield must actually **block**: a bare ``yield`` always parks
   the process, a ``yield from f(...)`` only if ``f`` transitively
   reaches a bare yield.

What survives is reported with the full read→yield→write trace so the
finding reads like the interleaving it predicts.
"""

from __future__ import annotations

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.rules import FlowFinding

__all__ = ["check_races"]


def check_races(graph: CallGraph) -> list[FlowFinding]:
    findings: list[FlowFinding] = []
    for f in graph.functions:
        if not f.races or not f.cls:
            continue
        if not graph.is_shared(f):
            continue  # only one process ever runs this class's methods
        if f.ref in graph.always_under_lock:
            continue  # every caller holds a lock across the call
        for c in f.races:
            if not graph.is_blocking_yield(f, list(c["yield_callees"])):
                continue  # the yield never actually preempts
            attr = c["attr"]
            msg = (
                f"possible yield-interleaving race on `self.{attr}` in "
                f"{f.qualname}: the value read at line {c['read_line']} "
                f"may be stale by the write at line {c['write_line']} — "
                f"the yield at line {c['yield_line']} lets a rival "
                f"process update `{attr}` in between; hold a lock across "
                f"the read-modify-write or re-read after the yield"
            )
            findings.append(FlowFinding(
                code="SLIM010", message=msg, file=f.file,
                line=c["write_line"], col=c["write_col"],
                scope=f.ref, detail=f"race:{f.qualname}:{attr}",
                trace=(
                    (f"read of self.{attr}", c["read_line"]),
                    ("preemption point (yield)", c["yield_line"]),
                    (f"write of self.{attr}", c["write_line"]),
                ),
            ))
    return findings
