"""slimflow rule catalogue: the whole-program rules SLIM010-012.

slimlint's SLIM001-009 are each decidable from one module's AST; the
three rules here are not — they need the project call graph and a
per-function control-flow graph:

* **SLIM010** — *yield-interleaving race*: a read-…-yield-…-write
  sequence on shared ``self`` attribute state (state of an object whose
  methods are reachable from more than one simulator process) without a
  dominating lock hold. Every ``yield`` in the cooperative simulator is
  a preemption point, so a value read before a yield and written back
  after it can clobber a rival process's interleaved update — the
  static form of the ``WalPath`` concurrent-flush race PR 3's runtime
  sanitizer caught dynamically.
* **SLIM011** — *seed provenance*: the seed argument of every
  ``random.Random(...)`` / ``np.random.default_rng(...)`` must trace
  back — through locals, attributes, and the call graph — to the run's
  seed root (a literal constant, or a parameter/attribute whose name
  contains ``seed``). Wall-derived or address-derived entropy
  (``hash()``, ``id()``, ``time.*``, ``os.urandom``, ``uuid``) breaks
  run-to-run reproducibility in ways SLIM003's single-call check cannot
  see across functions.
* **SLIM012** — *durability protocol*: in ``repro.imdb`` and
  ``repro.net``, every ack/reply emission site for a write command
  (an ``encode("OK")`` RESP ack, or the return of a WAL-staging
  ``execute``) must be dominated on the CFG by a WAL durability await
  (``ensure_durable`` / ``flush_now``), by a call into a function that
  itself handles the durability decision, or must carry an explicit
  ``# slimflow: relaxed-durability`` tag documenting the relaxed
  contract (Periodical-Log's everysec window).

The rule *descriptors* live here so the driver and the SARIF renderer
can list them without importing the analysis machinery; the checkers
themselves live in :mod:`races`, :mod:`taint`, and :mod:`protocol`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.rules import Finding, Rule

__all__ = [
    "FLOW_RULES",
    "FLOW_CODES",
    "FlowFinding",
    "RELAXED_TAG",
    "is_lockish",
    "is_seedish",
]


@dataclass(frozen=True)
class FlowFinding(Finding):
    """A whole-program finding.

    Beyond the location, it carries the *scope* (the module-qualified
    function it lives in) and a line-free *detail* — together the
    baseline fingerprint, stable across unrelated edits that merely
    shift line numbers — plus, for races, the read→yield→write *trace*
    rendered under the finding and exported as SARIF relatedLocations.
    """

    scope: str = ""
    detail: str = ""
    trace: tuple[tuple[str, int], ...] = ()

    def render(self) -> str:
        base = super().render()
        if not self.trace:
            return base
        steps = "\n".join(f"      {label} at {self.file}:{line}"
                          for label, line in self.trace)
        return f"{base}\n{steps}"

FLOW_RULES: tuple[Rule, ...] = (
    Rule("SLIM010", "yield-race",
         "no unlocked read-yield-write on shared attribute state", None),
    Rule("SLIM011", "seed-provenance",
         "every RNG seed must trace back to the run's seed root", None),
    Rule("SLIM012", "durability-protocol",
         "write acks must be dominated by a WAL durability await", None),
)

FLOW_CODES = {rule.code for rule in FLOW_RULES}

#: explicit relaxed-durability intent tag recognised by SLIM012 — put it
#: on the ack line (or the enclosing ``def``) with a reason:
#:   return result  # slimflow: relaxed-durability — everysec window
RELAXED_TAG = re.compile(r"#\s*slimflow:\s*relaxed-durability\b")

_LOCKISH = re.compile(r"(?:^|_)(?:lock|mutex|guard)s?$|_lock\b|lock$")


def is_lockish(name: str | None) -> bool:
    """Does an identifier name a lock? (``_sink_lock``, ``flush_lock``,
    ``lock``, ``mutex`` — the repo's locks are capacity-1 Resources and
    follow this convention; slimflow's lock-region detection is
    name-based, like most lock-order linters.)"""
    if not name:
        return False
    return bool(_LOCKISH.search(name.lower().lstrip("_")))


def is_seedish(name: str | None) -> bool:
    """Does an identifier carry seed material? (``seed``, ``base_seed``,
    ``seed0``…) Seed-named parameters and attributes are the trust
    anchor: they *are* the run's seed root at the analysis boundary."""
    return bool(name) and "seed" in name.lower()
