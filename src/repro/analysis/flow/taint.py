"""SLIM011 — seed-provenance taint through the call graph.

Extraction already evaluated each RNG construction site's seed
expression to one of four verdicts. ``ok`` and ``bad`` are final;
``params`` means "deterministic *if* these parameters are" and is
resolved here by walking every call site that can reach the function,
evaluating the argument each caller passes in that position (or the
parameter's default), and recursing when a caller in turn forwards its
own parameter. Memoized; cycles and never-called functions degrade to
``unknown`` — if the analyzer cannot see where the seed comes from,
neither can a reader, and the site is flagged.
"""

from __future__ import annotations

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import FunctionFacts, combine
from repro.analysis.flow.rules import FlowFinding, is_seedish

__all__ = ["check_taint"]

_UNKNOWN = {"v": "unknown", "why": "cannot trace to the seed root"}


class _Resolver:
    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.memo: dict[tuple[str, str], dict] = {}
        self.active: set[tuple[str, str]] = set()
        # pre-index call sites by callee name so resolution is not
        # quadratic in project size
        self.sites: dict[str, list[tuple[FunctionFacts, dict]]] = {}
        for f in graph.functions:
            for c in f.calls:
                self.sites.setdefault(c["name"], []).append((f, c))

    def param(self, f: FunctionFacts, name: str) -> dict:
        """Provenance of parameter ``name`` of ``f`` over all callers."""
        if is_seedish(name):
            return {"v": "ok"}
        key = (f.ref, name)
        if key in self.memo:
            return self.memo[key]
        if key in self.active:
            return {"v": "unknown", "why": f"recursive flow into '{name}'"}
        self.active.add(key)
        try:
            verdict = self._param_uncached(f, name)
        finally:
            self.active.discard(key)
        self.memo[key] = verdict
        return verdict

    def _param_uncached(self, f: FunctionFacts, name: str) -> dict:
        try:
            idx = f.params.index(name)
        except ValueError:
            return _UNKNOWN
        incoming: list[dict] = []
        for caller, site in self.sites.get(f.name, ()):  # name-based, like edges
            if f not in self.graph.resolve(site["name"], cls=caller.cls,
                                           recv=site.get("recv", "")):
                continue  # the self.-call narrowing chose someone else
            args = site.get("args")
            if args is None:
                return _UNKNOWN  # starred args: positions unknowable
            if idx < len(args):
                prov = args[idx]
            elif name in site.get("kwargs", {}):
                prov = site["kwargs"][name]
            elif name in f.param_defaults:
                prov = f.param_defaults[name]
            else:
                prov = _UNKNOWN
            incoming.append(self.resolve(caller, prov))
        if not incoming:
            if name in f.param_defaults:
                return self.resolve(f, f.param_defaults[name])
            return {"v": "unknown",
                    "why": f"no caller found to supply '{name}'"}
        return combine(*incoming)

    def resolve(self, f: FunctionFacts, prov: dict) -> dict:
        """Collapse a ``params`` verdict in ``f``'s frame to a final one."""
        if prov["v"] != "params":
            return prov
        return combine(*(self.param(f, p) for p in prov["params"]))


def check_taint(graph: CallGraph) -> list[FlowFinding]:
    res = _Resolver(graph)
    findings: list[FlowFinding] = []
    for f in graph.functions:
        for i, site in enumerate(f.rngs):
            verdict = res.resolve(f, site["prov"])
            if verdict["v"] == "ok":
                continue
            why = verdict.get("why", "cannot trace to the seed root")
            msg = (
                f"RNG seed for {site['ctor']}(...) in {f.qualname} does "
                f"not trace back to the run's seed root: {why} — derive "
                f"it from a seed-named parameter/attribute or a constant"
            )
            findings.append(FlowFinding(
                code="SLIM011", message=msg, file=f.file,
                line=site["line"], col=site["col"],
                scope=f.ref,
                detail=f"taint:{f.qualname}:{site['ctor']}:{i}",
            ))
    return findings
