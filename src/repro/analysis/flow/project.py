"""Per-file fact extraction for slimflow, with a digest-keyed cache.

slimflow runs in two phases. Phase one (this module) parses each file
once and boils every function down to a small, *JSON-serializable*
:class:`FunctionFacts` record: its call sites (with lexical lock state
and per-argument seed provenance), its simulator spawn sites, its
read-yield-write race candidates (from :mod:`cfg`), its RNG
construction sites, and its durability ack sites. Phase two (callgraph
+ the rule checkers) is pure fact-joining and never touches an AST —
which is what makes the cache sound: facts are keyed on the file's
content digest, so an unchanged file costs one hash, not a parse.

Nothing here decides whether anything is a *finding*; candidates are
over-approximations that the whole-program phase filters (a race
candidate in a function only ever called under its caller's lock is
not a race; a ``params`` seed provenance is resolved through the call
graph).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.flow.cfg import Ev, build_cfg, dominating_calls, find_race_candidates
from repro.analysis.flow.rules import RELAXED_TAG, is_seedish

__all__ = [
    "FunctionFacts",
    "ModuleFacts",
    "Project",
    "extract_module",
    "load_project",
    "FACTS_VERSION",
]

#: bump when the extracted-fact shape or semantics change — the version
#: participates in the cache key, so stale caches self-invalidate.
FACTS_VERSION = 3

#: WAL durability awaits — the direct SLIM012 gates.
GATE_NAMES = frozenset({"ensure_durable", "flush_now"})

#: RNG constructors whose seed argument SLIM011 traces.
RNG_NAMES = frozenset({"Random", "default_rng", "RandomState"})

#: calls whose result is entropy that varies run-to-run — seed poison.
_BAD_CALLS = frozenset({
    "hash", "id", "object", "urandom", "getpid", "getrandbits",
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "now", "utcnow", "uuid1", "uuid4", "token_bytes",
    "token_hex",
})

#: pure, deterministic transforms — provenance flows through their args
#: (and, for methods, their receiver).
_PURE_CALLS = frozenset({
    "crc32", "adler32", "from_bytes", "int", "abs", "min", "max",
    "round", "len", "repr", "str", "bytes", "encode", "ord", "sorted",
    "tuple", "sum", "divmod", "pow", "format", "join", "zlib",
})

_RANK = {"ok": 0, "params": 1, "unknown": 2, "bad": 3}


def combine(*provs: dict) -> dict:
    """Join provenance verdicts: ``bad > unknown > params > ok``."""
    worst = {"v": "ok"}
    params: set[str] = set()
    for p in provs:
        if p["v"] == "params":
            params.update(p.get("params", ()))
        if _RANK[p["v"]] > _RANK[worst["v"]]:
            worst = p
    if worst["v"] in ("ok", "params") and params:
        return {"v": "params", "params": sorted(params)}
    return worst


@dataclass
class FunctionFacts:
    """Everything phase two needs to know about one function."""

    qualname: str  # e.g. "WalManager.ensure_durable"
    module: str  # dotted, e.g. "repro.persist.wal"
    package: str  # repro sub-package, e.g. "persist"
    file: str  # display path for findings
    line: int
    name: str
    cls: str = ""  # nearest enclosing class ("" for module functions)
    params: list[str] = field(default_factory=list)  # sans self
    param_defaults: dict[str, dict] = field(default_factory=dict)
    is_generator: bool = False
    has_bare_yield: bool = False
    yield_callees: list[str] = field(default_factory=list)
    calls_gates: bool = False  # body awaits ensure_durable/flush_now
    relaxed_def: bool = False  # relaxed-durability tag on the def line
    spawns: list[dict] = field(default_factory=list)
    calls: list[dict] = field(default_factory=list)
    races: list[dict] = field(default_factory=list)
    rngs: list[dict] = field(default_factory=list)
    acks: list[dict] = field(default_factory=list)

    @property
    def ref(self) -> str:
        return f"{self.module}.{self.qualname}"

    def to_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, d: dict) -> FunctionFacts:
        return cls(**d)


@dataclass
class ModuleFacts:
    module: str
    package: str
    file: str
    functions: list[FunctionFacts] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "version": FACTS_VERSION,
            "module": self.module,
            "package": self.package,
            "file": self.file,
            "functions": [f.to_dict() for f in self.functions],
        }

    @classmethod
    def from_dict(cls, d: dict) -> ModuleFacts:
        return cls(
            module=d["module"], package=d["package"], file=d["file"],
            functions=[FunctionFacts.from_dict(f) for f in d["functions"]],
        )


# --------------------------------------------------------------------------
# seed provenance of one expression
# --------------------------------------------------------------------------

class _Provenance:
    """Evaluate where an expression's value ultimately comes from.

    Verdicts: ``ok`` (a literal, or a seed-named parameter/attribute —
    the trust anchor), ``bad`` (wall/address entropy), ``params``
    (depends on the listed non-seed parameters; the call graph resolves
    those from every caller), ``unknown`` (cannot trace).
    """

    def __init__(self, params: list[str], assigns: dict[str, list[ast.expr]]):
        self.params = set(params)
        self.assigns = assigns
        self._active: set[str] = set()  # recursion guard for locals

    def of(self, node: ast.expr | None) -> dict:
        if node is None:
            return {"v": "unknown", "why": "missing seed argument"}
        if isinstance(node, ast.Constant):
            return {"v": "ok"}
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return combine(*(self.of(e) for e in node.elts)) \
                if node.elts else {"v": "ok"}
        if isinstance(node, ast.Name):
            return self._name(node.id)
        if isinstance(node, ast.Attribute):
            if is_seedish(node.attr):
                return {"v": "ok"}
            return {"v": "unknown",
                    "why": f"attribute .{node.attr} is not seed-derived"}
        if isinstance(node, ast.BinOp):
            return combine(self.of(node.left), self.of(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.of(node.operand)
        if isinstance(node, ast.BoolOp):
            return combine(*(self.of(v) for v in node.values))
        if isinstance(node, ast.IfExp):
            return combine(self.of(node.body), self.of(node.orelse))
        if isinstance(node, ast.Compare):
            return {"v": "ok"}  # booleans carry no entropy worth tracing
        if isinstance(node, ast.Subscript):
            return self.of(node.value)
        if isinstance(node, ast.Starred):
            return self.of(node.value)
        if isinstance(node, ast.JoinedStr):
            return combine(*(self.of(v.value) for v in node.values
                             if isinstance(v, ast.FormattedValue))) \
                if node.values else {"v": "ok"}
        if isinstance(node, ast.Call):
            return self._call(node)
        return {"v": "unknown", "why": f"opaque {type(node).__name__}"}

    def _name(self, ident: str) -> dict:
        if is_seedish(ident):
            return {"v": "ok"}
        if ident in self._active:
            return {"v": "unknown", "why": f"cyclic local '{ident}'"}
        if ident in self.assigns:
            self._active.add(ident)
            try:
                return combine(*(self.of(v) for v in self.assigns[ident]))
            finally:
                self._active.discard(ident)
        if ident in self.params:
            return {"v": "params", "params": [ident]}
        if ident.isupper():
            return {"v": "ok"}  # module constant by convention
        return {"v": "unknown", "why": f"untraceable name '{ident}'"}

    def _call(self, node: ast.Call) -> dict:
        name = node.func.attr if isinstance(node.func, ast.Attribute) \
            else (node.func.id if isinstance(node.func, ast.Name) else "")
        if name in _BAD_CALLS:
            return {"v": "bad",
                    "why": f"{name}() varies across runs/processes"}
        if name in _PURE_CALLS:
            parts = [self.of(a) for a in node.args]
            parts.extend(self.of(kw.value) for kw in node.keywords)
            if isinstance(node.func, ast.Attribute):
                parts.append(self.of(node.func.value))
            return combine(*parts) if parts else {"v": "ok"}
        return {"v": "unknown", "why": f"opaque call {name or '?'}()"}


# --------------------------------------------------------------------------
# per-function extraction
# --------------------------------------------------------------------------

def _own_statements(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    """Walk a function's AST, excluding nested function/class scopes."""
    work: list[ast.AST] = list(fn.body)
    while work:
        node = work.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef, ast.Lambda)):
                work.append(child)


def _terminal(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _terminal(node.func)
    return ""


def _has_tag(lines: list[str], lineno: int) -> bool:
    return 1 <= lineno <= len(lines) and bool(RELAXED_TAG.search(lines[lineno - 1]))


def _extract_function(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                      qualname: str, cls: str, module: str, package: str,
                      display: str, lines: list[str]) -> FunctionFacts:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    facts = FunctionFacts(
        qualname=qualname, module=module, package=package, file=display,
        line=fn.lineno, name=fn.name, cls=cls, params=names,
        relaxed_def=_has_tag(lines, fn.lineno),
    )

    # ---- local assignment map (flow-insensitive) + generator-ness
    assigns: dict[str, list[ast.expr]] = {}
    ok_acks: list[tuple[int, int]] = []  # (line, col) of encode("OK") calls
    rng_calls: list[ast.Call] = []
    for node in _own_statements(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            facts.is_generator = True
        elif isinstance(node, ast.Assign) and node.value is not None:
            for t in node.targets:
                if isinstance(t, ast.Name):
                    assigns.setdefault(t.id, []).append(node.value)
        elif isinstance(node, ast.Call):
            name = _terminal(node.func)
            if name == "encode" and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and node.args[0].value == "OK":
                ok_acks.append((node.lineno, node.col_offset))
            elif name in RNG_NAMES:
                rng_calls.append(node)
            elif name in GATE_NAMES:
                facts.calls_gates = True
            elif name == "process":
                recv = ""
                if isinstance(node.func, ast.Attribute):
                    recv = _terminal(node.func.value)
                if recv.lstrip("_").startswith("env") and node.args:
                    target = node.args[0]
                    tname = _terminal(target)
                    if tname:
                        hint = ""
                        t = target.func if isinstance(target, ast.Call) \
                            else target
                        if isinstance(t, ast.Attribute) \
                                and isinstance(t.value, ast.Name) \
                                and t.value.id == "self":
                            hint = cls
                        facts.spawns.append({"name": tname, "cls": hint})

    prov = _Provenance(names, assigns)

    # ---- parameter defaults feed provenance for short call sites
    pos = args.posonlyargs + args.args
    defaults = args.defaults
    for a, d in zip(pos[len(pos) - len(defaults):], defaults):
        facts.param_defaults[a.arg] = prov.of(d)
    for a, d in zip(args.kwonlyargs, args.kw_defaults):
        if d is not None:
            facts.param_defaults[a.arg] = prov.of(d)

    # ---- RNG seed provenance (SLIM011 raw material)
    for call in rng_calls:
        seed_arg: ast.expr | None = call.args[0] if call.args else None
        if seed_arg is None:
            for kw in call.keywords:
                if kw.arg in ("seed", "x"):
                    seed_arg = kw.value
                    break
        if seed_arg is None:
            verdict = {"v": "bad", "why": "constructed with no seed"}
        else:
            verdict = prov.of(seed_arg)
        facts.rngs.append({
            "line": call.lineno, "col": call.col_offset,
            "ctor": _terminal(call.func), "prov": verdict,
        })

    # ---- CFG-derived facts: calls, yields, races, ack domination
    cfg = build_cfg(fn)
    call_nodes: dict[tuple[int, int, str], ast.Call] = {}
    for node in _own_statements(fn):
        if isinstance(node, ast.Call):
            call_nodes[(node.lineno, node.col_offset,
                        _terminal(node.func))] = node
    ack_events: list[tuple[str, Ev]] = []
    for blk in cfg.blocks:
        for ev in blk.events:
            if ev.kind == "yield":
                if ev.bare:
                    facts.has_bare_yield = True
                for c in ev.callees:
                    if c not in facts.yield_callees:
                        facts.yield_callees.append(c)
            elif ev.kind == "call":
                site = {"name": ev.name, "recv": ev.recv, "line": ev.line,
                        "locked": bool(ev.locks)}
                node = call_nodes.get((ev.line, ev.col, ev.name))
                if node is not None:
                    site["args"] = [prov.of(a) for a in node.args
                                    if not isinstance(a, ast.Starred)]
                    site["kwargs"] = {kw.arg: prov.of(kw.value)
                                      for kw in node.keywords if kw.arg}
                facts.calls.append(site)
                if ev.name == "encode" and (ev.line, ev.col) in ok_acks:
                    ack_events.append(("resp-ok", ev))
            elif ev.kind == "return" and fn.name == "execute" \
                    and facts.is_generator and cls:
                ack_events.append(("execute-return", ev))

    for kind, ev in ack_events:
        doms = dominating_calls(cfg, ev)
        facts.acks.append({
            "kind": kind, "line": ev.line, "col": ev.col,
            "relaxed": _has_tag(lines, ev.line) or facts.relaxed_def,
            "gated": any(d.name in GATE_NAMES for d in doms),
            "dom_calls": sorted({d.name for d in doms}),
        })

    for c in find_race_candidates(cfg):
        facts.races.append({
            "attr": c.attr, "read_line": c.read_line,
            "yield_line": c.yield_line, "write_line": c.write_line,
            "write_col": c.write_col,
            "yield_callees": list(c.yield_callees),
        })
    return facts


# --------------------------------------------------------------------------
# module + project loading
# --------------------------------------------------------------------------

def _module_name(path: Path) -> str:
    parts = list(path.parts)
    stem = [path.stem] if path.stem != "__init__" else []
    if "repro" in parts:
        i = parts.index("repro")
        return ".".join(parts[i:-1] + stem) or "repro"
    return ".".join(stem) or path.stem


def _package_of(module: str) -> str:
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


def extract_module(source: str, display: str = "<string>",
                   module: str | None = None) -> ModuleFacts:
    """Extract facts from one module's source (raises SyntaxError)."""
    tree = ast.parse(source, filename=display)
    mod = module if module is not None else _module_name(Path(display))
    facts = ModuleFacts(module=mod, package=_package_of(mod), file=display)
    lines = source.splitlines()

    def visit(body: list[ast.stmt], prefix: str, cls: str) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                q = f"{prefix}{node.name}"
                visit(node.body, f"{q}.", node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                q = f"{prefix}{node.name}"
                facts.functions.append(_extract_function(
                    node, q, cls, mod, facts.package, display, lines))
                visit(node.body, f"{q}.<locals>.", cls)

    visit(tree.body, "", "")
    return facts


@dataclass
class Project:
    """All extracted facts, ready for the whole-program phase."""

    modules: list[ModuleFacts] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0

    def functions(self) -> list[FunctionFacts]:
        return [f for m in self.modules for f in m.functions]


def _digest(data: bytes) -> str:
    h = hashlib.sha256()
    h.update(f"slimflow-facts-v{FACTS_VERSION}:".encode())
    h.update(data)
    return h.hexdigest()


def _discover(paths: list[str]) -> tuple[list[Path], list[str]]:
    files: list[Path] = []
    errors: list[str] = []
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            batch = sorted(p.rglob("*.py"))
        elif p.is_file():
            batch = [p]
        else:
            errors.append(f"{raw}: no such file or directory")
            continue
        for f in batch:
            rp = f.resolve()
            if rp not in seen:
                seen.add(rp)
                files.append(f)
    return files, errors


def load_project(paths: list[str], *, root: Path | None = None,
                 cache_dir: Path | None = None) -> Project:
    """Discover .py files under ``paths`` and extract facts for each,
    consulting/maintaining the digest-keyed JSON cache if given."""
    project = Project()
    files, project.errors = _discover(paths)
    base = root if root is not None else Path.cwd()
    if cache_dir is not None:
        cache_dir.mkdir(parents=True, exist_ok=True)
    for f in files:
        display = str(f)
        try:
            display = str(f.resolve().relative_to(base.resolve()))
        except ValueError:
            pass
        try:
            data = f.read_bytes()
        except OSError as exc:
            project.errors.append(f"{display}: unreadable: {exc}")
            continue
        project.files_checked += 1
        key = _digest(data + display.encode())
        entry = cache_dir / f"{key}.json" if cache_dir is not None else None
        if entry is not None and entry.is_file():
            try:
                cached = json.loads(entry.read_text(encoding="utf-8"))
                if cached.get("version") == FACTS_VERSION:
                    project.modules.append(ModuleFacts.from_dict(cached))
                    project.cache_hits += 1
                    continue
            except (OSError, ValueError, KeyError, TypeError):
                pass  # corrupt cache entry: fall through and rebuild
        try:
            source = data.decode("utf-8")
            mod = extract_module(source, display)
        except SyntaxError as exc:
            project.errors.append(
                f"{display}:{exc.lineno or 0}: syntax error: {exc.msg}")
            continue
        except UnicodeDecodeError as exc:
            project.errors.append(f"{display}: not utf-8: {exc}")
            continue
        project.modules.append(mod)
        if entry is not None:
            try:
                entry.write_text(json.dumps(mod.to_dict()), encoding="utf-8")
            except OSError:
                pass  # read-only checkout: cache is best-effort
    return project
