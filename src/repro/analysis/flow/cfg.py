"""Per-function control-flow graphs for the slimflow rules.

A function body becomes a graph of :class:`Block`\\ s, each holding an
ordered list of :class:`Ev` events — the only program points the rules
care about:

* ``read`` / ``write`` — loads/stores of first-level ``self``
  attributes (``self.x``, ``self.x[i] = …``, ``self.x.append(…)``);
  mutating method calls on an attribute count as read+write, because a
  ``list.append`` interleaved with a rival's ``clear`` is every bit as
  racy as an assignment.
* ``yield`` — a simulator preemption point. A bare ``yield`` (waiting
  on an event) always preempts; a ``yield from f(...)`` preempts only
  if ``f`` (transitively) blocks, which the call graph decides later,
  so the event records its candidate callee names.
* ``call`` — every call site, with its receiver kind and whether a
  lock is lexically held, feeding the call graph.

Lock regions are *lexical*: a ``with <lock>:`` body, or the ``try:``
body of the repo's acquire idiom ::

    req = self._sink_lock.request()
    yield req
    try:
        ...                      # <- the lock region
    finally:
        self._sink_lock.release(req)

(the ``finally`` naming a ``<lockish>.release`` is the signature).
Every event carries the frozen set of region ids active at its program
point; two events are *co-locked* when the sets intersect. Lock
identity is name-based (:func:`~repro.analysis.flow.rules.is_lockish`),
like most lock-discipline linters.

The two graph algorithms the rules need also live here:
:func:`find_race_candidates` (the read-…-yield-…-write path search,
with the loop-back re-read refinement that keeps re-check idioms like
``while self._outstanding >= w: yield ev`` quiet) and
:func:`dominating_calls` (which call sites lie on *every* path from
entry to an ack, for the durability protocol).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.flow.rules import is_lockish

__all__ = [
    "Ev",
    "Block",
    "Cfg",
    "build_cfg",
    "find_race_candidates",
    "dominating_calls",
    "RaceCandidate",
]

#: method names whose call on ``self.x`` mutates the attribute's object
_MUTATORS = {
    "append", "extend", "clear", "pop", "popleft", "appendleft", "add",
    "remove", "discard", "insert", "update", "setdefault", "sort",
}


@dataclass(frozen=True)
class Ev:
    """One rule-relevant program point."""

    kind: str  # "read" | "write" | "yield" | "call"
    line: int
    col: int
    attr: str = ""  # read/write: the self attribute
    name: str = ""  # call: terminal callee name
    recv: str = ""  # call: receiver ("", "self", or terminal name)
    callees: tuple[str, ...] = ()  # yield: yield-from callee names
    bare: bool = False  # yield: a plain ``yield`` (always preempts)
    locks: frozenset[int] = frozenset()


@dataclass
class Block:
    idx: int
    events: list[Ev] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


@dataclass
class Cfg:
    blocks: list[Block]
    entry: int


def _terminal(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _terminal(node.func)
    return ""


def _self_attr(node: ast.expr) -> str | None:
    """``self.x`` -> ``x`` (first level only)."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


class _Builder:
    """Lower one function body to blocks of events."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.cur = self._new()
        self.entry = self.cur.idx
        self._locks: list[int] = []  # active lexical lock region ids
        self._next_region = 0
        self._loop: list[tuple[int, int]] = []  # (continue_to, break_join)
        self._breaks: list[list[int]] = []

    # ------------------------------------------------------------ plumbing
    def _new(self) -> Block:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b

    def _edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a].succs:
            self.blocks[a].succs.append(b)
            self.blocks[b].preds.append(a)

    def _start(self, *preds: int) -> Block:
        b = self._new()
        for p in preds:
            self._edge(p, b.idx)
        return b

    def _emit(self, kind: str, node: ast.AST, **kw) -> None:
        self.cur.events.append(Ev(
            kind,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            locks=frozenset(self._locks),
            **kw,
        ))

    # ------------------------------------------------------------ expressions
    def expr(self, node: ast.expr | None) -> None:
        """Emit events for one expression, roughly in evaluation order."""
        if node is None:
            return
        if isinstance(node, ast.Call):
            self.expr(node.func if not isinstance(node.func, ast.Attribute)
                      else node.func.value)
            for a in node.args:
                self.expr(a.value if isinstance(a, ast.Starred) else a)
            for kw in node.keywords:
                self.expr(kw.value)
            name = _terminal(node.func)
            recv = ""
            if isinstance(node.func, ast.Attribute):
                recv = _terminal(node.func.value) or ""
                # self.x.append(...): the call mutates self.x
                attr = _self_attr(node.func.value)
                if attr is not None and node.func.attr in _MUTATORS:
                    self._emit("read", node, attr=attr)
                    self._emit("write", node, attr=attr)
            if name:
                self._emit("call", node, name=name, recv=recv)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                self._emit("read", node, attr=attr)
            else:
                self.expr(node.value)
            return
        if isinstance(node, ast.Yield):
            self.expr(node.value)
            self._emit("yield", node, bare=True)
            return
        if isinstance(node, ast.YieldFrom):
            callee = ""
            if isinstance(node.value, ast.Call):
                callee = _terminal(node.value.func)
            self.expr(node.value)
            if callee:
                self._emit("yield", node, callees=(callee,))
            else:
                self._emit("yield", node, bare=True)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested scopes are their own functions
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)
            elif isinstance(child, ast.comprehension):
                self.expr(child.iter)
                for cond in child.ifs:
                    self.expr(cond)

    def _target(self, node: ast.expr) -> None:
        """Emit write events for one assignment target."""
        if isinstance(node, (ast.Tuple, ast.List)):
            for el in node.elts:
                self._target(el)
            return
        attr = _self_attr(node)
        if attr is not None:
            self._emit("write", node, attr=attr)
            return
        if isinstance(node, ast.Subscript):
            attr = _self_attr(node.value)
            self.expr(node.slice)
            if attr is not None:  # self.x[i] = v mutates self.x
                self._emit("read", node, attr=attr)
                self._emit("write", node, attr=attr)
            else:
                self.expr(node.value)
            return
        if isinstance(node, ast.Attribute):
            self.expr(node.value)  # a.b.c = v reads a.b
        # plain Name targets are locals — no event

    # ------------------------------------------------------------ statements
    def body(self, stmts: list[ast.stmt]) -> None:
        for s in stmts:
            self.stmt(s)

    def stmt(self, node: ast.stmt) -> None:  # noqa: PLR0912 - a lowering switch
        if isinstance(node, ast.Expr):
            self.expr(node.value)
        elif isinstance(node, ast.Assign):
            self.expr(node.value)
            for t in node.targets:
                self._target(t)
        elif isinstance(node, ast.AugAssign):
            self.expr(node.value)
            attr = _self_attr(node.target)
            if attr is not None:
                self._emit("read", node, attr=attr)
                self._emit("write", node, attr=attr)
            else:
                self._target(node.target)
        elif isinstance(node, ast.AnnAssign):
            self.expr(node.value)
            if node.value is not None:
                self._target(node.target)
        elif isinstance(node, ast.Return):
            self.expr(node.value)
            if node.value is not None:
                self._emit("return", node)  # SLIM012 ack anchor
            self.cur = self._new()  # fresh, unreachable until linked
        elif isinstance(node, ast.Raise):
            self.expr(node.exc)
            self.cur = self._new()
        elif isinstance(node, ast.If):
            self.expr(node.test)
            cond = self.cur.idx
            then = self._start(cond)
            self.cur = then
            self.body(node.body)
            then_end = self.cur.idx
            if node.orelse:
                els = self._start(cond)
                self.cur = els
                self.body(node.orelse)
                join = self._start(then_end, self.cur.idx)
            else:
                join = self._start(then_end, cond)
            self.cur = join
        elif isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            self._loop_stmt(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with_stmt(node)
        elif isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._try_stmt(node)
        elif isinstance(node, ast.Break):
            if self._breaks:
                self._breaks[-1].append(self.cur.idx)
            self.cur = self._new()
        elif isinstance(node, ast.Continue):
            if self._loop:
                self._edge(self.cur.idx, self._loop[-1][0])
            self.cur = self._new()
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes analyzed separately
        elif isinstance(node, (ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.expr(child)
        elif isinstance(node, ast.Match):
            self._match_stmt(node)
        # Import/Global/Pass/... : no events

    def _loop_stmt(self, node: ast.While | ast.For | ast.AsyncFor) -> None:
        test = self._start(self.cur.idx)
        self.cur = test
        if isinstance(node, ast.While):
            self.expr(node.test)
        else:
            self.expr(node.iter)
            self._target(node.target)
        test_idx = self.cur.idx  # test may have grown blocks (it cannot,
        # expressions never split blocks — kept for clarity)
        body = self._start(test_idx)
        self._loop.append((test.idx, -1))
        self._breaks.append([])
        self.cur = body
        self.body(node.body)
        self._edge(self.cur.idx, test.idx)  # back edge re-evaluates test
        self._loop.pop()
        breaks = self._breaks.pop()
        exit_blk = self._start(test_idx, *breaks)
        if node.orelse:
            self.cur = exit_blk
            self.body(node.orelse)
            exit_blk = self.cur
        self.cur = exit_blk

    def _with_stmt(self, node: ast.With | ast.AsyncWith) -> None:
        region = None
        for item in node.items:
            self.expr(item.context_expr)
            ctx = item.context_expr
            name = _terminal(ctx.func if isinstance(ctx, ast.Call) else ctx)
            if is_lockish(name):
                region = self._next_region
                self._next_region += 1
        if region is not None:
            self._locks.append(region)
        self.body(node.body)
        if region is not None:
            self._locks.remove(region)

    def _releases_lock(self, stmts: list[ast.stmt]) -> bool:
        for s in stmts:
            for n in ast.walk(s):
                if isinstance(n, ast.Call) \
                        and isinstance(n.func, ast.Attribute) \
                        and n.func.attr == "release" \
                        and is_lockish(_terminal(n.func.value)):
                    return True
        return False

    def _try_stmt(self, node: ast.Try) -> None:
        region = None
        if node.finalbody and self._releases_lock(node.finalbody):
            region = self._next_region
            self._next_region += 1
            self._locks.append(region)
        body = self._start(self.cur.idx)
        self.cur = body
        first_body = body.idx
        self.body(node.body)
        self.body(node.orelse)
        body_end = self.cur.idx
        body_blocks = range(first_body, len(self.blocks))
        handler_ends = []
        for handler in node.handlers:
            h = self._new()
            # any point in the try body may raise into the handler
            for bi in body_blocks:
                self._edge(bi, h.idx)
            self.cur = h
            self.body(handler.body)
            handler_ends.append(self.cur.idx)
        if region is not None:
            self._locks.remove(region)
        final = self._start(body_end, *handler_ends)
        self.cur = final
        self.body(node.finalbody)

    def _match_stmt(self, node: ast.Match) -> None:
        self.expr(node.subject)
        subj = self.cur.idx
        ends = []
        for case in node.cases:
            arm = self._start(subj)
            self.cur = arm
            if case.guard is not None:
                self.expr(case.guard)
            self.body(case.body)
            ends.append(self.cur.idx)
        self.cur = self._start(subj, *ends)


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Cfg:
    """Lower one function to its event CFG (unreachable blocks pruned)."""
    b = _Builder()
    b.body(fn.body)
    # prune events in blocks unreachable from entry (e.g. the
    # ``return; yield`` generator-parity idiom)
    seen = {b.entry}
    stack = [b.entry]
    while stack:
        for s in b.blocks[stack.pop()].succs:
            if s not in seen:
                seen.add(s)
                stack.append(s)
    for blk in b.blocks:
        if blk.idx not in seen:
            blk.events = []
            blk.succs = []
    return Cfg(blocks=b.blocks, entry=b.entry)


# --------------------------------------------------------------------------
# SLIM010: the read-…-yield-…-write path search
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RaceCandidate:
    """One potential yield-interleaving race, pending global filters."""

    attr: str
    read_line: int
    yield_line: int
    write_line: int
    write_col: int
    #: yield-from callee names that must block for the yield to preempt
    #: (empty tuple = a bare yield, always a preemption point)
    yield_callees: tuple[str, ...]


def _scan_back(events: list[Ev], start: int, attr: str):
    """Scan one block's events in reverse from ``start`` (exclusive)."""
    for i in range(start - 1, -1, -1):
        yield events[i]


def find_race_candidates(cfg: Cfg) -> list[RaceCandidate]:
    """All (read, yield, write) triples on an attribute where no lexical
    lock region covers both endpoints and no re-read of the attribute
    intervenes between the yield and the write.

    Phase 1 walks backward from each write, collecting yields reachable
    without crossing a read of the same attribute (a read in between
    means the writer re-checked after waking — the sanctioned idiom).
    Phase 2 walks further backward from each such yield, looking for a
    read whose lock set does not intersect the write's.
    """
    out: list[RaceCandidate] = []
    blocks = cfg.blocks
    for blk in blocks:
        for wi, w in enumerate(blk.events):
            if w.kind != "write":
                continue
            attr = w.attr
            # ---- phase 1: yields backward-reachable without a re-read
            yields: list[Ev] = []
            visited: set[int] = set()
            # (block idx, scan-from index); None index = from the end
            work: list[tuple[int, int]] = [(blk.idx, wi)]
            while work:
                bi, idx = work.pop()
                evs = blocks[bi].events
                blocked = False
                for ev in _scan_back(evs, idx, attr):
                    if ev.kind == "read" and ev.attr == attr:
                        blocked = True
                        break
                    if ev.kind == "yield":
                        yields.append(ev)
                        # keep scanning: an earlier yield in the same
                        # block is also a candidate preemption point
                if not blocked:
                    for p in blocks[bi].preds:
                        if p not in visited:
                            visited.add(p)
                            work.append((p, len(blocks[p].events)))
            if not yields:
                continue
            # prefer a bare yield (unconditional preemption)
            yields.sort(key=lambda e: (not e.bare, e.line))
            # ---- phase 2: a read backward-reachable from some yield,
            # not co-locked with the write
            for y in yields:
                read = _find_read_before(blocks, y, attr, w.locks)
                if read is not None:
                    out.append(RaceCandidate(
                        attr=attr,
                        read_line=read.line,
                        yield_line=y.line,
                        write_line=w.line,
                        write_col=w.col,
                        yield_callees=() if y.bare else y.callees,
                    ))
                    break
    # one candidate per (attr, write site)
    seen: set[tuple[str, int, int]] = set()
    uniq = []
    for c in out:
        key = (c.attr, c.write_line, c.write_col)
        if key not in seen:
            seen.add(key)
            uniq.append(c)
    return uniq


def _find_read_before(blocks: list[Block], y: Ev, attr: str,
                      write_locks: frozenset[int]) -> Ev | None:
    # locate the yield event's position(s) — an Ev may appear in one
    # block only, find it by identity
    for blk in blocks:
        for i, ev in enumerate(blk.events):
            if ev is y:
                return _read_bfs(blocks, blk.idx, i, attr, write_locks)
    return None


def _read_bfs(blocks: list[Block], bi: int, idx: int, attr: str,
              write_locks: frozenset[int]) -> Ev | None:
    visited: set[int] = set()
    work: list[tuple[int, int]] = [(bi, idx)]
    while work:
        b, i = work.pop()
        for ev in _scan_back(blocks[b].events, i, attr):
            if ev.kind == "read" and ev.attr == attr:
                if not (ev.locks & write_locks):
                    return ev
                # co-locked read: safe pair, but keep looking past it —
                # an earlier unlocked read still races
        for p in blocks[b].preds:
            if p not in visited:
                visited.add(p)
                work.append((p, len(blocks[p].events)))
    return None


# --------------------------------------------------------------------------
# SLIM012: dominating calls
# --------------------------------------------------------------------------

def dominating_calls(cfg: Cfg, target: Ev) -> list[Ev]:
    """Every ``call`` event that lies on *all* paths from entry to the
    target event (standard iterative dominator sets; the graphs are a
    few dozen blocks)."""
    blocks = cfg.blocks
    tblk = tidx = None
    for blk in blocks:
        for i, ev in enumerate(blk.events):
            if ev is target:
                tblk, tidx = blk.idx, i
                break
        if tblk is not None:
            break
    if tblk is None:
        return []
    n = len(blocks)
    full = set(range(n))
    dom: list[set[int]] = [full.copy() for _ in range(n)]
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for blk in blocks:
            if blk.idx == cfg.entry or not blk.preds:
                continue
            new = set.intersection(*(dom[p] for p in blk.preds)) | {blk.idx}
            if new != dom[blk.idx]:
                dom[blk.idx] = new
                changed = True
    out = [ev for ev in blocks[tblk].events[:tidx] if ev.kind == "call"]
    for d in dom[tblk]:
        if d != tblk:
            out.extend(ev for ev in blocks[d].events if ev.kind == "call")
    return out
