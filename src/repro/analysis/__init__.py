"""repro.analysis — slimcheck: static analysis + runtime I/O sanitizers.

Two halves, one purpose: the invariants that make WAF = 1.00 possible
are invisible to the type system, so we check them twice —

* **slimlint** (:mod:`repro.analysis.rules`,
  :mod:`repro.analysis.linter`, ``python -m repro.analysis``): an
  AST-based linter with per-module SLIM rules covering device-access
  discipline, PID hygiene, determinism, layering, metric naming, FTL
  encapsulation, FDP write tagging, and LBA state-machine ownership.
* **slimflow** (:mod:`repro.analysis.flow`,
  ``python -m repro.analysis flow``): the whole-program companion —
  call graph + per-function CFGs checking yield-interleaving races
  (SLIM010), RNG seed provenance (SLIM011), and the imdb/net
  durability ack protocol (SLIM012), with baseline drift detection.
* **runtime sanitizers** (:mod:`repro.analysis.sanitize`,
  :mod:`repro.analysis.forkcheck`): opt-in wrappers (engine flag
  ``sanitize=True``, bench ``--sanitize``) that validate every write
  at execution time against the region/PID its origin declared, plus
  a fork-snapshot race detector.
"""

from repro.analysis.flow import (
    FLOW_CODES,
    FLOW_RULES,
    FlowFinding,
    analyze_paths,
    analyze_sources,
)
from repro.analysis.linter import LintResult, lint_file, lint_paths, lint_source
from repro.analysis.rules import LAYER_RANKS, RULES, Finding
from repro.analysis.sanitize import (
    SanitizerError,
    SlimIOSanitizer,
)
from repro.analysis.forkcheck import ForkRaceDetector

__all__ = [
    "FLOW_CODES",
    "FLOW_RULES",
    "Finding",
    "FlowFinding",
    "ForkRaceDetector",
    "LAYER_RANKS",
    "LintResult",
    "RULES",
    "SanitizerError",
    "SlimIOSanitizer",
    "analyze_paths",
    "analyze_sources",
    "lint_file",
    "lint_paths",
    "lint_source",
]
