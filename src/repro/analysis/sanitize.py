"""Runtime I/O sanitizers: execution-time checks of the §4.2 contract.

slimlint (the static half of slimcheck) proves *code* discipline; the
sanitizers prove *data* discipline — that every command reaching the
device actually lands where its origin declared. Misplaced or
mis-tagged writes do not crash anything; they silently destroy the
WAF = 1.00 result, so the only way to notice is to check every command
in flight.

:class:`SanitizedDevice` wraps the device handle a
:class:`~repro.core.engine.SlimIOSystem` builds its rings on (a raw
:class:`~repro.nvme.NvmeDevice` or a per-shard
:class:`~repro.nvme.LbaPartition`; either way commands arrive in the
system's own LBA coordinates) and validates:

* **region containment** — metadata writes stay inside the two
  metadata pages, snapshot writes inside exactly the current *reserve*
  slot (never a published slot, never straddling slots), WAL writes
  inside the WAL region;
* **PID affinity** — every write carries a PID the system's
  :class:`~repro.core.placement.PlacementPolicy` declared for that
  region, the PID is within the device's stream range (an over-range
  PID falls back to stream 0 *silently* on real FDP drives), and
  ``fdp=True`` devices never see an undeclared PID;
* **WAL cursor monotonicity** — WAL writes advance one page past the
  previous write (with wrap at the region end) or rewrite the last
  partial tail page; anything else is a torn or misplaced append;
* **slot state machine** — promotion consumes a reserve slot that
  received at least one snapshot write since the last promotion, and
  the role invariants hold afterwards (exactly one reserve, no
  duplicate roles);
* **deallocate discipline** — the metadata region is never trimmed,
  and snapshot-region trims cover only the current reserve slot (the
  just-replaced snapshot after promotion).

Violations raise :class:`SanitizerError` (an ``AssertionError``
subclass, so test harnesses treat it as a failed invariant, not an
environmental error). Enable via ``SystemConfig(sanitize=True)``,
``build_slimio(sanitize=True)``, or ``python -m repro.bench
--sanitize``.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.core.lba import LbaSpaceManager, SnapshotSlots
from repro.core.placement import PlacementPolicy
from repro.nvme.commands import DeallocateCmd, NvmeCommand, WriteCmd
from repro.persist.snapshot import SnapshotKind

__all__ = ["SanitizerError", "SanitizedDevice", "SlimIOSanitizer"]


class SanitizerError(AssertionError):
    """An I/O invariant was violated at execution time."""


class SanitizedDevice:
    """Device proxy that validates every command before forwarding it.

    Exposes the same surface rings and recovery consume (``submit``,
    ``peek``, ``lba_size``, ...); everything not intercepted is
    delegated, so the wrapper is transparent to timing and data.
    """

    def __init__(self, inner, sanitizer: SlimIOSanitizer):
        self._inner = inner
        self._sanitizer = sanitizer

    def submit(self, cmd: NvmeCommand) -> Generator:
        san = self._sanitizer
        if isinstance(cmd, WriteCmd):
            san.check_write(cmd)
        elif isinstance(cmd, DeallocateCmd):
            san.check_deallocate(cmd)
        result = yield from self._inner.submit(cmd)
        return result

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"SanitizedDevice({self._inner!r})"


class _GuardedSlots(SnapshotSlots):
    """SnapshotSlots that refuses illegal promotions.

    Promotion must consume a reserve slot the device sanitizer saw at
    least one snapshot write land in since the last promotion — the
    paper's reserve-slot-first ordering — and must leave the role
    invariants intact.
    """

    def __init__(self, layout, sanitizer: SlimIOSanitizer):
        super().__init__(layout)
        self._sanitizer = sanitizer

    def promote(self, kind: SnapshotKind, snapshot_bytes: int):
        san = self._sanitizer
        reserve = self.reserve_slot
        if reserve not in san.slots_written:
            san.fail(
                f"promotion of reserve slot {reserve} for "
                f"{kind.value!r} but no snapshot write landed in it "
                f"since the last promotion — reserve-slot-first "
                f"ordering violated (the published snapshot would be "
                f"stale or empty)"
            )
        old = super().promote(kind, snapshot_bytes)
        try:
            self.check_invariants()
        except AssertionError as exc:
            san.fail(f"slot roles corrupt after promotion: {exc}")
        san.slots_written.discard(reserve)
        return old

    def restore_state(self, state):
        # a reverted promotion (durable metadata write failed) puts the
        # written-but-unpublished snapshot back in the reserve slot, so
        # re-register it as written — a retry may legally promote it
        super().restore_state(state)
        self._sanitizer.slots_written.add(self.reserve_slot)


class SlimIOSanitizer:
    """Per-system coordinator for the runtime checks.

    Life cycle (driven by :class:`~repro.core.engine.SlimIOSystem`
    when ``config.sanitize`` is set):

    1. ``wrap_device(device)`` — before any ring is built, so every
       command funnels through the wrapper;
    2. ``bind(space, placement)`` — once the LBA space exists; also
       swaps ``space.slots`` for the promotion guard;
    3. ``watch_server(server)`` — installs the fork-snapshot race
       detector (:mod:`repro.analysis.forkcheck`);
    4. ``notify_recovery()`` — after §4.2 recovery rewinds the WAL
       cursor, so monotonicity tracking restarts from the restored
       head.
    """

    def __init__(self, name: str = "slimio"):
        self.name = name
        self.space: LbaSpaceManager | None = None
        self.placement: PlacementPolicy | None = None
        self.device: SanitizedDevice | None = None
        self._inner = None
        self.fork_detector = None
        #: physical LBA where the next WAL append must start
        self._wal_next: int | None = None
        #: last WAL page written (a flush may rewrite this tail page)
        self._wal_tail: int | None = None
        #: reserve slots that received writes since their last promotion
        self.slots_written: set[int] = set()
        self.checks = 0
        self.violations = 0

    # ------------------------------------------------------------------ wiring
    def wrap_device(self, device) -> SanitizedDevice:
        self._inner = device
        self.device = SanitizedDevice(device, self)
        return self.device

    def bind(self, space: LbaSpaceManager,
             placement: PlacementPolicy) -> None:
        self.space = space
        self.placement = placement
        self._wal_next = space.layout.wal_base
        self._wal_tail = None
        guarded = _GuardedSlots(space.layout, self)
        guarded.roles = list(space.slots.roles)
        guarded.lengths = list(space.slots.lengths)
        space.slots = guarded

    def watch_server(self, server) -> None:
        from repro.analysis.forkcheck import ForkRaceDetector

        self.fork_detector = ForkRaceDetector(server)

    def notify_recovery(self) -> None:
        """Recovery restored the WAL cursor; resume tracking there.

        The last live page stays rewritable: recovery re-stages a
        partial tail page, so the first post-recovery flush overwrites
        it in place — the same allowance every flush gets in steady
        state.
        """
        assert self.space is not None
        wal = self.space.wal
        self._wal_next = wal.vpn_to_lba(wal.head)
        self._wal_tail = (wal.vpn_to_lba(wal.head - 1)
                          if wal.head > wal.gen_start else None)

    # ------------------------------------------------------------------ checks
    def fail(self, msg: str) -> None:
        self.violations += 1
        raise SanitizerError(f"[sanitize:{self.name}] {msg}")

    def check_write(self, cmd: WriteCmd) -> None:
        if self.space is None or self.placement is None:
            return  # not bound yet (device built before the LBA space)
        lay = self.space.layout
        place = self.placement
        lo, hi = cmd.lba, cmd.lba + cmd.nlb
        self.checks += 1

        if self._inner is not None and getattr(self._inner, "fdp", False):
            if cmd.pid >= self._inner.num_pids:
                self.fail(
                    f"write [{lo}, {hi}) carries PID {cmd.pid} but the "
                    f"device has {self._inner.num_pids} streams — real "
                    f"FDP devices fall back to stream 0 *silently*, "
                    f"mixing lifetimes and destroying WAF = 1.00"
                )
            if cmd.pid not in place.pids:
                self.fail(
                    f"write [{lo}, {hi}) carries PID {cmd.pid}, which "
                    f"the placement policy never assigned "
                    f"(declared PIDs: {sorted(set(place.pids))})"
                )

        if lo < lay.snapshot_base:
            self._check_metadata_write(cmd, lo, hi)
        elif lo < lay.wal_base:
            self._check_snapshot_write(cmd, lo, hi)
        else:
            self._check_wal_write(cmd, lo, hi)

    def _check_metadata_write(self, cmd: WriteCmd, lo: int, hi: int) -> None:
        lay = self.space.layout
        if hi > lay.metadata_lbas:
            self.fail(
                f"write [{lo}, {hi}) straddles the metadata region "
                f"[0, {lay.metadata_lbas}) into the snapshot region"
            )
        if cmd.pid != self.placement.metadata_pid:
            self.fail(
                f"metadata write [{lo}, {hi}) tagged PID {cmd.pid}, "
                f"expected metadata PID {self.placement.metadata_pid}"
            )

    def _check_snapshot_write(self, cmd: WriteCmd, lo: int, hi: int) -> None:
        lay = self.space.layout
        slots = self.space.slots
        reserve = slots.reserve_slot
        base, cap = self.space.slot_extent(reserve)
        if not (base <= lo and hi <= base + cap):
            slot_lo = (lo - lay.snapshot_base) // lay.slot_lbas
            slot_hi = (hi - 1 - lay.snapshot_base) // lay.slot_lbas
            where = (
                f"slot {slot_lo}" if slot_lo == slot_hi
                else f"slots {slot_lo}..{slot_hi}"
            )
            role = (
                slots.roles[slot_lo].name
                if 0 <= slot_lo < len(slots.roles) else "?"
            )
            self.fail(
                f"snapshot write [{lo}, {hi}) lands in {where} "
                f"(role {role}) but only the reserve slot {reserve} "
                f"[{base}, {base + cap}) may be written — a published "
                f"snapshot would be corrupted in place"
            )
        snap_pids = {
            self.placement.wal_snapshot_pid,
            self.placement.ondemand_snapshot_pid,
        }
        if cmd.pid not in snap_pids:
            self.fail(
                f"snapshot write [{lo}, {hi}) tagged PID {cmd.pid}, "
                f"expected a snapshot PID ({sorted(snap_pids)})"
            )
        self.slots_written.add(reserve)

    def _check_wal_write(self, cmd: WriteCmd, lo: int, hi: int) -> None:
        lay = self.space.layout
        if cmd.pid != self.placement.wal_pid:
            self.fail(
                f"WAL write [{lo}, {hi}) tagged PID {cmd.pid}, "
                f"expected WAL PID {self.placement.wal_pid}"
            )
        expected = [x for x in (self._wal_next, self._wal_tail)
                    if x is not None]
        if expected and lo not in expected:
            self.fail(
                f"non-monotonic WAL write at LBA {lo}: expected the "
                f"cursor ({self._wal_next}) or a tail-page rewrite "
                f"({self._wal_tail}) — circular-log ordering violated"
            )
        nxt = hi
        if nxt >= lay.total_lbas:
            nxt = lay.wal_base  # wrap of the circular log
        self._wal_next = nxt
        self._wal_tail = hi - 1

    def check_deallocate(self, cmd: DeallocateCmd) -> None:
        if self.space is None:
            return
        lay = self.space.layout
        lo, hi = cmd.lba, cmd.lba + cmd.nlb
        self.checks += 1
        if lo < lay.metadata_lbas:
            self.fail(
                f"deallocate [{lo}, {hi}) touches the metadata region "
                f"[0, {lay.metadata_lbas}) — dual-copy metadata is "
                f"never trimmed"
            )
        if lo < lay.wal_base and hi > lay.snapshot_base:
            reserve = self.space.slots.reserve_slot
            base, cap = self.space.slot_extent(reserve)
            if not (base <= lo and hi <= base + cap):
                self.fail(
                    f"deallocate [{lo}, {hi}) in the snapshot region "
                    f"covers more than the reserve slot {reserve} "
                    f"[{base}, {base + cap}) — trimming a published "
                    f"snapshot loses the last durable image"
                )

    # ------------------------------------------------------------------ report
    def summary(self) -> dict[str, int]:
        return {"checks": self.checks, "violations": self.violations}
