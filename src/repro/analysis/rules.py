"""slimlint rule definitions: the invariants the type system cannot see.

Each rule is an AST pass over one module, parameterized by the module's
*package scope* — which ``repro`` sub-package the file belongs to
(``tests/<pkg>/...`` maps onto ``<pkg>``, so a package's own tests may
exercise its internals without ceremony). Rules yield
:class:`Finding`\\ s with precise ``file:line:col`` anchors; the driver
(:mod:`repro.analysis.linter`) applies ``# slimlint: ignore[SLIM001]``
-style suppressions afterwards.

The rules (see docs/ANALYSIS.md for the full rationale):

* **SLIM001** — no direct device data-plane access (``device.submit``,
  ``device.peek``) outside the kernel/NVMe layers. All I/O must go
  through a ring (:class:`~repro.kernel.iouring.IoUringRing`) or the
  file-system path, so placement tags and timing are never bypassed.
* **SLIM002** — no integer Placement-ID literals at call sites outside
  ``core/placement.py`` and ``cluster/pids.py``. A hard-coded PID
  silently defeats lifetime separation when the policy changes.
* **SLIM003** — no wall clock (``time.time``, ``datetime.now``) or
  unseeded randomness anywhere in the tree; the simulation must be
  deterministic. ``time.perf_counter`` is allowed only in the
  designated measurement shells (``bench/__main__.py``,
  ``bench/perf.py``, ``faults/__main__.py``) — the harness code that
  times the simulator from outside; anywhere else it is a wall-clock
  leak into simulated behavior.
* **SLIM004** — package imports must respect the layering
  ``sim < obs < flash < nvme < kernel < persist < imdb < core <
  analysis < faults/workloads < cluster < bench``; only module-level
  imports
  are checked (function-local imports are the sanctioned escape hatch
  for build-time wiring).
* **SLIM005** — every ``MetricsRegistry`` instrument name follows the
  documented scheme: snake_case, counters end ``_total``, histograms
  carry a unit suffix (``_seconds``/``_bytes``), gauges never end
  ``_total``.
* **SLIM006** — no FTL-internal access (``.ftl.write`` etc.) outside
  ``repro/flash`` and ``repro/nvme``; read-only statistics
  (``.ftl.stats``, ``.ftl.waf_for_streams``, ...) are the sanctioned
  surface.
* **SLIM007** — every ``WriteCmd`` built in the FDP-aware layers
  (``core``, ``cluster``, ``analysis``) must carry an explicit
  ``pid=``; the default (0) is the metadata PID and mixes lifetimes
  silently.
* **SLIM008** — no mutation of the LBA state machine (slot ``roles``,
  WAL ``head``/``gen_start``/``prev_start``) outside ``repro/core``;
  those fields move only through the §4.2 protocol.
* **SLIM009** — ``repro.net`` is a *simulated* network: no real-network
  module imports (``socket``, ``asyncio``, ``ssl``, ...) and no
  ``time.*`` calls at all (not even the measurement-shell exemption
  SLIM003 grants ``perf_counter``) — connection timing must come from
  the Environment clock, or open-loop schedules stop being
  reproducible.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["Finding", "Rule", "RULES", "LAYER_RANKS", "run_rules"]


@dataclass(frozen=True)
class Finding:
    """One diagnostic, anchored to a source location."""

    code: str
    message: str
    file: str
    line: int
    col: int

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col + 1}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity plus its checker function."""

    code: str
    name: str
    summary: str
    check: object  # Callable[[ast.AST, ModuleContext], Iterator[Finding]]


@dataclass(frozen=True)
class ModuleContext:
    """Where a module sits in the tree, for scope-sensitive rules."""

    path: str  # as reported in findings (relative when possible)
    package: str | None  # repro sub-package this file belongs to
    is_test: bool
    is_src: bool


#: package layering, low rank = lower layer (may not import upward)
LAYER_RANKS = {
    "sim": 0,
    "obs": 1,
    "flash": 2,
    "nvme": 3,
    "kernel": 4,
    "persist": 5,
    "imdb": 6,
    "core": 7,
    "analysis": 8,
    # fault injection wraps devices and boots whole systems, so it sits
    # above core (the engine reaches it only via lazy import)
    "faults": 9,
    "workloads": 9,
    # the simulated connection front end frames RESP through imdb and
    # draws its key/value generators from workloads; bench sits above
    "net": 9,
    "cluster": 10,
    "bench": 11,
}

#: receiver names that identify "the device object" for SLIM001
_DEVICE_NAMES = ("device", "dev", "partition", "part", "nvme", "ssd")
#: keyword names that carry a Placement ID (SLIM002)
_PID_KEYWORDS = {
    "pid", "metadata_pid", "wal_pid", "wal_snapshot_pid",
    "ondemand_snapshot_pid",
}
#: read-only FTL surface callable from any layer (SLIM006);
#: ``rtrace`` is the request-tracer attach point — observation only,
#: same contract as ``attach_obs``
_FTL_PUBLIC = {"stats", "stream_stats", "waf_for_streams", "stream_ids",
               "attach_obs", "num_lpns", "rtrace"}
#: attributes of the LBA state machine (SLIM008)
_STATE_ATTRS = {"roles", "gen_start", "head", "prev_start"}
_STATE_RECEIVERS = {"slots", "wal"}


def _terminal_name(node: ast.expr) -> str | None:
    """The last identifier of a dotted expression (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _mentions_device(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    name = name.lower().lstrip("_")
    return any(name == d or name.endswith("_" + d) for d in _DEVICE_NAMES)


def _find(ctx: ModuleContext, code: str, node: ast.AST, msg: str) -> Finding:
    return Finding(code, msg, ctx.path,
                   getattr(node, "lineno", 1), getattr(node, "col_offset", 0))


# --------------------------------------------------------------------------
# SLIM001 — direct device data-plane access
# --------------------------------------------------------------------------

#: faults is allowed raw access: the injector tears/restores page images
#: (peek/poke) and forwards submit() as a device proxy, below any ring
_SLIM001_ALLOWED = {"kernel", "nvme", "flash", "analysis", "faults"}


def _check_device_access(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.package in _SLIM001_ALLOWED:
        return
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in ("submit", "peek"):
            continue
        if _mentions_device(node.func.value):
            yield _find(
                ctx, "SLIM001", node,
                f"direct device .{node.func.attr}() outside repro/kernel "
                f"and repro/nvme — route I/O through a ring "
                f"(IoUringRing/PassthruQueuePair) or the fs path so "
                f"placement tags and timing are never bypassed",
            )


# --------------------------------------------------------------------------
# SLIM002 — integer PID literals
# --------------------------------------------------------------------------

_SLIM002_ALLOWED_FILES = ("core/placement.py", "cluster/pids.py")


def _check_pid_literals(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    if any(ctx.path.replace("\\", "/").endswith(f)
           for f in _SLIM002_ALLOWED_FILES):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg in _PID_KEYWORDS and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, int) \
                    and not isinstance(kw.value.value, bool):
                yield _find(
                    ctx, "SLIM002", kw.value,
                    f"integer Placement-ID literal ({kw.arg}="
                    f"{kw.value.value}) outside core/placement.py / "
                    f"cluster/pids.py — derive PIDs from a "
                    f"PlacementPolicy so lifetime separation survives "
                    f"policy changes",
                )


# --------------------------------------------------------------------------
# SLIM003 — wall clock / unseeded randomness
# --------------------------------------------------------------------------

_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}
#: perf_counter is a wall clock too, but it is the sanctioned way to
#: *measure* the simulator from outside. Only the measurement shells —
#: the CLI that times regeneration and the perf harness — may call it;
#: model code that needs "now" must use the Environment clock.
_PERF_COUNTER = {("time", "perf_counter"), ("time", "perf_counter_ns")}
_SLIM003_MEASUREMENT_FILES = ("bench/__main__.py", "bench/perf.py",
                              "faults/__main__.py")
_RANDOM_MODULE_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "betavariate", "expovariate", "seed",
    "getrandbits", "normalvariate", "triangular",
}


def _dotted(node: ast.expr) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _check_determinism(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted(node.func)
        if len(parts) < 2:
            continue
        head, tail = parts[-2], parts[-1]
        if (head, tail) in _WALL_CLOCK:
            yield _find(
                ctx, "SLIM003", node,
                f"wall-clock call {head}.{tail}() — simulated code must "
                f"be deterministic; use the Environment clock (env.now), "
                f"or time.perf_counter for wall-time *measurement* only",
            )
        elif (head, tail) in _PERF_COUNTER and not any(
                ctx.path.replace("\\", "/").endswith(f)
                for f in _SLIM003_MEASUREMENT_FILES):
            yield _find(
                ctx, "SLIM003", node,
                f"{head}.{tail}() outside the measurement shells "
                f"({', '.join(_SLIM003_MEASUREMENT_FILES)}) — wall time "
                f"must never influence simulated behavior; measure from "
                f"the harness, model time with env.now",
            )
        elif head == "random" and tail in _RANDOM_MODULE_FNS:
            yield _find(
                ctx, "SLIM003", node,
                f"global-state randomness random.{tail}() — use a seeded "
                f"np.random.default_rng(seed) / random.Random(seed) so "
                f"runs reproduce",
            )
        elif tail == "Random" and head == "random" and not node.args:
            yield _find(
                ctx, "SLIM003", node,
                "unseeded random.Random() — pass an explicit seed",
            )
        elif tail == "default_rng" and head == "random" and not node.args \
                and not node.keywords:
            yield _find(
                ctx, "SLIM003", node,
                "unseeded np.random.default_rng() — pass an explicit "
                "seed so runs reproduce",
            )


# --------------------------------------------------------------------------
# SLIM004 — package layering (module-level imports only)
# --------------------------------------------------------------------------

def _import_target_package(node: ast.stmt) -> Iterator[tuple[str, ast.stmt]]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                yield parts[1], node
    elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        parts = node.module.split(".")
        if parts[0] == "repro":
            if len(parts) > 1:
                yield parts[1], node
            else:  # ``from repro import X`` — X may be a sub-package
                for alias in node.names:
                    if alias.name in LAYER_RANKS:
                        yield alias.name, node


def _check_layering(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.is_src or ctx.package not in LAYER_RANKS:
        return
    my_rank = LAYER_RANKS[ctx.package]
    if not isinstance(tree, ast.Module):
        return
    for stmt in tree.body:  # module level only: lazy imports are exempt
        for pkg, node in _import_target_package(stmt):
            rank = LAYER_RANKS.get(pkg)
            if rank is not None and rank > my_rank:
                yield _find(
                    ctx, "SLIM004", node,
                    f"layer inversion: repro.{ctx.package} (layer "
                    f"{my_rank}) imports repro.{pkg} (layer {rank}) at "
                    f"module level — depend downward only, or use a "
                    f"function-local import for build-time wiring",
                )


# --------------------------------------------------------------------------
# SLIM005 — metric naming scheme
# --------------------------------------------------------------------------

_REGISTRY_NAMES = {"registry", "obs", "reg", "metrics"}
_UNIT_SUFFIXES = ("_seconds", "_bytes", "_pages", "_ratio")


def _is_registry_receiver(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    name = name.lower().lstrip("_")
    return name in _REGISTRY_NAMES or name.endswith("_obs") or name == "obs"


def _check_metric_names(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    import re

    ident = re.compile(r"^[a-z][a-z0-9_]*$")
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        kind = node.func.attr
        if kind not in ("counter", "gauge", "histogram"):
            continue
        if not _is_registry_receiver(node.func.value):
            continue
        if not node.args or not isinstance(node.args[0], ast.Constant) \
                or not isinstance(node.args[0].value, str):
            continue
        name = node.args[0].value
        if not ident.match(name):
            yield _find(
                ctx, "SLIM005", node,
                f"instrument name {name!r} is not snake_case "
                f"(^[a-z][a-z0-9_]*$)",
            )
            continue
        if kind == "counter" and not name.endswith("_total"):
            yield _find(
                ctx, "SLIM005", node,
                f"counter {name!r} must end in _total (monotonic totals)",
            )
        elif kind == "histogram" and not name.endswith(_UNIT_SUFFIXES):
            yield _find(
                ctx, "SLIM005", node,
                f"histogram {name!r} must carry a unit suffix "
                f"({', '.join(_UNIT_SUFFIXES)})",
            )
        elif kind == "gauge" and name.endswith("_total"):
            yield _find(
                ctx, "SLIM005", node,
                f"gauge {name!r} must not end in _total — gauges are "
                f"instantaneous, not monotonic",
            )


# --------------------------------------------------------------------------
# SLIM006 — FTL internals
# --------------------------------------------------------------------------

_SLIM006_ALLOWED = {"flash", "nvme"}


def _check_ftl_internals(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.package in _SLIM006_ALLOWED:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        recv = node.value
        if _terminal_name(recv) == "ftl" and node.attr not in _FTL_PUBLIC:
            yield _find(
                ctx, "SLIM006", node,
                f"FTL-internal access .ftl.{node.attr} outside "
                f"repro/flash and repro/nvme — the sanctioned surface is "
                f"{sorted(_FTL_PUBLIC)}; anything else belongs behind "
                f"the device",
            )


# --------------------------------------------------------------------------
# SLIM007 — untagged FDP writes
# --------------------------------------------------------------------------

_SLIM007_SCOPE = {"core", "cluster", "analysis"}


def _check_untagged_writes(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.package not in _SLIM007_SCOPE:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _terminal_name(node.func)
        if name != "WriteCmd":
            continue
        if not any(kw.arg == "pid" for kw in node.keywords):
            yield _find(
                ctx, "SLIM007", node,
                "WriteCmd without an explicit pid= in an FDP-aware layer "
                "— the default (0) is the metadata PID and silently "
                "mixes lifetimes; tag every write from the "
                "PlacementPolicy",
            )


# --------------------------------------------------------------------------
# SLIM008 — LBA state-machine mutation
# --------------------------------------------------------------------------

def _state_targets(node: ast.stmt) -> Iterator[ast.Attribute]:
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for t in targets:
        if isinstance(t, ast.Attribute):
            yield t
        elif isinstance(t, (ast.Tuple, ast.List)):
            for el in t.elts:
                if isinstance(el, ast.Attribute):
                    yield el


def _check_state_mutation(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.package in ("core", "analysis"):
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            continue
        for target in _state_targets(node):
            if target.attr not in _STATE_ATTRS:
                continue
            recv = _terminal_name(target.value)
            if recv in _STATE_RECEIVERS:
                yield _find(
                    ctx, "SLIM008", node,
                    f"direct mutation of {recv}.{target.attr} outside "
                    f"repro/core — slot roles and WAL cursors move only "
                    f"through the §4.2 protocol (promote / alloc / "
                    f"start_new_generation / recovery)",
                )


# --------------------------------------------------------------------------
# SLIM009 — the simulated network must stay simulated
# --------------------------------------------------------------------------

#: module roots whose import into repro.net means real networking (or a
#: real event loop) is leaking into the simulation
_NET_FORBIDDEN_IMPORTS = {
    "socket", "socketserver", "selectors", "ssl", "asyncio", "http",
    "urllib", "requests", "websockets", "ftplib", "smtplib", "telnetlib",
}


def _check_net_purity(tree: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.package != "net":
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _NET_FORBIDDEN_IMPORTS:
                    yield _find(
                        ctx, "SLIM009", node,
                        f"import {alias.name} inside repro.net — the "
                        f"connection front end is simulated; model "
                        f"sockets with Store/Event on the Environment "
                        f"clock, never real ones",
                    )
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            root = node.module.split(".")[0]
            if root in _NET_FORBIDDEN_IMPORTS:
                yield _find(
                    ctx, "SLIM009", node,
                    f"import from {node.module} inside repro.net — the "
                    f"connection front end is simulated; model sockets "
                    f"with Store/Event on the Environment clock, never "
                    f"real ones",
                )
        elif isinstance(node, ast.Call):
            parts = _dotted(node.func)
            if len(parts) >= 2 and parts[-2] == "time":
                yield _find(
                    ctx, "SLIM009", node,
                    f"time.{parts[-1]}() inside repro.net — no wall "
                    f"clock of any kind here (SLIM003's measurement-"
                    f"shell exemption does not apply); latency and "
                    f"pacing come from env.now",
                )


RULES: tuple[Rule, ...] = (
    Rule("SLIM001", "direct-device-access",
         "no device.submit/peek outside kernel+nvme", _check_device_access),
    Rule("SLIM002", "pid-literal",
         "no integer PID literals outside placement.py/pids.py",
         _check_pid_literals),
    Rule("SLIM003", "nondeterminism",
         "no wall clock or unseeded randomness", _check_determinism),
    Rule("SLIM004", "layer-inversion",
         "imports must respect the package layering", _check_layering),
    Rule("SLIM005", "metric-naming",
         "instrument names follow the documented scheme",
         _check_metric_names),
    Rule("SLIM006", "ftl-internals",
         "no FTL-internal access outside flash+nvme", _check_ftl_internals),
    Rule("SLIM007", "untagged-write",
         "WriteCmd in FDP-aware layers must pass pid=",
         _check_untagged_writes),
    Rule("SLIM008", "state-machine-mutation",
         "no slot/WAL state mutation outside core", _check_state_mutation),
    Rule("SLIM009", "net-purity",
         "repro.net: no real sockets, no wall clocks", _check_net_purity),
)


def run_rules(tree: ast.AST, ctx: ModuleContext,
              select: set[str] | None = None) -> list[Finding]:
    """All findings of the selected rules on one parsed module."""
    out: list[Finding] = []
    for rule in RULES:
        if select is not None and rule.code not in select:
            continue
        out.extend(rule.check(tree, ctx))
    return out
