"""Fork-snapshot race detector.

When a snapshot is active, the parent and the fork child share every
heap page that existed at the fork instant. The execution-model
contract (``repro.imdb``) is that every parent mutation of a shared
page goes through :meth:`~repro.imdb.memory.CowMemory.touch` *at the
mutation point*, paying the CoW fault and unsharing the page — that is
what keeps the child's view frozen. A mutation that skips ``touch``
(or touches the wrong range) means the child could observe post-fork
data: a silently corrupt snapshot, the worst failure mode this repo
models.

:class:`ForkRaceDetector` wraps a live server's ``store`` and ``cow``:

* a ``store.set``/``store.delete`` during an active snapshot records
  which of the mutated pages were still CoW-shared — those become
  *pending* pages that must be CoW-faulted before anything else
  happens;
* ``cow.touch`` clears the pending pages it covers;
* the next mutation, and ``cow.reap`` (child exit), assert the pending
  set is empty — any leftover page was mutated without a CoW fault,
  i.e. the child raced the parent.

Installed by :meth:`repro.analysis.sanitize.SlimIOSanitizer.watch_server`
when the system is built with ``sanitize=True``.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.analysis.sanitize import SanitizerError

__all__ = ["ForkRaceDetector"]


class _WatchedStore:
    """KVStore proxy that reports page mutations to the detector."""

    def __init__(self, inner, detector: ForkRaceDetector):
        self._inner = inner
        self._detector = detector

    def set(self, key: bytes, value: bytes):
        pages = self._inner.set(key, value)
        if pages is not None:
            self._detector.note_mutation(pages[0], pages[1])
        return pages

    def delete(self, key: bytes):
        pages = self._inner.pages_of(key)
        existed = self._inner.delete(key)
        if existed and pages is not None:
            self._detector.note_mutation(pages[0], pages[1])
        return existed

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __contains__(self, key: bytes) -> bool:
        return key in self._inner

    def __len__(self) -> int:
        return len(self._inner)


class _WatchedCow:
    """CowMemory proxy that tracks fault coverage of pending pages."""

    def __init__(self, inner, detector: ForkRaceDetector):
        self._inner = inner
        self._detector = detector

    def arm(self, heap_pages: int) -> None:
        self._detector.note_arm()
        self._inner.arm(heap_pages)

    def touch(self, first_page: int, n_pages: int, account) -> Generator:
        self._detector.note_touch(first_page, n_pages)
        copied = yield from self._inner.touch(first_page, n_pages, account)
        return copied

    def reap(self) -> None:
        self._detector.note_reap()
        self._inner.reap()

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class ForkRaceDetector:
    """Watches one server for CoW-bypassing mutations during a fork."""

    def __init__(self, server):
        self.server = server
        self._cow = server.cow
        #: shared pages mutated but not yet CoW-faulted
        self.pending: set[int] = set()
        self.mutations_checked = 0
        self.races = 0
        server.store = _WatchedStore(server.store, self)
        server.cow = _WatchedCow(server.cow, self)

    # ------------------------------------------------------------------ events
    def _fail(self, msg: str) -> None:
        self.races += 1
        raise SanitizerError(f"[forkcheck:{self.server.name}] {msg}")

    def _assert_drained(self, when: str) -> None:
        if self.pending:
            pages = sorted(self.pending)
            self.pending.clear()
            self._fail(
                f"{when}, but CoW-shared page(s) {pages[:8]}"
                f"{'...' if len(pages) > 8 else ''} were mutated "
                f"without a CoW fault — the fork child could observe "
                f"post-fork data (corrupt snapshot)"
            )

    def note_arm(self) -> None:
        self.pending.clear()

    def note_mutation(self, first_page: int, n_pages: int) -> None:
        if not self._cow.snapshot_active or n_pages == 0:
            return
        self._assert_drained("a new mutation arrived")
        self.mutations_checked += 1
        shared = self._cow._shared
        end = min(first_page + n_pages, len(shared))
        for page in range(first_page, end):
            if shared[page]:
                self.pending.add(page)

    def note_touch(self, first_page: int, n_pages: int) -> None:
        if not self.pending:
            return
        self.pending.difference_update(
            range(first_page, first_page + n_pages)
        )

    def note_reap(self) -> None:
        self._assert_drained("the snapshot child exited")

    def summary(self) -> dict[str, int]:
        return {
            "mutations_checked": self.mutations_checked,
            "races": self.races,
        }
