"""Scale presets: the paper's setup shrunk to laptop size.

The paper: a 180 GB FEMU FDP SSD (8×8 dies), 26 GB datasets, 28 M ops.
``BENCH_SCALE`` shrinks capacity, dataset, and op counts together by
roughly 1000× while keeping the ratios that drive the phenomena:

* WAL traffic per run is several times the device capacity in the
  GC-pressure scenarios (the paper's redis-benchmark writes ~114 GB
  onto 180 GB with long-lived snapshots resident);
* the WAL-Snapshot trigger fires a few times per run;
* the device has enough die parallelism (8×8 at bench scale, like the
  paper's FEMU device) that the kernel path — not NAND bandwidth — is
  the bottleneck; blocks are smaller so reclaim granularity scales too.

``TEST_SCALE`` is another ~10× smaller for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import SystemConfig
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ServerConfig
from repro.workloads import RedisBenchWorkload, YcsbAWorkload

__all__ = ["Scale", "TINY_SCALE", "TEST_SCALE", "BENCH_SCALE", "PROD_SCALE"]

MB = 1024 * 1024


@dataclass(frozen=True)
class Scale:
    """All knobs that shrink together."""

    name: str
    #: device capacity for GC-pressure scenarios (wrapped several times)
    small_device_mb: int
    #: device capacity for no-GC scenarios
    large_device_mb: int
    channels: int
    dies_per_channel: int
    pages_per_block: int
    redis_clients: int
    redis_ops: int
    redis_keys: int
    redis_value: int
    ycsb_clients: int
    ycsb_ops: int
    ycsb_keys: int
    ycsb_value: int
    wal_trigger_bytes: int
    warmup_ops: int
    #: figure-4/5 regime: higher utilization so GC must copy
    gc_heavy_device_mb: int = 24
    gc_heavy_trigger_bytes: int = 3 * 1024 * 1024
    snapshot_chunk_entries: int = 64
    #: run every experiment with the repro.analysis runtime sanitizers
    #: active on SlimIO systems (``python -m repro.bench --sanitize``)
    sanitize: bool = False
    #: run every SlimIO system under the repro.faults transient-error
    #: injector (``python -m repro.bench --faults``); errors are seeded
    #: and absorbed by the ring's RetryPolicy, and the flag is part of
    #: the cache key, so default reports are never perturbed
    faults: bool = False
    #: simulator fast lanes (result-invariant; see SystemConfig)
    batched: bool = True
    fast_sim: bool = True
    fast_forward: bool = True

    # ------------------------------------------------------------------ configs
    def _geometry(self, mb: int) -> FlashGeometry:
        return FlashGeometry.scaled(
            mb=mb, channels=self.channels,
            dies_per_channel=self.dies_per_channel,
            pages_per_block=self.pages_per_block,
        )

    def _nand(self) -> NandTiming:
        # scaled blocks must scale the erase time too: a real 256-page
        # block erases in 2 ms (~4% of its program time); keeping 2 ms
        # on an 8-page block would make erases 10x more expensive than
        # physics says
        return NandTiming(
            block_erase=2e-3 * self.pages_per_block / 256.0
        )

    def _ftl(self) -> FtlConfig:
        # 20% OP so GC always has headroom even at the transient peak
        # (old WAL gen + new gen growth + three snapshot images live)
        return FtlConfig(op_ratio=0.20, gc_trigger_segments=5,
                         gc_stop_segments=10, gc_reserve_segments=2)

    def system_config(self, gc_pressure: bool, trigger: bool = True,
                      **overrides) -> SystemConfig:
        mb = self.small_device_mb if gc_pressure else self.large_device_mb
        server = ServerConfig(
            # calibrated near the paper's ~57-75k rps service rate
            set_cpu=14e-6,
            get_cpu=7e-6,
            wal_snapshot_trigger_bytes=(
                self.wal_trigger_bytes if trigger else None
            ),
            snapshot_chunk_entries=self.snapshot_chunk_entries,
        )
        cfg = SystemConfig(
            snapshot_fraction=0.30,
            geometry=self._geometry(mb),
            nand=self._nand(),
            ftl=self._ftl(),
            server=server,
            # "everysec" scaled: runs are ~1000x shorter than the paper's
            wal_flush_interval=0.002,
            dirty_limit_bytes=max(4 * MB, mb * MB // 4),
            wal_buffer_limit_bytes=4 * MB,
            fs_extent_pages=64,
            sanitize=self.sanitize,
            faults=self.faults,
            batched=self.batched,
            fast_sim=self.fast_sim,
            fast_forward=self.fast_forward,
        )
        if overrides:
            cfg = replace(cfg, **overrides)
        return cfg

    # ------------------------------------------------------------------ workloads
    def redis_bench(self, **kw) -> RedisBenchWorkload:
        args = dict(clients=self.redis_clients, total_ops=self.redis_ops,
                    key_count=self.redis_keys, value_size=self.redis_value)
        args.update(kw)
        return RedisBenchWorkload(**args)

    def ycsb_a(self, **kw) -> YcsbAWorkload:
        args = dict(clients=self.ycsb_clients, total_ops=self.ycsb_ops,
                    key_count=self.ycsb_keys, value_size=self.ycsb_value)
        args.update(kw)
        return YcsbAWorkload(**args)


#: ``TINY_SCALE`` exists for design-space sweeps (``python -m
#: repro.bench sweep``): a comprehensive grid runs ~100 systems per
#: sweep, so each point must finish in well under a second while still
#: generating enough write volume to wrap the sweep's pinned devices
#: into the GC regime where the interesting cliffs live.
TINY_SCALE = Scale(
    name="tiny",
    small_device_mb=24,
    large_device_mb=64,
    channels=4,
    dies_per_channel=8,
    pages_per_block=8,
    redis_clients=8,
    redis_ops=6_000,
    redis_keys=300,
    redis_value=4096,
    ycsb_clients=8,
    ycsb_ops=8_000,
    ycsb_keys=600,
    ycsb_value=2048,
    wal_trigger_bytes=3 * MB,
    warmup_ops=1_000,
    gc_heavy_device_mb=22,
    gc_heavy_trigger_bytes=2 * MB,
    snapshot_chunk_entries=32,
)

TEST_SCALE = Scale(
    name="test",
    small_device_mb=32,
    large_device_mb=96,
    channels=4,
    dies_per_channel=8,
    pages_per_block=8,
    redis_clients=16,
    redis_ops=16_000,
    redis_keys=400,
    redis_value=4096,
    ycsb_clients=8,
    ycsb_ops=10_000,
    ycsb_keys=800,
    ycsb_value=2048,
    wal_trigger_bytes=5 * MB,
    warmup_ops=2_000,
    gc_heavy_device_mb=24,
    gc_heavy_trigger_bytes=3 * MB,
    snapshot_chunk_entries=32,
)

BENCH_SCALE = Scale(
    name="bench",
    small_device_mb=64,
    large_device_mb=256,
    channels=8,
    dies_per_channel=8,
    pages_per_block=8,
    redis_clients=50,
    redis_ops=16_000,
    redis_keys=1_200,
    redis_value=4096,
    ycsb_clients=8,
    ycsb_ops=16_000,
    ycsb_keys=3_000,
    ycsb_value=2048,
    wal_trigger_bytes=10 * MB,
    warmup_ops=3_000,
    gc_heavy_device_mb=64,
    gc_heavy_trigger_bytes=6 * MB,
)


#: ``PROD_SCALE`` pushes toward the paper's scale along the axes the
#: lightweight-path phenomena care about: 4x the operation counts and
#: a 50% larger device, so runs spend long stretches in the steady
#: periodic-flush regime where the quiescence fast-forward lane and
#: the array-backed hot state pay off. Still laptop-sized: a full
#: suite completes in minutes, not hours.
PROD_SCALE = Scale(
    name="prod",
    small_device_mb=96,
    large_device_mb=384,
    channels=8,
    dies_per_channel=8,
    pages_per_block=8,
    redis_clients=50,
    redis_ops=64_000,
    redis_keys=2_400,
    redis_value=4096,
    ycsb_clients=16,
    ycsb_ops=64_000,
    ycsb_keys=6_000,
    ycsb_value=2048,
    wal_trigger_bytes=20 * MB,
    warmup_ops=6_000,
    gc_heavy_device_mb=96,
    gc_heavy_trigger_bytes=10 * MB,
)


def get_scale(name: str) -> Scale:
    scales = {"tiny": TINY_SCALE, "test": TEST_SCALE, "bench": BENCH_SCALE,
              "prod": PROD_SCALE}
    if name not in scales:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(scales)}")
    return scales[name]
