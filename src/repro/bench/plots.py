"""ASCII rendering for figure-style results (no plotting deps).

The paper's Figures 4 and 5 are RPS-vs-time line charts; this module
renders the same series as terminal block charts so `python -m
repro.bench figure4` shows the *shape* — the stable plateau, the GC
nosedives, the snapshot windows — directly in the report.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["spark", "timeline_chart", "grid_heatmap", "sweep_panels"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def spark(values: Sequence[float], vmax: float | None = None) -> str:
    """One-line sparkline of ``values`` (zeros render as spaces)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    top = float(np.max(arr)) if vmax is None else vmax
    if top <= 0:
        return _BLOCKS[0] * arr.size
    idx = np.clip(
        np.ceil(arr / top * (len(_BLOCKS) - 1)), 0, len(_BLOCKS) - 1
    ).astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def timeline_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 8,
) -> str:
    """Multi-row block chart, one labelled band per series.

    Each band shows ``height`` rows of the rate timeline, resampled to
    ``width`` columns; all bands share one y-scale so systems are
    visually comparable (as in the paper's stacked Figures 4/5).
    """
    if not series:
        return "(no series)"
    vmax = max(
        float(np.max(rates)) if len(rates) else 0.0
        for _, rates in series.values()
    )
    if vmax <= 0:
        vmax = 1.0
    out: list[str] = []
    for name, (centers, rates) in series.items():
        rates = np.asarray(rates, dtype=np.float64)
        if rates.size == 0:
            out.append(f"{name}: (empty)")
            continue
        # resample to the display width
        cols = np.interp(
            np.linspace(0, rates.size - 1, width),
            np.arange(rates.size),
            rates,
        )
        out.append(f"{name}  (peak {vmax:,.0f} req/s)")
        levels = np.clip(cols / vmax * height, 0.0, height)
        for row in range(height, 0, -1):
            line = "".join(
                "█" if lv >= row else ("▄" if lv >= row - 0.5 else " ")
                for lv in levels
            )
            out.append("  |" + line)
        out.append("  +" + "-" * width)
    return "\n".join(out)


# --------------------------------------------------------------------------
# design-space heatmaps (sweep grids)
# --------------------------------------------------------------------------

def _fmt_cell(value: float) -> str:
    if value != value:  # nan
        return "-"
    if abs(value) >= 10_000:
        return f"{value:,.0f}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.3g}"


def grid_heatmap(result, x: str, y: str, metric: str) -> str:
    """One shaded panel of a sweep: ``metric`` over an (x, y) slice.

    ``result`` is a :class:`repro.bench.sweep.SweepResult`. Cells
    average the metric over every *other* axis (error rows and rows
    missing the metric are skipped); shade is normalized to the panel
    maximum, and each cell also prints its mean so the chart carries
    numbers, not just shape. Cells with no feasible point render "·".
    """
    xs = result.axis_values(x)
    ys = result.axis_values(y)
    if not xs or not ys:
        return f"(no data for {metric} over {x} x {y})"
    sums: dict[tuple, list[float]] = {}
    for row in result.rows:
        if "error" in row or metric not in row:
            continue
        if x not in row or y not in row:
            continue
        sums.setdefault((row[x], row[y]), []).append(float(row[metric]))
    means = {k: sum(v) / len(v) for k, v in sums.items()}
    if not means:
        return f"(no data for {metric} over {x} x {y})"
    vmax = max(abs(v) for v in means.values())
    cells: list[list[str]] = []
    for yv in ys:
        line = []
        for xv in xs:
            v = means.get((xv, yv))
            if v is None:
                line.append("·")
            else:
                shade = (_BLOCKS[-1] if vmax <= 0 else
                         _BLOCKS[int(np.clip(
                             np.ceil(abs(v) / vmax * (len(_BLOCKS) - 1)),
                             1, len(_BLOCKS) - 1))])
                line.append(f"{shade} {_fmt_cell(v)}")
        cells.append(line)
    ylab_w = max(len(str(v)) for v in ys)
    col_w = [max(len(str(xs[i])),
                 max(len(r[i]) for r in cells)) for i in range(len(xs))]
    out = [f"{metric}  (mean over other axes; x={x}, y={y}, "
           f"panel max {_fmt_cell(vmax)})"]
    header = " " * (ylab_w + 2) + "  ".join(
        str(v).ljust(w) for v, w in zip(xs, col_w))
    out.append(header)
    for yv, line in zip(ys, cells):
        out.append(str(yv).rjust(ylab_w) + "  " + "  ".join(
            c.ljust(w) for c, w in zip(line, col_w)))
    return "\n".join(out)


def sweep_panels(result, panels) -> str:
    """Render a grid's configured heatmap panels, stacked."""
    if not panels:
        return ""
    return "\n\n".join(grid_heatmap(result, x, y, metric)
                       for x, y, metric in panels)
