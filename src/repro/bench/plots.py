"""ASCII rendering for figure-style results (no plotting deps).

The paper's Figures 4 and 5 are RPS-vs-time line charts; this module
renders the same series as terminal block charts so `python -m
repro.bench figure4` shows the *shape* — the stable plateau, the GC
nosedives, the snapshot windows — directly in the report.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["spark", "timeline_chart"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def spark(values: Sequence[float], vmax: float | None = None) -> str:
    """One-line sparkline of ``values`` (zeros render as spaces)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    top = float(np.max(arr)) if vmax is None else vmax
    if top <= 0:
        return _BLOCKS[0] * arr.size
    idx = np.clip(
        np.ceil(arr / top * (len(_BLOCKS) - 1)), 0, len(_BLOCKS) - 1
    ).astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def timeline_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 8,
) -> str:
    """Multi-row block chart, one labelled band per series.

    Each band shows ``height`` rows of the rate timeline, resampled to
    ``width`` columns; all bands share one y-scale so systems are
    visually comparable (as in the paper's stacked Figures 4/5).
    """
    if not series:
        return "(no series)"
    vmax = max(
        float(np.max(rates)) if len(rates) else 0.0
        for _, rates in series.values()
    )
    if vmax <= 0:
        vmax = 1.0
    out: list[str] = []
    for name, (centers, rates) in series.items():
        rates = np.asarray(rates, dtype=np.float64)
        if rates.size == 0:
            out.append(f"{name}: (empty)")
            continue
        # resample to the display width
        cols = np.interp(
            np.linspace(0, rates.size - 1, width),
            np.arange(rates.size),
            rates,
        )
        out.append(f"{name}  (peak {vmax:,.0f} req/s)")
        levels = np.clip(cols / vmax * height, 0.0, height)
        for row in range(height, 0, -1):
            line = "".join(
                "█" if lv >= row else ("▄" if lv >= row - 0.5 else " ")
                for lv in levels
            )
            out.append("  |" + line)
        out.append("  +" + "-" * width)
    return "\n".join(out)
