"""Parameter sweeps: run a grid of configurations, collect a table.

For sensitivity studies beyond the paper's point estimates — e.g. how
the SlimIO advantage moves with value size, client count, or device
over-provisioning. Results come back as rows of plain dicts and can be
dumped to CSV for external analysis.

Beyond ad-hoc grids, this module is the engine of the design-space
exploration subsystem (``python -m repro.bench sweep``):

* :class:`GridSpec` names a cartesian grid plus the module-level runner
  that measures one point (picklable, so grids parallelize over the
  ``--jobs`` process pool);
* :class:`CachedRunner` wraps any runner in the on-disk result cache,
  keyed on the *full* parameter dict (plus scale and code digest), so
  re-sweeps and the auto-tuner replay cached points for free;
* :func:`detect_knife_edges` flags adjacent grid points whose metric
  jumps by more than a factor — the ``gc_stop_segments`` 6→5 cliff
  found in PR 4 is the motivating example: point estimates hide these
  edges, grids expose them.

A sweep that mixes successful rows with ``on_error="skip"`` failure
rows (infeasible corners record an ``error`` column and *no*
measurement keys) stays fully renderable: ``format()``, ``column()``,
``write_csv()`` and ``best()`` all union headers across rows and treat
missing cells as blank.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Sequence
from typing import Any

__all__ = [
    "SweepResult", "sweep", "write_csv", "GridSpec", "EdgeSpec",
    "KnifeEdge", "CachedRunner", "run_grid", "detect_knife_edges",
    "format_knife_edges",
]

#: runner(params) -> dict of measured values
Runner = Callable[[dict[str, Any]], dict[str, float]]


@dataclass
class SweepResult:
    """All (params, measurements) rows of one sweep."""

    param_names: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def headers(self) -> list[str]:
        """Union of every row's keys, first-seen order.

        Success rows and ``on_error="skip"`` error rows carry different
        key sets; a single row can never be trusted to name them all.
        """
        headers: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in headers:
                    headers.append(key)
        return headers

    def column(self, name: str) -> list[Any]:
        """One column across all rows; ``None`` where a row (e.g. an
        error row) has no such cell."""
        return [r.get(name) for r in self.rows]

    def ok_rows(self) -> list[dict[str, Any]]:
        """The successful rows (no ``error`` column)."""
        return [r for r in self.rows if "error" not in r]

    def axis_values(self, name: str) -> list[Any]:
        """Distinct values of one parameter, first-seen (= grid) order."""
        seen: list[Any] = []
        for row in self.rows:
            if name in row and row[name] not in seen:
                seen.append(row[name])
        return seen

    def best(self, metric: str, maximize: bool = True) -> dict[str, Any]:
        # rows recorded by on_error="skip" carry an "error" column and
        # no measurements; they can never be the best point
        candidates = [r for r in self.rows
                      if "error" not in r and metric in r]
        if not candidates:
            raise ValueError(
                f"no successful rows with metric {metric!r} "
                f"({len(self.rows)} rows total)"
            )
        pick = max if maximize else min
        return pick(candidates, key=lambda r: r[metric])

    def top(self, metric: str, n: int = 5,
            maximize: bool = True) -> list[dict[str, Any]]:
        """The ``n`` best successful rows by ``metric``, best first."""
        candidates = [r for r in self.rows
                      if "error" not in r and metric in r]
        return sorted(candidates, key=lambda r: r[metric],
                      reverse=maximize)[:n]

    def format(self) -> str:
        from repro.bench.report import format_table

        if not self.rows:
            return "(empty sweep)"
        # union the headers: indexing every row with rows[0]'s keys
        # raises KeyError the moment a sweep mixes success and error
        # rows, and drops the "error" column when rows[0] succeeded
        headers = self.headers()
        return format_table(headers, [[r.get(h, "") for h in headers]
                                      for r in self.rows])


def _run_point(runner: Runner, params: dict[str, Any]) -> tuple:
    """One grid point, exception-safe — the process-pool work unit.

    Module-level (not a closure) so it pickles for
    ``ProcessPoolExecutor``; returns ``("ok", measurements)`` or
    ``("err", message)`` instead of raising so worker tracebacks
    don't tear down the pool.
    """
    try:
        return "ok", runner(dict(params))
    except Exception as exc:  # noqa: BLE001 — re-raised by the caller
        return "err", f"{type(exc).__name__}: {exc}"


def sweep(grid: dict[str, Iterable[Any]], runner: Runner,
          on_error: str = "raise", jobs: int = 1) -> SweepResult:
    """Run ``runner`` for every point of the cartesian ``grid``.

    ``on_error``: "raise" (default) or "skip" (record the failure in an
    ``error`` column and continue — useful for grids that include
    infeasible corners, e.g. WAL regions too small for the trigger).

    ``jobs``: process-level parallelism. Row order is the grid's
    cartesian order whatever ``jobs`` is, so sweep output is
    deterministic; ``runner`` must be picklable (a module-level
    function) when ``jobs > 1``. With ``jobs > 1`` and
    ``on_error="raise"`` the original traceback stays in the worker —
    the parent raises a :class:`RuntimeError` naming the failed point.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    names = list(grid.keys())
    result = SweepResult(param_names=names)
    points = [dict(zip(names, values))
              for values in itertools.product(*(list(grid[n])
                                                for n in names))]
    if jobs == 1 or len(points) <= 1:
        for params in points:
            row: dict[str, Any] = dict(params)
            try:
                row.update(runner(dict(params)))
            except Exception as exc:
                if on_error == "raise":
                    raise
                row["error"] = f"{type(exc).__name__}: {exc}"
            result.rows.append(row)
        return result

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        outcomes = list(pool.map(_run_point, itertools.repeat(runner),
                                 points))
    for params, (status, payload) in zip(points, outcomes):
        row = dict(params)
        if status == "ok":
            row.update(payload)
        elif on_error == "raise":
            raise RuntimeError(f"sweep point {params} failed: {payload}")
        else:
            row["error"] = payload
        result.rows.append(row)
    return result


def write_csv(result: SweepResult, path: str | Path) -> None:
    """Dump a sweep to CSV (union of all row keys, stable order).

    Heterogeneous rows are expected — an ``on_error="skip"`` sweep
    mixes measurement rows with error rows — so the writer takes the
    union of keys and renders every missing cell as an empty string
    (``restval=""``) rather than dropping or shifting columns.
    """
    if not result.rows:
        raise ValueError("empty sweep")
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=result.headers(),
                                restval="")
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)


# --------------------------------------------------------------------------
# design-space grids
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class EdgeSpec:
    """Knife-edge detection policy for one metric.

    ``factor`` is the multiplicative jump between *adjacent* grid
    points that counts as a cliff; ``min_jump`` is an absolute floor on
    the difference, so metrics hovering near zero don't flag noise
    (0.001 → 0.003 is a 3x ratio nobody should page over).
    """

    metric: str
    factor: float = 2.0
    min_jump: float = 0.0


@dataclass(frozen=True)
class GridSpec:
    """One named cartesian grid plus how to run and read it.

    ``runner`` must be a picklable callable ``(params) -> dict`` —
    a module-level function or a ``functools.partial`` over one — so
    the grid parallelizes across the ``--jobs`` process pool.
    """

    name: str
    #: axis name -> ordered values (adjacency for knife-edge detection
    #: follows this order)
    axes: dict[str, Sequence[Any]]
    runner: Runner
    #: metric the tuner and the top-N tables rank by, + direction
    objective: str = "score"
    maximize: bool = True
    #: cliff detectors evaluated over every axis
    edges: tuple[EdgeSpec, ...] = ()
    #: heatmap panels rendered into the report: (x axis, y axis, metric)
    panels: tuple[tuple[str, str, str], ...] = ()
    description: str = ""
    #: rebuilds one point's config object — ``(scale, params) ->
    #: SystemConfig | ClusterConfig`` — for the tuner's recommendation
    #: export; None = the grid cannot emit a recommended config
    config_builder: Callable[[Any, dict[str, Any]], Any] | None = None

    @property
    def size(self) -> int:
        out = 1
        for values in self.axes.values():
            out *= len(values)
        return out


class CachedRunner:
    """Wrap a grid runner in the on-disk result cache.

    The key is the *full parameter dict* plus the grid name, scale, and
    code digest (see :func:`repro.bench.cache.cache_key`), so two grid
    points of the same experiment can never collide. Only successful
    measurements are cached; infeasible points re-raise every time
    (they fail fast at build validation, and caching failures would
    hide fixes).

    Instances hold only picklable state (the inner runner, names,
    paths), so a cached grid still fans out over the process pool; each
    worker writes its own entries (distinct params -> distinct files).
    """

    def __init__(self, runner: Runner, grid_name: str, scale,
                 cache_dir: str | Path | None, refresh: bool = False):
        self.runner = runner
        self.grid_name = grid_name
        self.scale = scale
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.refresh = refresh

    def __call__(self, params: dict[str, Any]) -> dict[str, float]:
        from repro.bench import cache as result_cache

        if self.cache_dir is None:
            return self.runner(dict(params))
        key = result_cache.cache_key(self.grid_name, self.scale, params)
        if not self.refresh:
            hit = result_cache.load_values(key, self.cache_dir)
            if hit is not None:
                return hit
        values = self.runner(dict(params))
        result_cache.store_values(key, self.grid_name, values,
                                  self.cache_dir)
        return values


def run_grid(grid: GridSpec, scale, jobs: int = 1,
             cache_dir: str | Path | None = None,
             refresh: bool = False) -> SweepResult:
    """Run one :class:`GridSpec` through the (optionally cached) pool.

    Infeasible corners (e.g. ``dedicated`` PIDs on a shard count that
    does not fit the device) are recorded as error rows, not raised:
    a design-space sweep's job is to map the feasible region, and the
    mixed result exercises exactly the heterogeneous-row rendering
    this module guarantees.
    """
    runner = CachedRunner(grid.runner, grid.name, scale, cache_dir,
                          refresh)
    return sweep(dict(grid.axes), runner, on_error="skip", jobs=jobs)


# --------------------------------------------------------------------------
# knife-edge detection
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class KnifeEdge:
    """One detected cliff: a metric jumping across two *adjacent*
    values of one axis, every other parameter held fixed."""

    param: str
    low_value: Any
    high_value: Any
    #: the other parameters both points share
    fixed: tuple[tuple[str, Any], ...]
    metric: str
    low_metric: float
    high_metric: float

    @property
    def ratio(self) -> float:
        """Jump magnitude, always >= 1 (inf when one side is zero)."""
        lo, hi = sorted((abs(self.low_metric), abs(self.high_metric)))
        if lo == 0.0:
            return float("inf")
        return hi / lo


def detect_knife_edges(result: SweepResult,
                       edges: Sequence[EdgeSpec],
                       axes: dict[str, Sequence[Any]] | None = None,
                       ) -> list[KnifeEdge]:
    """Flag adjacent grid points whose metric jumps by > ``factor``.

    Adjacency is along one axis at a time (the axis order given by
    ``axes`` or recovered from the sweep's cartesian row order), with
    every other parameter identical — the discrete analogue of a large
    partial derivative. Error rows and rows missing the metric are
    skipped; a jump from exactly zero to anything above ``min_jump``
    is an infinite-ratio edge (the 6→5 ``gc_stop_segments`` cliff is
    literally "copy-free vs copying").
    """
    names = result.param_names
    if axes is None:
        axes = {n: result.axis_values(n) for n in names}
    index = {}
    for row in result.rows:
        if "error" in row:
            continue
        point = tuple(row.get(n) for n in names)
        index[point] = row
    found: list[KnifeEdge] = []
    for spec in edges:
        for ai, axis in enumerate(names):
            values = list(axes.get(axis, ()))
            for lo_v, hi_v in zip(values, values[1:]):
                for point, row in index.items():
                    if point[ai] != lo_v:
                        continue
                    other = point[:ai] + (hi_v,) + point[ai + 1:]
                    mate = index.get(other)
                    if mate is None:
                        continue
                    if spec.metric not in row or spec.metric not in mate:
                        continue
                    a = float(row[spec.metric])
                    b = float(mate[spec.metric])
                    if abs(b - a) < spec.min_jump:
                        continue
                    lo, hi = sorted((abs(a), abs(b)))
                    if lo != 0.0 and hi / lo < spec.factor:
                        continue
                    fixed = tuple(
                        (n, point[i]) for i, n in enumerate(names)
                        if i != ai
                    )
                    found.append(KnifeEdge(
                        param=axis, low_value=lo_v, high_value=hi_v,
                        fixed=fixed, metric=spec.metric,
                        low_metric=a, high_metric=b,
                    ))
    found.sort(key=lambda e: (-min(e.ratio, 1e18), e.metric, e.param,
                              str(e.fixed)))
    return found


def format_knife_edges(edges: Sequence[KnifeEdge],
                       limit: int = 10) -> str:
    """Render detected cliffs as an aligned table (worst first)."""
    from repro.bench.report import format_table

    if not edges:
        return "(no knife edges detected)"
    rows = []
    for e in edges[:limit]:
        ratio = "inf" if e.ratio == float("inf") else f"{e.ratio:.2f}x"
        fixed = " ".join(f"{k}={v}" for k, v in e.fixed)
        rows.append([e.param, f"{e.low_value}->{e.high_value}", e.metric,
                     e.low_metric, e.high_metric, ratio, fixed])
    table = format_table(
        ["axis", "step", "metric", "low", "high", "jump", "holding"],
        rows,
    )
    more = len(edges) - limit
    if more > 0:
        table += f"\n... and {more} more"
    return table
