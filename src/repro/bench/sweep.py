"""Parameter sweeps: run a grid of configurations, collect a table.

For sensitivity studies beyond the paper's point estimates — e.g. how
the SlimIO advantage moves with value size, client count, or device
over-provisioning. Results come back as rows of plain dicts and can be
dumped to CSV for external analysis.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable
from typing import Any

__all__ = ["SweepResult", "sweep", "write_csv"]

#: runner(params) -> dict of measured values
Runner = Callable[[dict[str, Any]], dict[str, float]]


@dataclass
class SweepResult:
    """All (params, measurements) rows of one sweep."""

    param_names: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        return [r[name] for r in self.rows]

    def best(self, metric: str, maximize: bool = True) -> dict[str, Any]:
        # rows recorded by on_error="skip" carry an "error" column and
        # no measurements; they can never be the best point
        candidates = [r for r in self.rows
                      if "error" not in r and metric in r]
        if not candidates:
            raise ValueError(
                f"no successful rows with metric {metric!r} "
                f"({len(self.rows)} rows total)"
            )
        pick = max if maximize else min
        return pick(candidates, key=lambda r: r[metric])

    def format(self) -> str:
        from repro.bench.report import format_table

        if not self.rows:
            return "(empty sweep)"
        headers = list(self.rows[0].keys())
        return format_table(headers, [[r[h] for h in headers]
                                      for r in self.rows])


def _run_point(runner: Runner, params: dict[str, Any]) -> tuple:
    """One grid point, exception-safe — the process-pool work unit.

    Module-level (not a closure) so it pickles for
    ``ProcessPoolExecutor``; returns ``("ok", measurements)`` or
    ``("err", message)`` instead of raising so worker tracebacks
    don't tear down the pool.
    """
    try:
        return "ok", runner(dict(params))
    except Exception as exc:  # noqa: BLE001 — re-raised by the caller
        return "err", f"{type(exc).__name__}: {exc}"


def sweep(grid: dict[str, Iterable[Any]], runner: Runner,
          on_error: str = "raise", jobs: int = 1) -> SweepResult:
    """Run ``runner`` for every point of the cartesian ``grid``.

    ``on_error``: "raise" (default) or "skip" (record the failure in an
    ``error`` column and continue — useful for grids that include
    infeasible corners, e.g. WAL regions too small for the trigger).

    ``jobs``: process-level parallelism. Row order is the grid's
    cartesian order whatever ``jobs`` is, so sweep output is
    deterministic; ``runner`` must be picklable (a module-level
    function) when ``jobs > 1``. With ``jobs > 1`` and
    ``on_error="raise"`` the original traceback stays in the worker —
    the parent raises a :class:`RuntimeError` naming the failed point.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    names = list(grid.keys())
    result = SweepResult(param_names=names)
    points = [dict(zip(names, values))
              for values in itertools.product(*(list(grid[n])
                                                for n in names))]
    if jobs == 1 or len(points) <= 1:
        for params in points:
            row: dict[str, Any] = dict(params)
            try:
                row.update(runner(dict(params)))
            except Exception as exc:
                if on_error == "raise":
                    raise
                row["error"] = f"{type(exc).__name__}: {exc}"
            result.rows.append(row)
        return result

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        outcomes = list(pool.map(_run_point, itertools.repeat(runner),
                                 points))
    for params, (status, payload) in zip(points, outcomes):
        row = dict(params)
        if status == "ok":
            row.update(payload)
        elif on_error == "raise":
            raise RuntimeError(f"sweep point {params} failed: {payload}")
        else:
            row["error"] = payload
        result.rows.append(row)
    return result


def write_csv(result: SweepResult, path: str | Path) -> None:
    """Dump a sweep to CSV (union of all row keys, stable order)."""
    if not result.rows:
        raise ValueError("empty sweep")
    headers: list[str] = []
    for row in result.rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=headers)
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)
