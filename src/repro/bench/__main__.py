"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.bench list
    python -m repro.bench table3 [--scale test|bench]
    python -m repro.bench all [--scale test|bench]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS
from repro.bench.scales import get_scale


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SlimIO paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. table3), 'all', or 'list'")
    parser.add_argument("--scale", default="bench",
                        help="scale preset: test | bench (default)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    scale = get_scale(args.scale)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    exit_code = 0
    for name in names:
        fn = EXPERIMENTS.get(name)
        if fn is None:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        t0 = time.time()
        result = fn(scale)
        elapsed = time.time() - t0
        print(result.format())
        print(f"\n(regenerated in {elapsed:.1f}s wall at scale "
              f"'{scale.name}')\n")
        if not result.shapes_hold:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
