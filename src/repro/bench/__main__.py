"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.bench list
    python -m repro.bench table3 [--scale test|bench|prod]
    python -m repro.bench all [--scale test|bench|prod] [--jobs N]
    python -m repro.bench table1 --profile 25   # cProfile hotspots
    python -m repro.bench perf [--out BENCH_perf.json]
    python -m repro.bench sweep --comprehensive --scale tiny --jobs 4
    python -m repro.bench tune --workload cluster --scale tiny

Reports are deterministic: the same tree, scale, and experiment set
produce a byte-identical report file whatever ``--jobs`` is (wall-clock
timings go to stderr, never into the report). That determinism is what
makes the on-disk result cache (``out/cache/``) safe: a cached report
is indistinguishable from a regenerated one.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.bench import cache as result_cache
from repro.bench.experiments import EXPERIMENTS
from repro.bench.scales import get_scale


def _run_experiment(name: str, scale_name: str, sanitize: bool,
                    faults: bool = False) -> tuple[str, bool, float]:
    """One experiment -> (report text, shapes ok, wall seconds).

    Module-level so it pickles as a ``ProcessPoolExecutor`` work unit;
    the scale is rebuilt from its name because Scale methods construct
    unpicklable simulation objects lazily.
    """
    scale = get_scale(scale_name)
    if sanitize:
        scale = replace(scale, sanitize=True)
    if faults:
        scale = replace(scale, faults=True)
    t0 = time.perf_counter()
    result = EXPERIMENTS[name](scale)
    elapsed = time.perf_counter() - t0
    text = (f"{result.format()}\n\n(regenerated at scale "
            f"'{scale.name}')\n")
    return text, result.shapes_hold, elapsed


def _sweep_main(argv) -> int:
    """The ``sweep`` subcommand: map the design space, flag its cliffs.

    Per grid: a CSV of every (params, measurements) row, top-N
    best/worst tables, knife-edge detection over adjacent grid points,
    and heatmap panels — all byte-deterministic whatever ``--jobs``
    (wall timings stderr-only, rows in cartesian order, cached points
    indistinguishable from fresh ones).
    """
    from repro.bench.experiments import sweep_grids
    from repro.bench.plots import sweep_panels
    from repro.bench.report import format_top_tables
    from repro.bench.sweep import (
        detect_knife_edges,
        format_knife_edges,
        run_grid,
        write_csv,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench sweep",
        description="Design-space exploration: cartesian grids over RU "
                    "size, PID policy, GC watermarks, WAL policy, shard "
                    "count, and value size.",
    )
    parser.add_argument("--comprehensive", action="store_true",
                        help="run every registered grid")
    parser.add_argument("--grid", action="append", default=None,
                        metavar="NAME",
                        help="run one named grid (repeatable); "
                             "see --list")
    parser.add_argument("--list", action="store_true",
                        help="list registered grids and exit")
    parser.add_argument("--scale", default="tiny",
                        help="scale preset: tiny (default) | test | "
                             "bench | prod")
    parser.add_argument("--jobs", type=int, default=1,
                        help="grid points in N parallel processes "
                             "(output is identical whatever N)")
    parser.add_argument("--out-dir", default="out/sweep",
                        help="CSV/report directory (default: out/sweep)")
    parser.add_argument("--top", type=int, default=5,
                        help="rows in the best/worst tables")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk result cache entirely")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute even on cache hit")
    parser.add_argument("--cache-dir",
                        default=str(result_cache.DEFAULT_CACHE_DIR),
                        help="result cache location (default: out/cache)")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale)
    grids = sweep_grids(scale.name)
    if args.list:
        for name, grid in grids.items():
            print(f"{name}: {grid.size} points over "
                  f"{'x'.join(str(len(v)) for v in grid.axes.values())} "
                  f"({', '.join(grid.axes)})")
        return 0
    if args.comprehensive:
        names = list(grids)
    elif args.grid:
        names = list(dict.fromkeys(args.grid))
        for name in names:
            if name not in grids:
                print(f"unknown grid {name!r}; try --list",
                      file=sys.stderr)
                return 2
    else:
        print("choose --comprehensive or --grid NAME (see --list)",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    cache_dir = None if args.no_cache else args.cache_dir
    chunks = []
    for name in names:
        grid = grids[name]
        t0 = time.perf_counter()
        result = run_grid(grid, scale, jobs=args.jobs,
                          cache_dir=cache_dir, refresh=args.refresh)
        elapsed = time.perf_counter() - t0
        print(f"({name}: {grid.size} points, {elapsed:.1f}s wall)",
              file=sys.stderr)
        csv_path = out_dir / f"{name}_{scale.name}.csv"
        write_csv(result, csv_path)
        edges = detect_knife_edges(result, grid.edges,
                                   axes=dict(grid.axes))
        text = "\n".join([
            f"== Sweep: {name} @ {scale.name} "
            f"({grid.size} points) ==",
            grid.description, "",
            result.format(), "",
            format_top_tables(result, grid.objective, n=args.top,
                              maximize=grid.maximize), "",
            "Knife edges (adjacent points, metric jump >= factor):",
            format_knife_edges(edges), "",
            sweep_panels(result, grid.panels), "",
            f"(CSV: {csv_path})", "",
        ])
        chunks.append(text)
        print(text)
    report_path = out_dir / f"sweep_{scale.name}_report.txt"
    report_path.write_text("\n".join(chunks))
    print(f"(report written to {report_path})", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "perf":
        from repro.bench.perf import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "tune":
        from repro.bench.tune import main as tune_main

        return tune_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SlimIO paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="+", metavar="experiment",
                        help="experiment ids (e.g. table3 figure4), "
                             "'all', 'list', 'perf', 'sweep', or 'tune'")
    parser.add_argument("--scale", default="bench",
                        help="scale preset: test | bench (default) | prod")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file "
                             "(default: out/bench_<scale>_results.txt; "
                             "'-' disables the file)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="run experiments in N parallel processes "
                             "(report content is identical whatever N)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk result cache entirely")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute even on cache hit, then "
                             "rewrite the cache entry")
    parser.add_argument("--cache-dir",
                        default=str(result_cache.DEFAULT_CACHE_DIR),
                        help="result cache location (default: out/cache)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the repro.analysis runtime "
                             "sanitizers active on every SlimIO system "
                             "(validates region/PID placement, slot "
                             "promotion, and fork-race freedom)")
    parser.add_argument("--profile", type=int, default=None, metavar="N",
                        help="run one experiment under cProfile and "
                             "print the top-N cumulative hotspots to "
                             "stderr (bypasses the result cache; the "
                             "report itself stays deterministic)")
    parser.add_argument("--faults", action="store_true",
                        help="run every SlimIO system under the "
                             "repro.faults transient-error injector "
                             "(seeded NVMe errors absorbed by the ring "
                             "retry policy; cached separately from "
                             "default reports)")
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    scale = get_scale(args.scale)
    if args.sanitize:
        scale = replace(scale, sanitize=True)
    if args.faults:
        scale = replace(scale, faults=True)
    if "all" in args.experiments:
        names = list(EXPERIMENTS)
    else:
        names = list(dict.fromkeys(args.experiments))  # dedupe, keep order
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
    out_path = args.out
    if out_path is None:
        out_path = f"out/bench_{scale.name}_results.txt"

    if args.profile is not None:
        # profiling shell: wall-time introspection only, stderr only —
        # the report text is untouched (slimlint SLIM003 sanctions
        # this file as a measurement shell)
        if args.profile < 1:
            print("--profile must be >= 1", file=sys.stderr)
            return 2
        if len(names) != 1:
            print("--profile takes exactly one experiment",
                  file=sys.stderr)
            return 2
        import cProfile
        import pstats

        prof = cProfile.Profile()
        prof.enable()
        text, ok, elapsed = _run_experiment(names[0], scale.name,
                                            args.sanitize, args.faults)
        prof.disable()
        print(f"({names[0]}: {elapsed:.1f}s wall under cProfile)",
              file=sys.stderr)
        stats = pstats.Stats(prof, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(args.profile)
        print(text)
        return 0 if ok else 1

    # resolve cache hits first; only misses go to the worker pool
    done: dict[str, tuple[str, bool]] = {}
    keys: dict[str, str] = {}
    if not args.no_cache:
        for name in names:
            keys[name] = result_cache.cache_key(name, scale)
            if not args.refresh:
                hit = result_cache.load(keys[name], args.cache_dir)
                if hit is not None:
                    done[name] = hit
                    print(f"({name}: cache hit)", file=sys.stderr)
    todo = [name for name in names if name not in done]

    if len(todo) > 1 and args.jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            futures = {name: pool.submit(_run_experiment, name,
                                         scale.name, args.sanitize,
                                         args.faults)
                       for name in todo}
            for name in todo:
                text, ok, elapsed = futures[name].result()
                done[name] = (text, ok)
                print(f"({name}: {elapsed:.1f}s wall)", file=sys.stderr)
    else:
        for name in todo:
            text, ok, elapsed = _run_experiment(name, scale.name,
                                                args.sanitize, args.faults)
            done[name] = (text, ok)
            print(f"({name}: {elapsed:.1f}s wall)", file=sys.stderr)

    if not args.no_cache:
        for name in todo:
            text, ok = done[name]
            result_cache.store(keys[name], name, text, ok, args.cache_dir)

    exit_code = 0
    chunks = []
    for name in names:  # EXPERIMENTS order — independent of finish order
        text, ok = done[name]
        print(text)
        chunks.append(text)
        if not ok:
            exit_code = 1
    if out_path != "-":
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(chunks))
        print(f"(report written to {path})", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
