"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.bench list
    python -m repro.bench table3 [--scale test|bench]
    python -m repro.bench all [--scale test|bench]
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS
from repro.bench.scales import get_scale


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SlimIO paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        help="experiment id (e.g. table3), 'all', or 'list'")
    parser.add_argument("--scale", default="bench",
                        help="scale preset: test | bench (default)")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file "
                             "(default: out/bench_<scale>_results.txt; "
                             "'-' disables the file)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with the repro.analysis runtime "
                             "sanitizers active on every SlimIO system "
                             "(validates region/PID placement, slot "
                             "promotion, and fork-race freedom)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    scale = get_scale(args.scale)
    if args.sanitize:
        scale = replace(scale, sanitize=True)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    out_path = args.out
    if out_path is None:
        out_path = f"out/bench_{scale.name}_results.txt"
    exit_code = 0
    chunks = []
    for name in names:
        fn = EXPERIMENTS.get(name)
        if fn is None:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        result = fn(scale)
        elapsed = time.perf_counter() - t0
        text = (f"{result.format()}\n\n(regenerated in {elapsed:.1f}s "
                f"wall at scale '{scale.name}')\n")
        print(text)
        chunks.append(text)
        if not result.shapes_hold:
            exit_code = 1
    if out_path != "-":
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(chunks))
        print(f"(report written to {path})", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
