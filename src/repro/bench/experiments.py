"""One function per paper table/figure (§2.2, §3.1, §5).

Absolute numbers are not expected to match the paper (its testbed is a
dual-Xeon host with a FEMU-emulated 180 GB FDP SSD; ours is a scaled
discrete-event model). Every experiment therefore carries explicit
*shape checks* — who wins, in which direction, roughly by how much —
mirroring the claims the paper makes about that table or figure.
"""

from __future__ import annotations

import numpy as np

from repro import build_baseline, build_slimio
from repro.bench.report import ExperimentResult
from repro.bench.scales import BENCH_SCALE, Scale
from repro.imdb import ClientOp
from repro.persist import LoggingPolicy, SnapshotKind
from repro.workloads import make_key, make_value

__all__ = [
    "table1", "table2", "table3", "table4", "table5",
    "figure2a", "figure2b", "figure4", "figure5", "cluster",
    "tailtrace", "crashmatrix", "openloop", "EXPERIMENTS",
    "single_sweep_config", "single_sweep_point",
    "cluster_sweep_config", "cluster_sweep_point", "sweep_grids",
]

MB = 1024 * 1024


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------

def _build(builder, config):
    """Stand up a system with a telemetry registry attached, so every
    experiment row can carry a counter/WAF snapshot of its run."""
    system = builder(config=config)
    system.attach_obs()
    return system


def _telemetry(system) -> dict:
    """Final instrument snapshot of a (possibly stopped) system."""
    return system.obs.snapshot() if system.obs is not None else {}


def _fill_store(system, n_keys: int, value_size: int) -> None:
    """Dataset setup through the server (pays sim time, builds WAL)."""
    env = system.env

    def filler():
        for i in range(n_keys):
            key = make_key(i)
            yield from system.server.execute(
                ClientOp("SET", key, make_value(key, value_size))
            )

    env.run(until=env.process(filler(), name="fill"))


def _quiesce(system) -> None:
    """Drain WAL buffers and wait for writeback so a 'Snapshot Only'
    scenario really starts from an idle system."""
    env = system.env

    def q():
        yield from system.wal.flush_now()
        cache = getattr(system, "cache", None)
        if cache is not None:
            while cache.dirty_bytes > 0:
                yield env.idle_wait(1e-3)
        yield env.timeout(5e-3)

    env.run(until=env.process(q(), name="quiesce"))


def _snapshot_stats(system, kind=SnapshotKind.ON_DEMAND):
    proc = system.server.start_snapshot(kind)
    stats = system.env.run(until=proc)
    return stats


def _mbps(x: float) -> float:
    return x / MB


# --------------------------------------------------------------------------
# Table 1 — §2.2: degradation + memory growth during snapshots (baseline)
# --------------------------------------------------------------------------

def table1(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """RPS and peak memory, WAL-only vs Snapshot&WAL, on EXT4 and F2FS."""
    result = ExperimentResult(
        "Table 1",
        "Performance degradation and memory growth during snapshots",
        ["FS", "Phase", "Requests/s", "Peak memory (MB)"],
        paper_reference=(
            "EXT4: WAL-only 59,512 rps / 26 GB; Snapshot&WAL 42,885 / 51 GB\n"
            "F2FS: WAL-only 61,327 rps / 26 GB; Snapshot&WAL 43,112 / 52 GB\n"
            "(snapshot phase loses 28-31% RPS; memory roughly doubles)"
        ),
    )
    for fs in ("ext4", "f2fs"):
        system = _build(
            build_baseline, scale.system_config(gc_pressure=False, fs=fs)
        )
        workload = scale.redis_bench(snapshot_at_fraction=0.45)
        rep = workload.run(system)
        system.stop()
        result.telemetry[fs] = _telemetry(system)
        result.add_row(fs, "WAL only", rep.rps_wal_only,
                       _mbps(rep.steady_memory))
        result.add_row(fs, "Snapshot&WAL", rep.rps_wal_snapshot,
                       _mbps(rep.peak_memory))
        result.check(
            f"{fs}: snapshot phase RPS at least 10% below WAL-only",
            rep.rps_wal_snapshot < 0.9 * rep.rps_wal_only,
        )
        result.check(
            f"{fs}: peak memory grows by >40% during the snapshot",
            rep.peak_memory > 1.4 * rep.steady_memory,
        )
    return result


# --------------------------------------------------------------------------
# Table 2 — §3.1.2: file-system CPU share of the snapshot process (F2FS)
# --------------------------------------------------------------------------

def table2(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """CPU usage of the FS write path inside the snapshot process."""
    result = ExperimentResult(
        "Table 2",
        "File-system share of snapshot-process time (F2FS baseline)",
        ["Scenario", "FS share of snapshot time (%)"],
        paper_reference=(
            "Snapshot Only: 11.53%   Snapshot&WAL: 13.61%\n"
            "(control-path CPU, grows under concurrency)"
        ),
        notes=("share = control-path time (syscall + fs + page-cache "
               "management + commit-lock wait) over the snapshot "
               "process's CPU time (device waits excluded), from the "
               "snapshot child's account — the paper's perf-style "
               "CPU-cycle attribution"),
    )
    shares = {}
    for scenario, concurrent in (("Snapshot Only", False),
                                 ("Snapshot&WAL", True)):
        system = _build(
            build_baseline,
            scale.system_config(gc_pressure=False, fs="f2fs",
                                trigger=False),
        )
        _fill_store(system, scale.redis_keys, scale.redis_value)
        _quiesce(system)
        if concurrent:
            workload = scale.redis_bench(
                total_ops=max(scale.redis_ops, 2000),
                snapshot_at_fraction=0.1,
            )
            workload.run(system)
            stats = system.metrics.snapshots[0]
        else:
            stats = _snapshot_stats(system)
        system.stop()
        result.telemetry[scenario] = _telemetry(system)
        fs_time = sum(stats.breakdown.get(k, 0.0) for k in
                      ("fs", "fs_lock_wait", "syscall", "pagecache"))
        cpu_time = sum(v for k, v in stats.breakdown.items()
                       if k not in ("ssd_wait", "dirty_throttle"))
        share = 100.0 * fs_time / cpu_time
        shares[scenario] = share
        result.add_row(scenario, share)
    result.check(
        "FS share does not shrink materially under concurrency "
        "(paper: it grows ~2pp)",
        shares["Snapshot&WAL"] > shares["Snapshot Only"] - 1.0,
    )
    result.check(
        "FS share is a non-negligible fraction (>1%)",
        shares["Snapshot Only"] > 1.0,
    )
    return result


# --------------------------------------------------------------------------
# Figure 2a — §3.1: snapshot time attribution across three scenarios
# --------------------------------------------------------------------------

def _fig2_scenarios(scale: Scale):
    """Run the three §3.1 scenarios on the baseline; returns
    {scenario: SnapshotStats}."""
    out = {}
    telemetry = {}
    # (1) Snapshot Only: quiescent server, large device
    system = _build(
        build_baseline, scale.system_config(gc_pressure=False, trigger=False))
    _fill_store(system, scale.redis_keys, scale.redis_value)
    _quiesce(system)
    out["Snapshot Only"] = _snapshot_stats(system)
    telemetry["Snapshot Only"] = _telemetry(system)
    system.stop()
    # (2) Snapshot & WAL: concurrent clients, large device
    system = _build(
        build_baseline, scale.system_config(gc_pressure=False, trigger=False))
    workload = scale.redis_bench(snapshot_at_fraction=0.3)
    workload.run(system)
    out["Snapshot & WAL"] = system.metrics.snapshots[0]
    telemetry["Snapshot & WAL"] = _telemetry(system)
    system.stop()
    # (3) Snapshot & WAL (under GC): small device + churn warmup; the
    # WAL-snapshot trigger stays on so the log rotates (it is also what
    # creates the short-lived/long-lived mix on the device)
    system = _build(
        build_baseline, scale.system_config(gc_pressure=True, trigger=True))
    workload = scale.redis_bench(snapshot_at_fraction=0.6)
    workload.run(system, warmup_ops=scale.warmup_ops)
    snaps = system.metrics.snapshots
    out["Snapshot & WAL (under GC)"] = max(snaps, key=lambda s: s.duration)
    out["_gc_erased"] = system.device.ftl.stats.segments_erased
    telemetry["Snapshot & WAL (under GC)"] = _telemetry(system)
    system.stop()
    out["_telemetry"] = telemetry
    return out


def figure2a(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        "Figure 2a",
        "Snapshot time distribution (in-memory / kernel I/O / SSD wait)",
        ["Scenario", "Total (s)", "In-memory (%)", "Kernel I/O (%)",
         "SSD wait (%)"],
        paper_reference=(
            "Snapshot Only: ~15% of time in the kernel I/O path; the "
            "kernel+SSD share grows with concurrent WAL and grows again "
            "under GC; total snapshot time rises across the scenarios"
        ),
    )
    runs = _fig2_scenarios(scale)
    gc_erased = runs.pop("_gc_erased")
    result.telemetry = runs.pop("_telemetry")
    totals = {}
    kernel_share = {}
    for scenario, stats in runs.items():
        d = stats.duration
        mem = 100.0 * stats.time_in_memory() / d
        ker = 100.0 * stats.time_in_kernel() / d
        ssd = 100.0 * stats.time_on_ssd() / d
        totals[scenario] = d
        kernel_share[scenario] = ker + ssd
        result.add_row(scenario, d, mem, ker, ssd)
    result.check(
        "concurrent WAL does not make the snapshot faster",
        totals["Snapshot & WAL"] > totals["Snapshot Only"] * 0.98,
    )
    result.check(
        "snapshot takes longest under GC",
        totals["Snapshot & WAL (under GC)"] > totals["Snapshot & WAL"],
    )
    result.check("GC actually ran in scenario 3", gc_erased > 0)
    result.check(
        "non-in-memory share grows with WAL concurrency",
        kernel_share["Snapshot & WAL"] > kernel_share["Snapshot Only"],
    )
    return result


def figure2b(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        "Figure 2b",
        "Snapshot vs ideal throughput across the three scenarios",
        ["Scenario", "Ideal (MB/s)", "Snapshot (MB/s)",
         "Snapshot/Ideal (%)"],
        paper_reference=(
            "Snapshot Only: ~15% below ideal; Snapshot&WAL: ~20% below "
            "ideal; snapshot throughput degrades further under GC while "
            "WAL throughput stays comparatively stable"
        ),
        notes="ideal = raw bytes / in-memory time (I/O fully overlapped)",
    )
    runs = _fig2_scenarios(scale)
    runs.pop("_gc_erased")
    result.telemetry = runs.pop("_telemetry")
    ratios = {}
    for scenario, stats in runs.items():
        ideal = stats.raw_bytes / stats.time_in_memory()
        actual = stats.raw_bytes / stats.duration
        ratios[scenario] = actual / ideal
        result.add_row(scenario, _mbps(ideal), _mbps(actual),
                       100.0 * actual / ideal)
    result.check(
        "snapshot-only throughput is below ideal",
        ratios["Snapshot Only"] < 0.98,
    )
    result.check(
        "concurrent WAL does not raise snapshot efficiency",
        ratios["Snapshot & WAL"] < ratios["Snapshot Only"] * 1.02,
    )
    result.check(
        "GC-pressured snapshot is the least efficient of the three",
        ratios["Snapshot & WAL (under GC)"]
        < min(ratios["Snapshot Only"], ratios["Snapshot & WAL"]) * 1.02,
    )
    return result


# --------------------------------------------------------------------------
# Tables 3 & 4 — §5.2: overall evaluation
# --------------------------------------------------------------------------

def _overall_rows(scale: Scale, workload_factory, gc_pressure: bool,
                  with_get: bool):
    rows = []
    reports = {}
    telemetry = {}
    for policy in (LoggingPolicy.PERIODICAL, LoggingPolicy.ALWAYS):
        for sys_name, builder in (("Baseline", build_baseline),
                                  ("SlimIO", build_slimio)):
            cfg = scale.system_config(gc_pressure=gc_pressure,
                                      policy=policy)
            system = _build(builder, cfg)
            workload = workload_factory()
            rep = workload.run(
                system,
                warmup_ops=scale.warmup_ops if gc_pressure else 0,
            )
            system.stop()
            reports[(policy, sys_name)] = rep
            telemetry[f"{policy.value}/{sys_name}"] = _telemetry(system)
            row = [policy.value, sys_name,
                   rep.rps_wal_only, _mbps(rep.steady_memory),
                   rep.rps_wal_snapshot, _mbps(rep.peak_memory),
                   rep.rps, rep.mean_snapshot_time,
                   rep.set_p999 * 1e3]
            if with_get:
                row.append(rep.get_p999 * 1e3)
            row.append(rep.waf)
            rows.append(row)
    return rows, reports, telemetry


def _overall_checks(result: ExperimentResult, reports, check_waf: bool):
    for policy in (LoggingPolicy.PERIODICAL, LoggingPolicy.ALWAYS):
        base = reports[(policy, "Baseline")]
        slim = reports[(policy, "SlimIO")]
        p = policy.value
        result.check(f"{p}: SlimIO WAL-only RPS beats baseline",
                     slim.rps_wal_only > base.rps_wal_only)
        result.check(f"{p}: SlimIO average RPS beats baseline",
                     slim.rps > base.rps)
        result.check(f"{p}: SlimIO snapshot completes faster",
                     slim.mean_snapshot_time < base.mean_snapshot_time)
        result.check(f"{p}: SlimIO SET p999 is lower",
                     slim.set_p999 < base.set_p999)
        result.check(
            f"{p}: snapshot-phase RPS is roughly at parity "
            "(fork/CoW dominates both)",
            slim.rps_wal_snapshot > 0.6 * base.rps_wal_snapshot,
        )
        result.check(
            f"{p}: memory footprints comparable (within 25%)",
            abs(slim.peak_memory - base.peak_memory)
            < 0.25 * max(base.peak_memory, 1),
        )
        if check_waf:
            result.check(f"{p}: SlimIO WAF == 1.00",
                         abs(slim.waf - 1.0) < 1e-9)
            if policy is LoggingPolicy.PERIODICAL:
                result.check(f"{p}: baseline WAF > 1.00", base.waf > 1.0)
            else:
                # scaled Always-Log runs retire WAL data so promptly
                # that background trims keep even the conventional
                # device copy-free; direction (>=) still holds
                result.check(f"{p}: baseline WAF >= SlimIO WAF",
                             base.waf >= slim.waf)
    always_gain = (reports[(LoggingPolicy.ALWAYS, "SlimIO")].rps
                   / max(reports[(LoggingPolicy.ALWAYS, "Baseline")].rps, 1))
    periodical_gain = (
        reports[(LoggingPolicy.PERIODICAL, "SlimIO")].rps
        / max(reports[(LoggingPolicy.PERIODICAL, "Baseline")].rps, 1))
    result.check(
        "Always-Log gains exceed Periodical-Log gains (paper: 60% vs 15%)",
        always_gain > periodical_gain,
    )


def table3(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """Overall evaluation, redis-benchmark workload (GC pressure)."""
    result = ExperimentResult(
        "Table 3",
        "Overall evaluation with the Redis benchmark workload",
        ["Policy", "System", "WAL-only RPS", "Mem (MB)",
         "WAL&Snap RPS", "Peak mem (MB)", "Avg RPS", "Snap time (s)",
         "SET p999 (ms)", "WAF"],
        paper_reference=(
            "Periodical: baseline 57,482/42,301 rps, avg 47,993, snap 148 s, "
            "p999 5.103 ms, WAF 1.14; SlimIO 75,676/42,517, avg 55,043, "
            "snap 110 s, p999 2.351 ms, WAF 1.00\n"
            "Always: baseline 21,416/16,419, avg 19,044, snap 139 s, "
            "p999 7.822 ms, WAF 1.24; SlimIO 33,128/25,542, avg 31,407, "
            "snap 109 s, p999 3.343 ms, WAF 1.00"
        ),
    )

    def factory():
        return scale.redis_bench(snapshot_at_fraction=0.5)

    rows, reports, telemetry = _overall_rows(scale, factory,
                                             gc_pressure=True,
                                             with_get=False)
    result.rows = rows
    result.telemetry = telemetry
    _overall_checks(result, reports, check_waf=True)
    return result


def table4(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """Overall evaluation, YCSB-A workload (no GC)."""
    result = ExperimentResult(
        "Table 4",
        "Overall evaluation with the YCSB-A workload",
        ["Policy", "System", "WAL-only RPS", "Mem (MB)",
         "WAL&Snap RPS", "Peak mem (MB)", "Avg RPS", "Snap time (s)",
         "SET p999 (ms)", "GET p999 (ms)", "WAF"],
        paper_reference=(
            "Periodical: baseline 65,121/53,774, avg 61,696, snap 253 s, "
            "SET p999 0.711 ms, GET p999 0.673 ms; SlimIO 74,911/56,239, "
            "avg 68,244, snap 225 s, 0.635/0.577 ms\n"
            "Always: baseline 6,235/4,987, avg 6,192, snap 239 s, "
            "2.105/2.091 ms; SlimIO 12,537/10,285, avg 12,029, snap 224 s, "
            "0.950/0.933 ms"
        ),
    )

    def factory():
        return scale.ycsb_a()

    rows, reports, telemetry = _overall_rows(scale, factory,
                                             gc_pressure=False,
                                             with_get=True)
    result.rows = rows
    result.telemetry = telemetry
    _overall_checks(result, reports, check_waf=False)
    for policy in (LoggingPolicy.PERIODICAL, LoggingPolicy.ALWAYS):
        base = reports[(policy, "Baseline")]
        slim = reports[(policy, "SlimIO")]
        result.check(
            f"{policy.value}: SlimIO GET p999 is lower (or at parity)",
            slim.get_p999 <= base.get_p999 * 1.05,
        )
    return result


# --------------------------------------------------------------------------
# Table 5 — §5.3: recovery
# --------------------------------------------------------------------------

def table5(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        "Table 5",
        "Recovery from a published snapshot",
        ["System", "Recovery time (s)", "Recovery throughput (MB/s)"],
        paper_reference=(
            "Baseline 55.38 s at 374.77 MB/s; SlimIO 44.12 s at "
            "471.13 MB/s (~20% faster via the passthru read-ahead buffer)"
        ),
    )
    outcomes = {}
    for name, builder in (("Baseline", build_baseline),
                          ("SlimIO", build_slimio)):
        system = _build(
            builder, scale.system_config(gc_pressure=False, trigger=False))
        _fill_store(system, scale.redis_keys, scale.redis_value)
        _quiesce(system)
        stats = _snapshot_stats(system, SnapshotKind.ON_DEMAND)
        assert stats.ok
        system.crash()  # cold caches: recovery reads from flash
        result_rec = system.env.run(
            until=system.env.process(
                system.recover(SnapshotKind.ON_DEMAND))
        )
        system.stop()
        result.telemetry[name] = _telemetry(system)
        if result_rec.snapshot_entries != scale.redis_keys:
            raise AssertionError("recovery did not restore every entry")
        outcomes[name] = result_rec
        result.add_row(name, result_rec.duration,
                       _mbps(result_rec.throughput))
    result.check(
        "SlimIO recovers faster than the baseline",
        outcomes["SlimIO"].duration < outcomes["Baseline"].duration,
    )
    result.check(
        "SlimIO recovery throughput is higher",
        outcomes["SlimIO"].throughput > outcomes["Baseline"].throughput,
    )
    return result


# --------------------------------------------------------------------------
# Figures 4 & 5 — §5.4: runtime RPS stability
# --------------------------------------------------------------------------

def _timeline_run(scale: Scale, builder, **config_overrides):
    import dataclasses

    # figures 4/5 run the device at the paper's high utilization, where
    # GC must move valid data rather than just erase trimmed regions
    heavy = dataclasses.replace(
        scale,
        small_device_mb=scale.gc_heavy_device_mb,
        wal_trigger_bytes=scale.gc_heavy_trigger_bytes,
    )
    cfg = heavy.system_config(gc_pressure=True,
                              policy=LoggingPolicy.PERIODICAL,
                              **config_overrides)
    scale = heavy
    system = _build(builder, cfg)
    workload = scale.redis_bench(
        total_ops=scale.redis_ops, snapshot_at_fraction=None)
    rep = workload.run(system, warmup_ops=scale.warmup_ops)
    gc_runs = system.device.ftl.stats.segments_erased
    system.stop()
    return rep, gc_runs, _telemetry(system)


def _dip_metrics(timeline):
    centers, rates = timeline
    if len(rates) < 4:
        return 1.0, 0
    med = float(np.median(rates))
    if med <= 0:
        return 1.0, 0
    dips = int(np.sum(rates < 0.5 * med))
    return float(np.min(rates)) / med, dips


def figure4(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """Baseline vs SlimIO-without-FDP under GC: the nosedives."""
    result = ExperimentResult(
        "Figure 4",
        "Runtime RPS under GC: baseline vs SlimIO without FDP",
        ["System", "Median RPS", "Min/Median", "Deep dips (<50% median)",
         "GC segment erases"],
        paper_reference=(
            "Baseline stays comparatively stable through GC windows; "
            "SlimIO WITHOUT FDP suffers sharp RPS drops — occasionally "
            "to zero — because direct writes expose it to GC stalls"
        ),
    )
    metrics = {}
    reports = {}
    for name, builder, overrides in (
        ("Baseline", build_baseline, {}),
        ("SlimIO (no FDP)", build_slimio, {"fdp": False}),
    ):
        rep, gc_runs, telemetry = _timeline_run(scale, builder, **overrides)
        ratio, dips = _dip_metrics(rep.timeline)
        med = float(np.median(rep.timeline[1]))
        metrics[name] = (ratio, dips)
        reports[name] = rep
        result.telemetry[name] = telemetry
        result.add_row(name, med, ratio, dips, gc_runs)
        result.series[name] = rep.timeline
    result.check(
        "GC events occurred in both runs",
        all(row[-1] > 0 for row in result.rows),
    )
    result.check(
        "the conventional kernel path pays GC copies (baseline WAF > 1)",
        reports["Baseline"].waf > 1.0,
    )
    result.check(
        "timelines recorded at useful resolution",
        all(len(r) >= 10 for _, r in result.series.values()),
    )
    result.notes = (
        "Known deviation (see EXPERIMENTS.md): the paper's non-FDP "
        "SlimIO nosedives are driven by GC valid-page copies at ~90% "
        "sustained device utilization. At our ~1000x-smaller scale, "
        "SlimIO's whole-region TRIMs retire entire flash segments, so "
        "its GC stays copy-free and its timeline is *more* stable than "
        "the paper shows; the exposure mechanism (direct writes with a "
        "bounded user buffer and no page cache) is implemented and "
        "surfaces as nosedives whenever GC does have to move data."
    )
    return result


def figure5(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """SlimIO with FDP: stable RPS through the same GC-heavy run."""
    result = ExperimentResult(
        "Figure 5",
        "Runtime RPS under GC: SlimIO with FDP",
        ["System", "Median RPS", "Min/Median", "Deep dips (<50% median)",
         "WAF", "GC pages copied"],
        paper_reference=(
            "With the FDP SSD, runtime RPS stays stable (70-80k in the "
            "paper) outside snapshot windows; WAF is 1.00"
        ),
    )
    rep_fdp, _, tel_fdp = _timeline_run(scale, build_slimio, fdp=True)
    ratio_fdp, dips_fdp = _dip_metrics(rep_fdp.timeline)
    result.add_row("SlimIO (FDP)", float(np.median(rep_fdp.timeline[1])),
                   ratio_fdp, dips_fdp, rep_fdp.waf, 0)
    result.series["SlimIO (FDP)"] = rep_fdp.timeline
    result.telemetry["SlimIO (FDP)"] = tel_fdp

    # the baseline on the conventional device is the WAF counterpart
    # the paper reports in Table 3 (1.14/1.24 vs 1.00)
    rep_base, _, tel_base = _timeline_run(scale, build_baseline)
    ratio_base, dips_base = _dip_metrics(rep_base.timeline)
    result.add_row("Baseline (conventional)",
                   float(np.median(rep_base.timeline[1])),
                   ratio_base, dips_base, rep_base.waf, None)
    result.telemetry["Baseline (conventional)"] = tel_base

    result.check("FDP keeps WAF at exactly 1.00",
                 abs(rep_fdp.waf - 1.0) < 1e-9)
    result.check("the conventional device pays WAF > 1.00",
                 rep_base.waf > 1.0)
    result.check("FDP median RPS exceeds the baseline's",
                 float(np.median(rep_fdp.timeline[1]))
                 > float(np.median(rep_base.timeline[1])))
    return result


# --------------------------------------------------------------------------
# Cluster — beyond the paper: hash-slot shards on one shared FDP device
# --------------------------------------------------------------------------

# The cluster experiment's device is pinned, not scale-derived: the
# point is multi-tenant pressure on ONE fixed piece of hardware, and
# the regime where PID sharing is visible in per-shard WAF is narrow.
# 22 MB over 4x8 dies = 22 one-MB flash segments; tight 8% OP. Every
# shard runs the identical instance config (a fixed 576 KB WAL trigger,
# like a fleet rollout of one redis.conf), so total live WAL bytes grow
# with the shard count: more tenants -> more live data + more open
# segments -> GC runs out of wholesale-dead victims. With dedicated
# PIDs (<=2 shards) every retirement still frees whole segments, so GC
# stays copy-free; shared streams interleave two shards' lifetimes
# inside a segment, and one tenant's retirement strands the other's
# live pages — the copies the per-shard WAF then reports.
_CLUSTER_DEVICE_MB = 22
_CLUSTER_WAL_TRIGGER = 576 * 1024
_CLUSTER_KEYS = 1500
# Client concurrency is part of the pinned regime too: the 576 KB
# trigger only leaves room for 8 writers' in-flight bytes while a
# snapshot drains, so a higher-scale client count would overflow the
# fixed WAL region rather than exercise more of it. Scales raise op
# VOLUME (duration), never the instantaneous pressure.
_CLUSTER_CLIENTS = 8
# Volume has a ceiling of its own: at 8 shards sharing the device, GC
# eventually exhausts wholesale-dead victims and snapshot writeback
# slows enough that one more WAL-snapshot cycle overruns a shard's
# slice of the fixed region. 2 x 32k ops (= 2x the bench tier) is
# comfortably inside that budget; higher tiers clamp to it rather
# than inherit a failure the pinned hardware cannot absorb.
_CLUSTER_OPS_EACH = 32_000


def _cluster_config(scale: Scale, design: str, num_shards: int):
    """One shared pinned device, ``num_shards`` stacks on LBA
    partitions; ``scale`` governs op volume, not the hardware."""
    from dataclasses import replace

    from repro.cluster import ClusterConfig
    from repro.flash import FlashGeometry, FtlConfig

    geometry = FlashGeometry.scaled(
        mb=_CLUSTER_DEVICE_MB, channels=4, dies_per_channel=8,
        pages_per_block=8,
    )
    ftl = FtlConfig(op_ratio=0.08, gc_trigger_segments=3,
                    gc_stop_segments=5, gc_reserve_segments=2)
    sys_cfg = scale.system_config(gc_pressure=True)
    sys_cfg = replace(
        sys_cfg,
        geometry=geometry,
        ftl=ftl,
        snapshot_fraction=0.45,
        server=replace(sys_cfg.server,
                       wal_snapshot_trigger_bytes=_CLUSTER_WAL_TRIGGER),
    )
    return ClusterConfig(num_shards=num_shards, design=design,
                         num_pids=8, system=sys_cfg)


def _cluster_run(scale: Scale, design: str, num_shards: int):
    from repro.cluster import build_cluster
    from repro.workloads import ClusterWorkload

    cl = build_cluster(config=_cluster_config(scale, design, num_shards))
    cl.attach_obs()
    # 2x the single-instance op count: the whole cluster shares one
    # device, so the write volume must wrap it even when split N ways.
    # The early On-Demand backup plants a long-lived image per shard —
    # under PID sharing it cohabits a stream with churning
    # WAL-Snapshots, which is the lifetime mixing the paper's
    # dedicated-PID design exists to avoid.
    workload = ClusterWorkload(scale.ycsb_a(
        clients=_CLUSTER_CLIENTS,
        total_ops=2 * min(scale.ycsb_ops, _CLUSTER_OPS_EACH),
        key_count=_CLUSTER_KEYS,
        snapshot_at_fraction=0.25,
    ))
    rep = workload.run(cl, warmup_ops=scale.warmup_ops)
    cl.stop()
    return cl, rep


def cluster(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """Shard-count scaling, baseline vs SlimIO, on one 8-PID device.

    Beyond the paper: its single-instance design meets the deployment
    reality that one FDP device exposes 8 PIDs while every SlimIO
    instance wants 4. Dedicated PIDs last to 2 shards (WAF 1.00); at
    4+ the PID allocator's sharing mode keeps WAF bounded while
    aggregate throughput keeps scaling. The run ends with a live
    slot-range migration on the 4-shard SlimIO cluster to exercise
    the resharding path under the same shared device.
    """
    from repro.cluster import migrate_slots
    from repro.core.verify import verify_lba_space

    result = ExperimentResult(
        "Cluster",
        "Hash-slot shards scaling on one shared 8-PID FDP device "
        "(YCSB-A, aggregate + per-shard)",
        ["Design", "Shards", "PID mode", "Requests/s", "SET p999 (us)",
         "WAF"],
        paper_reference=(
            "No paper counterpart (the paper is single-instance). "
            "Expected shape: aggregate RPS grows with shard count for "
            "both designs; SlimIO per-shard WAF is 1.00 while PIDs are "
            "dedicated (<=2 shards on 8 PIDs) and stays bounded under "
            "PID sharing at 4+ shards; the baseline mixes every "
            "lifetime in one stream at any shard count."
        ),
    )
    shard_counts = (1, 2, 4, 8)
    agg = {}
    for design in ("baseline", "slimio"):
        for n in shard_counts:
            cl, rep = _cluster_run(scale, design, n)
            mode = rep.pid_allocation.get("mode", "-")
            a = rep.aggregate
            result.add_row(design, n, mode, a.rps, a.set_p999 * 1e6, a.waf)
            if design == "slimio":
                for name, shard_rep in zip(rep.shard_names, rep.per_shard):
                    result.add_row(f"  {name}", "", "", shard_rep.rps,
                                   shard_rep.set_p999 * 1e6, shard_rep.waf)
            result.telemetry[f"{design}-{n}"] = _telemetry_cluster(cl)
            agg[(design, n)] = rep

    for design in ("baseline", "slimio"):
        result.check(
            f"{design}: 4-shard aggregate RPS above 1-shard",
            agg[(design, 4)].aggregate.rps > agg[(design, 1)].aggregate.rps,
        )
    for n in (1, 2):
        result.check(
            f"slimio {n}-shard: dedicated PIDs hold per-shard WAF at 1.00",
            all(abs(w - 1.0) < 1e-9 for w in agg[("slimio", n)].shard_waf),
        )
    for n in (4, 8):
        rep = agg[("slimio", n)]
        result.check(
            f"slimio {n}-shard ({rep.pid_allocation.get('mode')}): "
            f"shared PIDs measurably degrade WAF (> 1.0) but stay "
            f"bounded (< 2.0)",
            1.0 < max(rep.shard_waf) < 2.0,
        )
    result.check(
        "slimio: PID sharing at 4 shards costs more WAF than dedicated "
        "at 2",
        max(agg[("slimio", 4)].shard_waf)
        >= max(agg[("slimio", 2)].shard_waf),
    )

    # live resharding on a fresh 4-shard SlimIO cluster under the same
    # shared device: move half of shard 3's range to shard 0, then
    # verify both shards' LBA spaces still replay clean
    from repro.cluster import build_cluster
    from repro.workloads import ClusterWorkload

    cl = build_cluster(config=_cluster_config(scale, "slimio", 4))
    # same pinned-hardware regime as the shard sweep: the device (and
    # with it the per-shard snapshot slot) is fixed, so key count and
    # concurrency must not grow with the scale tier
    workload = ClusterWorkload(scale.ycsb_a(
        clients=_CLUSTER_CLIENTS, key_count=_CLUSTER_KEYS,
        total_ops=max(2_000, min(scale.ycsb_ops, _CLUSTER_OPS_EACH) // 4),
    ))
    workload.run(cl)
    lo, hi = cl.slot_map.shard_range(3)
    mid = (lo + hi) // 2

    def _migrate():
        rep = yield from migrate_slots(cl, mid, hi, 0)
        return rep

    proc = cl.env.process(_migrate(), name="reshard")
    cl.env.run(until=proc)
    mig = proc.value
    cl.stop()
    result.add_row("reshard 3->0", 4, "collapse", float("nan"),
                   float("nan"), float("nan"))
    result.notes = (
        f"Migration moved {mig.slots_moved} slots, {mig.keys_migrated} "
        f"keys ({mig.keys_forwarded} forwarded in-flight) in "
        f"{mig.duration * 1e3:.1f} ms simulated."
    )
    result.check("slot migration moved a non-empty key set",
                 mig.keys_migrated > 0 and mig.slots_moved == hi - mid)
    frac = cl.config.system.snapshot_fraction
    ok_src = verify_lba_space(cl.shards[3].partition, snapshot_fraction=frac)
    ok_dst = verify_lba_space(cl.shards[0].partition, snapshot_fraction=frac)
    result.check("both shards pass verify_lba_space after migration",
                 bool(ok_src) and bool(ok_dst))
    return result


def _telemetry_cluster(cl) -> dict:
    return cl.obs.snapshot() if cl.obs is not None else {}


# --------------------------------------------------------------------------
# Tail trace — per-request causal blame for tail latency
# --------------------------------------------------------------------------

#: slow-request reservoir per tailtrace config (covers p999 at any scale)
_TAILTRACE_TOPK = 24


def _tailtrace_run(scale: Scale, num_shards: int):
    """One traced SlimIO cluster run on the pinned shared device;
    returns (cluster, ClusterReport, RequestTracer, TailReport).

    The contrast is the paper's: the device exposes 8 PIDs, so two
    tenants fit dedicated per-kind PIDs while four are forced into
    sharing — same hardware, same PID budget, only tenant count moves.
    Unlike the scaling experiment this runs ``LoggingPolicy.ALWAYS``:
    every SET waits for its WAL append, so a request's trace reaches
    the device and a GC stall shows up *inside* the victim's critical
    path instead of only shifting an asynchronous flush."""
    from dataclasses import replace

    from repro.cluster import build_cluster
    from repro.obs.trace import overlay_spans, tail_report
    from repro.workloads import ClusterWorkload

    cfg = _cluster_config(scale, "slimio", num_shards)
    cfg = replace(cfg, system=replace(cfg.system,
                                      policy=LoggingPolicy.ALWAYS))
    cl = build_cluster(config=cfg)
    cl.attach_obs()
    tracer = cl.attach_tracer(sample_every=16,
                              keep_slowest=_TAILTRACE_TOPK)
    workload = ClusterWorkload(scale.ycsb_a(
        clients=_CLUSTER_CLIENTS,
        total_ops=2 * min(scale.ycsb_ops, _CLUSTER_OPS_EACH),
        key_count=_CLUSTER_KEYS,
        snapshot_at_fraction=0.25,
    ))
    rep = workload.run(cl, warmup_ops=scale.warmup_ops)
    cl.stop()
    tracer.drain_open()
    gc_spans = [o for o in overlay_spans(cl.obs) if o.name == "gc_reclaim"]
    tail = tail_report(tracer.kept.values(), tracer.background, gc_spans,
                       top_k=_TAILTRACE_TOPK,
                       stream_owners=cl.stream_owners(),
                       requests_seen=tracer.requests_seen)
    return cl, rep, tracer, tail


def _maybe_export_traces(label: str, cl, tracer) -> None:
    """Write Perfetto + JSONL artifacts when SLIMIO_TRACE_DIR is set.

    Env-gated so the experiment's default output is pure text and the
    determinism harness never sees filesystem side effects."""
    import json
    import os

    out_dir = os.environ.get("SLIMIO_TRACE_DIR")
    if not out_dir:
        return
    from repro.obs.trace import (
        overlay_spans,
        perfetto_trace,
        write_trace_jsonl,
    )

    os.makedirs(out_dir, exist_ok=True)
    overlays = overlay_spans(cl.obs)
    owners = cl.stream_owners()
    write_trace_jsonl(
        os.path.join(out_dir, f"tailtrace_{label}.trace.jsonl"),
        tracer, overlays, owners, run=f"tailtrace-{label}",
    )
    with open(os.path.join(out_dir, f"tailtrace_{label}.perfetto.json"),
              "w", encoding="utf-8") as fh:
        json.dump(perfetto_trace(tracer, overlays,
                                 run=f"tailtrace-{label}"), fh)


def tailtrace(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """Interference matrix with per-request causal evidence.

    The paper's Figure-level claim is that FDP write isolation removes
    GC-induced tail interference; aggregate WAF/p999 shows the effect
    but not the mechanism. Here every op is traced end to end, the
    top-K slowest are blame-assigned (which GC reclaim overlapped
    their I/O, and which tenants own the reclaimed stream), and the
    shared-PID config (4 tenants on 8 PIDs) must produce cross-tenant
    GC blame that the dedicated-PID config (2 tenants, PIDs fit)
    structurally cannot — its GC is copy-free.
    """
    from repro.obs.trace import format_tail_table, format_waterfall
    from repro.obs.trace import overlay_spans as _overlays

    result = ExperimentResult(
        "Tail Trace",
        "Per-request causal blame for tail latency: shared vs dedicated "
        "PIDs on one 8-PID device",
        ["Config", "Shards", "PID mode", "Requests/s", "SET p999 (us)",
         "Slow ops", "GC-blamed", "Cross-tenant"],
        paper_reference=(
            "Figures 4/5 mechanism, evidenced per request: with more "
            "tenants than the PID budget fits, a tail op's critical "
            "path overlaps a copying GC on a stream owned by several "
            "tenants; when dedicated PIDs fit, GC is copy-free and no "
            "such attribution exists."
        ),
    )
    runs = {}
    for label, num_shards in (("shared", 4), ("dedicated", 2)):
        cl, rep, tracer, tail = _tailtrace_run(scale, num_shards)
        a = rep.aggregate
        result.add_row(
            label, num_shards, rep.pid_allocation.get("mode", "-"),
            a.rps, a.set_p999 * 1e6, len(tail.rows), len(tail.blamed),
            len(tail.cross_tenant),
        )
        result.telemetry[label] = {
            "requests_seen": float(tracer.requests_seen),
            "kept_traces": float(len(tracer.kept)),
            "background_spans": float(len(tracer.background)),
            "blamed": float(len(tail.blamed)),
            "cross_tenant": float(len(tail.cross_tenant)),
            "waf_max": float(max(rep.shard_waf)),
        }
        runs[label] = (cl, tracer, tail)
        _maybe_export_traces(label, cl, tracer)

    shared_tail = runs["shared"][2]
    ded_tail = runs["dedicated"][2]
    result.check(
        "shared PIDs: >=1 slow op causally blamed on a neighbor "
        "tenant's GC",
        len(shared_tail.cross_tenant) >= 1,
    )
    result.check(
        "dedicated PIDs: zero cross-tenant GC attributions",
        len(ded_tail.cross_tenant) == 0,
    )
    result.check(
        "dedicated PIDs: GC stays copy-free (per-shard WAF 1.00)",
        result.telemetry["dedicated"]["waf_max"] < 1.0 + 1e-9,
    )
    # worked example: the shared config's forensics table plus the
    # waterfall of its worst cross-tenant victim
    notes = [format_tail_table(shared_tail)]
    if shared_tail.cross_tenant:
        victim = shared_tail.cross_tenant[0]
        cl_shared = runs["shared"][0]
        notes.append("")
        notes.append(format_waterfall(
            victim.ctx,
            [o for o in _overlays(cl_shared.obs)
             if o.name in ("gc_reclaim", "snapshot")
             and int(o.labels.get("copied", 1) or 0) > 0],
        ))
    result.notes = "\n".join(notes)
    return result


# --------------------------------------------------------------------------
# Crash matrix — §4.2's durability claim, tested the hard way
# --------------------------------------------------------------------------

def crashmatrix(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """Power-cut matrix over the SlimIO path (``repro.faults``).

    Not a paper table: the paper asserts §4.2's recovery invariants,
    this experiment enforces them — cut power at page-write boundaries
    and torn interiors across a workload, recover each image, and
    require the recovered keyspace to be an exact acked-or-in-flight
    prefix; then the transient-error lane requires seeded NVMe errors
    to be absorbed by the ring's retry policy without data loss.
    """
    from repro.faults.harness import (
        CrashMatrixConfig,
        run_crash_matrix,
        run_error_lane,
    )

    result = ExperimentResult(
        "Crash Matrix",
        "Power-cut / NVMe-error injection over the SlimIO I/O path",
        ["Lane", "Cuts", "Torn tails", "Failures", "Verdict"],
        paper_reference=(
            "§4.2: after power loss at any instant, recovery restores "
            "the newest durable snapshot plus a prefix of the WAL"
        ),
    )
    small = scale.name == "test"
    all_ok = True
    for torn in ("prefix", "shuffle"):
        cfg = CrashMatrixConfig(
            ops=24 if small else 48,
            max_cuts=24 if small else 64,
            torn=torn,
            sanitize=scale.sanitize,
            batched=scale.batched,
            fast_sim=scale.fast_sim,
        )
        report = run_crash_matrix(cfg)
        s = report.summary()
        all_ok = all_ok and report.ok
        result.add_row(
            f"power-cut ({torn})", int(s["cuts"]), int(s["torn_tails"]),
            int(s["failures"]), "ok" if report.ok else "FAIL",
        )
        result.telemetry[f"matrix_{torn}"] = s
    lane = run_error_lane(CrashMatrixConfig(
        ops=24 if small else 48, sanitize=scale.sanitize,
        batched=scale.batched, fast_sim=scale.fast_sim,
    ))
    result.add_row(
        "nvme-errors", int(lane.errors_injected + lane.timeouts_injected),
        0, int(lane.giveups), "ok" if lane.ok else "FAIL",
    )
    result.check("every power cut recovers to an acked prefix", all_ok)
    result.check("injected errors are retried, none give up",
                 lane.retries > 0 and lane.giveups == 0)
    result.check("no acked write lost under transient errors",
                 lane.final_state_ok and lane.recovered_state_ok)
    return result


# --------------------------------------------------------------------------
# Open loop — latency vs offered load through the repro.net front end
# --------------------------------------------------------------------------

#: offered-load sweep (groups/s).  The service rate with the bench CPU
#: costs (14us SET / 7us GET) puts capacity near 85k/s, so the sweep
#: crosses saturation between the 4th and 5th point.
_OPENLOOP_RATES = (12_000, 25_000, 45_000, 70_000, 100_000, 140_000)
_OPENLOOP_CLIENTS = 32
#: schedule duration = ycsb_ops / this (keeps arrival counts, and thus
#: runtime, proportional to the scale)
_OPENLOOP_SCHED_RATE = 400_000
_OPENLOOP_CONTRAST_RATE = 45_000   # sub-saturation contrast rows
_OPENLOOP_OVERLOAD_RATE = 140_000  # backpressure-policy contrast rows


def _openloop_run(scale: Scale, rate: float, *, policy="block",
                  arrivals=None, mix=None, slow_every: int = 0,
                  pipeline: int = 8, trace: bool = False):
    """One offered-load point on a fresh SlimIO system.

    Returns ``(point, fe, tracer)``.  ``arrivals`` is a factory
    ``(rate, duration) -> ArrivalProcess`` so bursty processes can size
    their dwell times off the schedule length."""
    from repro.net import (
        BackpressurePolicy,
        MIXES,
        NetConfig,
        NetFrontend,
        OpStream,
        PoissonArrivals,
        run_open_loop,
        summarize_point,
    )
    from repro.obs.wiring import attach_tracer

    system = _build(build_slimio,
                    scale.system_config(gc_pressure=False, trigger=False))
    tracer = None
    if trace:
        tracer = attach_tracer(system, sample_every=4, keep_slowest=64)
    _fill_store(system, scale.ycsb_keys, scale.ycsb_value)
    system.server.reset_metrics()

    duration = scale.ycsb_ops / _OPENLOOP_SCHED_RATE
    env = system.env
    fe = NetFrontend(env, system.server,
                     NetConfig(pipeline_depth=pipeline, conn_queue=16,
                               max_inflight=256,
                               policy=BackpressurePolicy(policy),
                               slow_every=slow_every),
                     rtrace=tracer)
    proc = (arrivals(rate, duration) if arrivals is not None
            else PoissonArrivals(rate, seed=17))
    times = proc.times(duration, t0=env.now)
    stream = OpStream(mix or MIXES["ycsb_a"], len(times), scale.ycsb_keys,
                      value_size=scale.ycsb_value, seed=11)
    run_open_loop(env, fe, stream, times, clients=_OPENLOOP_CLIENTS,
                  horizon=duration * 1.5 + 0.01,
                  servers=[system.server], snapshot_at=duration * 0.35,
                  conn_lifetime=200)
    point = summarize_point(fe, rate, len(times), duration,
                            system.server.metrics.snapshot_windows)
    system.stop()
    return point, fe, tracer


def _maybe_export_curve(points, tracer) -> None:
    """Write the latency-vs-load CSV (and traces) when SLIMIO_NET_DIR
    is set — the net-smoke CI artifact.  Env-gated so the determinism
    harness never sees filesystem side effects."""
    import os

    out_dir = os.environ.get("SLIMIO_NET_DIR")
    if not out_dir:
        return
    from repro.net import curve_csv
    from repro.obs.trace import write_trace_jsonl

    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "openloop_curve.csv"), "w") as f:
        f.write(curve_csv(points))
    if tracer is not None:
        write_trace_jsonl(os.path.join(out_dir, "openloop.trace.jsonl"),
                          tracer, run="openloop")


def openloop(scale: Scale = BENCH_SCALE) -> ExperimentResult:
    """Latency vs offered load through the simulated connection path.

    The open-loop sweep the paper's aggregate RPS tables cannot show:
    requests arrive on a fixed Poisson schedule whether or not the
    server keeps up, latency is measured from the *intended* arrival
    (no coordinated omission), and the curve crosses the saturation
    knee — flat service-dominated percentiles on the left, unbounded
    queue-dominated percentiles on the right.  Each point splits its
    p999 into WAL-only vs WAL&Snapshot completions via an on-demand
    snapshot mid-run.  Contrast rows show what the sweep's BLOCK
    backpressure hides: MMPP burstiness inflates the tail at an
    unchanged mean rate, SHED trades ``-BUSY`` errors for a bounded
    tail at overload, DROP trades whole connections.
    """
    from repro.net import MmppArrivals, detect_knee

    result = ExperimentResult(
        "Open Loop",
        "Offered-load sweep through repro.net: p50/p99/p999 vs load, "
        "saturation knee, backpressure contrast",
        ["Scenario", "Offered/s", "Arrivals", "Done", "p50 (us)",
         "p99 (us)", "p999 (us)", "p999 wal (us)", "p999 snap (us)",
         "Shed", "Dropped"],
        paper_reference=(
            "§2.2 frames degradation as RPS loss under snapshots; an "
            "open-loop front end shows the same system as a latency "
            "curve: where the knee sits, and what admission control "
            "does to the tail past it."
        ),
    )

    def _row(label: str, p) -> None:
        result.add_row(
            label, int(p.offered), p.arrivals, p.completed,
            p.p50 * 1e6, p.p99 * 1e6, p.p999 * 1e6,
            p.p999_wal_only * 1e6, p.p999_wal_snapshot * 1e6,
            p.shed, p.dropped_cmds,
        )

    # -- the sweep (BLOCK policy: pure queueing, nothing rejected) -----
    sweep = []
    for rate in _OPENLOOP_RATES:
        point, fe, _ = _openloop_run(scale, rate)
        sweep.append(point)
        _row(f"poisson @{rate // 1000}k", point)
    knee = detect_knee(sweep)

    # -- contrast rows -------------------------------------------------
    def _mmpp(rate, duration):
        return MmppArrivals(rate, burst=6.0, dwell_calm=duration / 8,
                            dwell_burst=duration / 32, seed=17)

    mmpp_pt, _, _ = _openloop_run(scale, _OPENLOOP_CONTRAST_RATE,
                                  arrivals=_mmpp)
    _row("mmpp burst @45k", mmpp_pt)
    from repro.net import MIXES as _MIXES
    ycsb_b_pt, _, _ = _openloop_run(scale, _OPENLOOP_CONTRAST_RATE,
                                    mix=_MIXES["ycsb_b"])
    _row("ycsb_b @45k", ycsb_b_pt)
    slow_pt, _, _ = _openloop_run(scale, _OPENLOOP_CONTRAST_RATE,
                                  slow_every=8)
    _row("slow clients @45k", slow_pt)
    # deep client pipelines (32 clients x 32) overrun the 256-command
    # admission window, so the server-side policy — not the client
    # window — is what absorbs the overload
    block_pt, _, _ = _openloop_run(scale, _OPENLOOP_OVERLOAD_RATE,
                                   pipeline=32)
    _row("block deep @140k", block_pt)
    shed_pt, _, _ = _openloop_run(scale, _OPENLOOP_OVERLOAD_RATE,
                                  policy="shed", pipeline=32)
    _row("shed deep @140k", shed_pt)
    drop_pt, _, _ = _openloop_run(scale, _OPENLOOP_OVERLOAD_RATE,
                                  policy="drop", pipeline=32)
    _row("drop deep @140k", drop_pt)

    # -- one traced point at the knee: queue residency as net spans ----
    traced_rate = knee if knee is not None else _OPENLOOP_RATES[-2]
    traced_pt, _, tracer = _openloop_run(scale, traced_rate, trace=True)
    net_spans = sum(
        1 for ctx in tracer.kept.values() for s in ctx.spans
        if s.layer == "net")
    queue_spans = sum(
        1 for ctx in tracer.kept.values() for s in ctx.spans
        if s.name in ("conn_queue", "client_backlog"))

    base = sweep[list(_OPENLOOP_RATES).index(_OPENLOOP_CONTRAST_RATE)]
    low, top = sweep[0], sweep[-1]
    result.check(
        "low load: every arrival completes",
        low.completed == low.issued and low.completed >= low.arrivals,
    )
    result.check(
        "saturation knee detected inside the sweep",
        knee is not None and _OPENLOOP_RATES[0] < knee
        <= _OPENLOOP_RATES[-1],
    )
    result.check(
        "past the knee p999 is queue-dominated (>10x the flat floor)",
        top.p999 > 10.0 * low.p999,
    )
    result.check(
        "overload fills the admission window (BLOCK)",
        top.peak_inflight >= 0.9 * 256,
    )
    result.check(
        "snapshot phase visible: in-snapshot completions recorded",
        base.completed_wal_snapshot > 0 and base.completed_wal_only > 0,
    )
    result.check(
        "WAL&Snapshot p999 >= WAL-only p999 at mid load",
        base.p999_wal_snapshot >= base.p999_wal_only,
    )
    result.check(
        "MMPP bursts inflate p999 at an unchanged mean rate",
        mmpp_pt.p999 > 2.0 * base.p999,
    )
    result.check(
        "read-heavy ycsb_b runs a lower median than ycsb_a",
        ycsb_b_pt.p50 < base.p50,
    )
    # a slow client drains replies at 5% bandwidth, so its ops carry at
    # least the reply-serialization time — a floor fast clients never see
    slow_floor = scale.ycsb_value / (100e6 * 0.05)
    result.check(
        "slow clients stretch their own tail, not the median",
        slow_pt.p99 > slow_floor > base.p99
        and slow_pt.p50 < 2.0 * base.p50,
    )
    result.check(
        "shed at overload: -BUSY errors, bounded queues, bounded tail",
        shed_pt.shed > 0 and shed_pt.max_conn_queue <= 16
        and shed_pt.peak_inflight <= 256 and shed_pt.p999 < block_pt.p999,
    )
    result.check(
        "drop at overload: connections closed, queue bound holds",
        drop_pt.dropped_conns > 0 and drop_pt.max_conn_queue <= 16,
    )
    result.check(
        "queue residency traced as net-layer spans at the knee",
        net_spans >= 1 and queue_spans >= 1,
    )

    result.telemetry["sweep"] = {
        "knee_offered_per_s": float(knee or 0.0),
        "p999_floor_us": float(min(p.p999 for p in sweep) * 1e6),
        "p999_top_us": float(top.p999 * 1e6),
        "goodput_top_per_s": float(top.goodput),
        "peak_inflight_top": float(top.peak_inflight),
    }
    result.telemetry["policies"] = {
        "shed_count": float(shed_pt.shed),
        "shed_p999_us": float(shed_pt.p999 * 1e6),
        "drop_conns": float(drop_pt.dropped_conns),
        "drop_cmds": float(drop_pt.dropped_cmds),
        "block_p999_us": float(block_pt.p999 * 1e6),
    }
    result.telemetry["traced"] = {
        "offered_per_s": float(traced_rate),
        "requests_seen": float(tracer.requests_seen),
        "kept_traces": float(len(tracer.kept)),
        "net_spans": float(net_spans),
        "queue_spans": float(queue_spans),
    }
    result.notes = (
        f"knee at {knee:,.0f} groups/s (p999 floor "
        f"{min(p.p999 for p in sweep) * 1e6:.1f}us); latency measured "
        "from intended arrival — queueing delay included, no "
        "coordinated omission." if knee is not None else
        "sweep never crossed saturation (no knee)"
    )
    _maybe_export_curve(sweep + [mmpp_pt, ycsb_b_pt, slow_pt, block_pt,
                                 shed_pt, drop_pt, traced_pt], tracer)
    return result


# --------------------------------------------------------------------------
# Design-space sweep grids — parameterized runners for repro.bench.sweep
# --------------------------------------------------------------------------
#
# The paper reports point estimates (one RU size, one placement policy,
# one GC watermark); these grids map the neighborhoods around them.
# Every runner is a module-level function of one ``params`` dict (plus
# a scale name bound via functools.partial) so it pickles into the
# ``--jobs`` process pool, and every runner returns plain floats so
# rows cache, CSV, and render deterministically.

#: sweep op volume per cluster point — same pinned-regime reasoning as
#: the cluster experiment: scales raise duration, never instantaneous
#: pressure on the fixed device
_SWEEP_OPS_CAP = 2 * _CLUSTER_OPS_EACH


def _sweep_score(rps: float, waf: float, p999_us: float) -> float:
    """The tuner's default objective, higher = better.

    Throughput per unit of device wear, discounted by tail latency:
    ``rps / (waf^2 * (1 + p999_ms))``. WAF enters squared because
    write amplification costs both bandwidth *and* device lifetime;
    the tail enters as a soft penalty in milliseconds so microsecond
    noise cannot dominate a real throughput difference.
    """
    return rps / (waf * waf * (1.0 + p999_us / 1e3))


def single_sweep_config(scale: Scale, params: dict):
    """One single-instance SlimIO config from a grid point.

    Axes: ``ru_pages`` (pages per block — the Reclaim Unit size knob),
    ``gc_stop_segments`` (GC watermark; trigger pinned at 3 so the
    axis moves only how far past the trigger GC reclaims),
    ``wal_policy``, and ``value_size`` (consumed by the workload, not
    the config).
    """
    from dataclasses import replace

    from repro.flash import FlashGeometry, FtlConfig

    geometry = FlashGeometry.scaled(
        mb=scale.small_device_mb, channels=scale.channels,
        dies_per_channel=scale.dies_per_channel,
        pages_per_block=int(params["ru_pages"]),
    )
    ftl = FtlConfig(op_ratio=0.08, gc_trigger_segments=3,
                    gc_stop_segments=int(params["gc_stop_segments"]),
                    gc_reserve_segments=2)
    cfg = scale.system_config(
        gc_pressure=True, policy=LoggingPolicy(params["wal_policy"]))
    return replace(cfg, geometry=geometry, ftl=ftl)


def single_sweep_point(params: dict, scale_name: str = "tiny") -> dict:
    """Measure one single-instance grid point (picklable work unit)."""
    from repro.bench.scales import get_scale

    scale = get_scale(scale_name)
    system = build_slimio(config=single_sweep_config(scale, params))
    workload = scale.redis_bench(value_size=int(params["value_size"]),
                                 snapshot_at_fraction=0.5)
    rep = workload.run(system, warmup_ops=scale.warmup_ops)
    stats = system.device.ftl.stats
    system.stop()
    p999_us = rep.set_p999 * 1e6
    return {
        "rps": rep.rps,
        "p999_us": p999_us,
        "waf": rep.waf,
        "waf_excess": rep.waf - 1.0,
        "gc_copied": float(stats.gc_pages_copied),
        "erases": float(stats.segments_erased),
        "snap_ms": rep.mean_snapshot_time * 1e3,
        "score": _sweep_score(rep.rps, rep.waf, p999_us),
    }


def cluster_sweep_config(scale: Scale, params: dict):
    """One multi-tenant cluster config from a grid point.

    The device is the cluster experiment's pinned 22 MB / 8-PID part
    (multi-tenant pressure on ONE fixed piece of hardware), with the
    grid moving the Reclaim Unit size (``ru_pages``), the PID sharing
    policy, the GC stop watermark, the WAL policy, and the tenant
    count. ``dedicated`` at shard counts that don't fit 8 PIDs is
    *infeasible by design* — those corners come back as error rows,
    mapping the feasible region's boundary.
    """
    from dataclasses import replace

    from repro.cluster import ClusterConfig
    from repro.cluster.pids import SharingMode
    from repro.flash import FlashGeometry, FtlConfig

    geometry = FlashGeometry.scaled(
        mb=_CLUSTER_DEVICE_MB, channels=4, dies_per_channel=8,
        pages_per_block=int(params["ru_pages"]),
    )
    ftl = FtlConfig(op_ratio=0.08, gc_trigger_segments=3,
                    gc_stop_segments=int(params["gc_stop_segments"]),
                    gc_reserve_segments=2)
    sys_cfg = scale.system_config(
        gc_pressure=True, policy=LoggingPolicy(params["wal_policy"]))
    sys_cfg = replace(
        sys_cfg,
        geometry=geometry,
        ftl=ftl,
        snapshot_fraction=0.45,
        server=replace(sys_cfg.server,
                       wal_snapshot_trigger_bytes=_CLUSTER_WAL_TRIGGER),
    )
    return ClusterConfig(
        num_shards=int(params["shards"]), design="slimio", num_pids=8,
        sharing=SharingMode(params["pid_policy"]), system=sys_cfg,
    )


def cluster_sweep_point(params: dict, scale_name: str = "tiny") -> dict:
    """Measure one cluster grid point (picklable work unit)."""
    from repro.bench.scales import get_scale
    from repro.cluster import build_cluster
    from repro.workloads import ClusterWorkload

    scale = get_scale(scale_name)
    cl = build_cluster(config=cluster_sweep_config(scale, params))
    workload = ClusterWorkload(scale.ycsb_a(
        clients=_CLUSTER_CLIENTS,
        total_ops=min(2 * scale.ycsb_ops, _SWEEP_OPS_CAP),
        key_count=_CLUSTER_KEYS,
        value_size=int(params["value_size"]),
        snapshot_at_fraction=0.25,
    ))
    rep = workload.run(cl, warmup_ops=scale.warmup_ops)
    stats = cl.device.ftl.stats
    cl.stop()
    a = rep.aggregate
    waf = max(rep.shard_waf)
    p999_us = a.set_p999 * 1e6
    return {
        "rps": a.rps,
        "p999_us": p999_us,
        "waf": waf,
        "waf_excess": waf - 1.0,
        "gc_copied": float(stats.gc_pages_copied),
        "erases": float(stats.segments_erased),
        "pid_mode": rep.pid_allocation.get("mode", "-"),
        "score": _sweep_score(a.rps, waf, p999_us),
    }


def sweep_grids(scale_name: str = "tiny") -> dict:
    """The named design-space grids at one scale.

    ``comprehensive`` mode runs all of them; the auto-tuner searches
    one. Axis *order* matters: knife-edge adjacency follows it.
    """
    import functools

    from repro.bench.sweep import EdgeSpec, GridSpec

    single = GridSpec(
        name="single",
        description=(
            "single-instance SlimIO: Reclaim Unit size x GC watermark "
            "x WAL policy x value size (redis-benchmark, GC pressure)"
        ),
        axes={
            "ru_pages": (4, 8),
            "gc_stop_segments": (5, 6),
            "wal_policy": ("periodical", "always"),
            "value_size": (1024, 4096),
        },
        runner=functools.partial(single_sweep_point,
                                 scale_name=scale_name),
        edges=(
            EdgeSpec("gc_copied", factor=2.0, min_jump=64.0),
            EdgeSpec("waf_excess", factor=2.0, min_jump=0.02),
            EdgeSpec("p999_us", factor=2.0, min_jump=100.0),
        ),
        panels=(
            ("gc_stop_segments", "ru_pages", "waf"),
            ("value_size", "wal_policy", "rps"),
        ),
        config_builder=single_sweep_config,
    )
    cluster_grid = GridSpec(
        name="cluster",
        description=(
            "multi-tenant SlimIO on the pinned 22 MB / 8-PID device: "
            "RU size x PID policy x GC watermark x WAL policy x shard "
            "count x value size (YCSB-A)"
        ),
        axes={
            "ru_pages": (4, 8),
            "pid_policy": ("dedicated", "collapse", "share-wal"),
            "gc_stop_segments": (5, 6),
            "wal_policy": ("periodical", "always"),
            "shards": (2, 4),
            "value_size": (1024, 4096),
        },
        runner=functools.partial(cluster_sweep_point,
                                 scale_name=scale_name),
        edges=(
            EdgeSpec("gc_copied", factor=2.0, min_jump=64.0),
            EdgeSpec("waf_excess", factor=2.0, min_jump=0.02),
            EdgeSpec("p999_us", factor=2.0, min_jump=100.0),
        ),
        panels=(
            ("gc_stop_segments", "pid_policy", "waf"),
            ("shards", "pid_policy", "rps"),
            ("value_size", "ru_pages", "gc_copied"),
        ),
        config_builder=cluster_sweep_config,
    )
    return {"single": single, "cluster": cluster_grid}


EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "figure2a": figure2a,
    "figure2b": figure2b,
    "figure4": figure4,
    "figure5": figure5,
    "cluster": cluster,
    "tailtrace": tailtrace,
    "crashmatrix": crashmatrix,
    "openloop": openloop,
}
