"""Experiment harness: one function per paper table/figure.

Each experiment assembles scaled-down systems and workloads, runs the
simulation, and returns an :class:`~repro.bench.report.ExperimentResult`
holding both the measured rows and the paper's reference values so
reports can show paper-vs-measured side by side.

CLI::

    python -m repro.bench list
    python -m repro.bench table3 [--scale test|bench]
    python -m repro.bench all
"""

from repro.bench.plots import spark, timeline_chart
from repro.bench.report import ExperimentResult, format_table
from repro.bench.sweep import SweepResult, sweep, write_csv
from repro.bench.scales import Scale, TEST_SCALE, BENCH_SCALE
from repro.bench.experiments import (
    EXPERIMENTS,
    cluster,
    figure2a,
    figure2b,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "ExperimentResult",
    "format_table",
    "spark",
    "timeline_chart",
    "SweepResult",
    "sweep",
    "write_csv",
    "Scale",
    "TEST_SCALE",
    "BENCH_SCALE",
    "EXPERIMENTS",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure2a",
    "figure2b",
    "figure4",
    "figure5",
    "cluster",
]
