"""Auto-tuner: search a design-space grid, emit a recommended config.

Closes the loop the ROADMAP names: the comprehensive sweep maps the
design space (including its cliffs), and this module *searches* it —
coordinate descent over a :class:`repro.bench.sweep.GridSpec`, one axis
at a time, every evaluation served through the same parameter-keyed
on-disk cache the sweep populates. After ``python -m repro.bench sweep
--comprehensive`` the whole grid is cached and a tune run costs zero
simulation; cold, it evaluates only the descent path (axes x values x
passes, typically a small fraction of the grid).

The output is a JSON recommendation per workload: the winning
parameters, their measured metrics, the full descent trajectory, and a
``system_config`` block that round-trips through
:class:`repro.core.SystemConfig` construction — the file is directly
loadable as a deployment config, not just a report.

Usage::

    python -m repro.bench tune --workload cluster --scale tiny
    python -m repro.bench tune --workload single --objective p999_us --minimize
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.sweep import CachedRunner, GridSpec

__all__ = [
    "TuneResult", "coordinate_descent", "config_to_jsonable",
    "config_from_jsonable", "cluster_config_to_jsonable",
    "cluster_config_from_jsonable", "recommendation", "main",
]


# --------------------------------------------------------------------------
# SystemConfig <-> JSON
# --------------------------------------------------------------------------

def config_to_jsonable(cfg) -> dict[str, Any]:
    """A :class:`SystemConfig` as a plain JSON-safe dict.

    Nested dataclasses flatten via ``asdict``; the one enum field
    (``policy``) becomes its string value. The inverse is
    :func:`config_from_jsonable`, and the pair round-trips exactly.
    """
    d = asdict(cfg)
    d["policy"] = cfg.policy.value
    return d


def config_from_jsonable(d: dict[str, Any]):
    """Rebuild a :class:`SystemConfig` from :func:`config_to_jsonable`
    output — every nested dataclass is constructed for real, so field
    validation (``__post_init__``) runs and a tampered or stale payload
    fails loudly instead of half-building."""
    from repro.core import SystemConfig
    from repro.core.placement import PlacementPolicy
    from repro.flash import FlashGeometry, FtlConfig, NandTiming
    from repro.imdb.memory import ForkModel
    from repro.imdb.server import ServerConfig
    from repro.kernel.costs import KernelCosts
    from repro.persist import LoggingPolicy
    from repro.persist.compress import CompressionModel
    from repro.persist.snapshot import SnapshotCpuModel

    d = dict(d)
    server = dict(d.pop("server"))
    server["fork_model"] = ForkModel(**server.pop("fork_model"))
    server["snapshot_cpu"] = SnapshotCpuModel(**server.pop("snapshot_cpu"))
    return SystemConfig(
        geometry=FlashGeometry(**d.pop("geometry")),
        nand=NandTiming(**d.pop("nand")),
        ftl=FtlConfig(**d.pop("ftl")),
        costs=KernelCosts(**d.pop("costs")),
        server=ServerConfig(**server),
        compression=CompressionModel(**d.pop("compression")),
        placement=PlacementPolicy(**d.pop("placement")),
        policy=LoggingPolicy(d.pop("policy")),
        **d,
    )


def cluster_config_to_jsonable(cfg) -> dict[str, Any]:
    """A :class:`ClusterConfig` as a JSON-safe dict (see
    :func:`config_to_jsonable` for the nested system template)."""
    return {
        "num_shards": cfg.num_shards,
        "design": cfg.design,
        "num_pids": cfg.num_pids,
        "sharing": None if cfg.sharing is None else cfg.sharing.value,
        "system": config_to_jsonable(cfg.system),
    }


def cluster_config_from_jsonable(d: dict[str, Any]):
    from repro.cluster import ClusterConfig
    from repro.cluster.pids import SharingMode

    sharing = d["sharing"]
    return ClusterConfig(
        num_shards=d["num_shards"],
        design=d["design"],
        num_pids=d["num_pids"],
        sharing=None if sharing is None else SharingMode(sharing),
        system=config_from_jsonable(d["system"]),
    )


# --------------------------------------------------------------------------
# coordinate descent
# --------------------------------------------------------------------------

@dataclass
class TuneResult:
    """Outcome of one search: the winner and how it was found."""

    workload: str
    scale_name: str
    objective: str
    maximize: bool
    params: dict[str, Any]
    metrics: dict[str, Any]
    #: (params, objective value) at the start and after every move
    trajectory: list[tuple[dict[str, Any], float]] = field(
        default_factory=list)
    evaluations: int = 0
    passes: int = 0


class _Evaluator:
    """Memoized, failure-tolerant view of the (cached) runner."""

    def __init__(self, grid: GridSpec, scale, cache_dir, refresh: bool):
        self._runner = CachedRunner(grid.runner, grid.name, scale,
                                    cache_dir, refresh)
        self._names = list(grid.axes.keys())
        self._memo: dict[tuple, dict | None] = {}
        self.evaluations = 0

    def __call__(self, params: dict[str, Any]) -> dict | None:
        key = tuple(params[n] for n in self._names)
        if key not in self._memo:
            self.evaluations += 1
            try:
                self._memo[key] = self._runner(dict(params))
            except Exception:  # noqa: BLE001 — infeasible corner
                self._memo[key] = None
        return self._memo[key]


def coordinate_descent(grid: GridSpec, scale,
                       cache_dir: str | Path | None = None,
                       refresh: bool = False,
                       objective: str | None = None,
                       maximize: bool | None = None,
                       max_passes: int = 8) -> TuneResult:
    """Search ``grid`` one axis at a time until a full pass stands pat.

    Deterministic by construction: axes iterate in grid order, axis
    values in grid order, and ties keep the incumbent — so the same
    tree and scale always produce the same recommendation. Infeasible
    points (build-time errors, e.g. ``dedicated`` PIDs past the
    device's budget) evaluate as unusable and are stepped around; if
    *every* grid point is infeasible the search raises.
    """
    objective = objective or grid.objective
    maximize = grid.maximize if maximize is None else maximize
    names = list(grid.axes.keys())
    axes = {n: list(v) for n, v in grid.axes.items()}
    ev = _Evaluator(grid, scale, cache_dir, refresh)

    def score(vals: dict | None) -> float | None:
        if vals is None or objective not in vals:
            return None
        return float(vals[objective])

    def better(a: float, b: float) -> bool:
        return a > b if maximize else a < b

    # start from the middle of every axis; if that corner is
    # infeasible, scan the grid in cartesian order for a footing
    current = {n: axes[n][len(axes[n]) // 2] for n in names}
    current_vals = ev(current)
    if score(current_vals) is None:
        import itertools

        for values in itertools.product(*(axes[n] for n in names)):
            candidate = dict(zip(names, values))
            current_vals = ev(candidate)
            if score(current_vals) is not None:
                current = candidate
                break
        else:
            raise ValueError(
                f"no feasible point in grid {grid.name!r} "
                f"({ev.evaluations} points tried)"
            )
    current_score = score(current_vals)

    result = TuneResult(
        workload=grid.name, scale_name=scale.name, objective=objective,
        maximize=maximize, params=dict(current), metrics=current_vals,
        trajectory=[(dict(current), current_score)],
    )
    for _ in range(max_passes):
        result.passes += 1
        improved = False
        for axis in names:
            for value in axes[axis]:
                if value == current[axis]:
                    continue
                candidate = {**current, axis: value}
                s = score(ev(candidate))
                if s is not None and better(s, current_score):
                    current = candidate
                    current_score = s
                    improved = True
            # record at most one move per axis per pass (the best one
            # won: later values only displaced earlier winners)
            if improved and result.trajectory[-1][0] != current:
                result.trajectory.append((dict(current), current_score))
        if not improved:
            break
    result.params = dict(current)
    result.metrics = ev(current)
    result.evaluations = ev.evaluations
    return result


# --------------------------------------------------------------------------
# recommendation export
# --------------------------------------------------------------------------

def recommendation(grid: GridSpec, scale, tr: TuneResult) -> dict:
    """The tuner's JSON payload, with a round-trip-validated config.

    ``system_config`` always holds a loadable :class:`SystemConfig`
    (for cluster grids: the per-shard template; the PID allocator
    assigns per-shard placement at build time). Cluster grids add a
    ``cluster`` block with the tenant-level choices. The payload is
    validated by actually reconstructing the config before it is
    returned — an emitted recommendation can never fail to load.
    """
    if grid.config_builder is None:
        raise ValueError(f"grid {grid.name!r} has no config builder")
    cfg = grid.config_builder(scale, tr.params)
    cluster_block = None
    if hasattr(cfg, "system"):  # ClusterConfig
        cluster_block = cluster_config_to_jsonable(cfg)
        system_block = cluster_block["system"]
        cluster_config_from_jsonable(cluster_block)  # validate
    else:
        system_block = config_to_jsonable(cfg)
    config_from_jsonable(system_block)  # validate round-trip
    return {
        "workload": tr.workload,
        "scale": tr.scale_name,
        "objective": tr.objective,
        "maximize": tr.maximize,
        "params": tr.params,
        "metrics": tr.metrics,
        "evaluations": tr.evaluations,
        "passes": tr.passes,
        "trajectory": [
            {"params": p, "objective": s} for p, s in tr.trajectory
        ],
        "system_config": system_block,
        "cluster": cluster_block,
    }


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    from repro.bench import cache as result_cache
    from repro.bench.experiments import sweep_grids
    from repro.bench.report import format_table
    from repro.bench.scales import get_scale

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench tune",
        description="Search a design-space grid and emit a recommended "
                    "SystemConfig as JSON.",
    )
    parser.add_argument("--workload", required=True,
                        help="grid to search (see 'sweep --list'): "
                             "single | cluster")
    parser.add_argument("--scale", default="tiny",
                        help="scale preset (default: tiny)")
    parser.add_argument("--objective", default=None,
                        help="metric to optimize (default: the grid's, "
                             "'score' = rps / (waf^2 * (1 + p999_ms)))")
    parser.add_argument("--minimize", action="store_true",
                        help="minimize the objective instead of "
                             "maximizing it (e.g. --objective p999_us)")
    parser.add_argument("--max-passes", type=int, default=8,
                        help="coordinate-descent pass budget")
    parser.add_argument("--out", default=None,
                        help="recommendation JSON path (default: "
                             "out/sweep/tuned_<workload>_<scale>.json; "
                             "'-' prints to stdout only)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk result cache entirely")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute even on cache hit")
    parser.add_argument("--cache-dir",
                        default=str(result_cache.DEFAULT_CACHE_DIR),
                        help="result cache location (default: out/cache)")
    args = parser.parse_args(argv)

    scale = get_scale(args.scale)
    grids = sweep_grids(scale.name)
    if args.workload not in grids:
        print(f"unknown workload {args.workload!r}; "
              f"choose from {sorted(grids)}", file=sys.stderr)
        return 2
    grid = grids[args.workload]
    cache_dir = None if args.no_cache else args.cache_dir
    tr = coordinate_descent(
        grid, scale, cache_dir=cache_dir, refresh=args.refresh,
        objective=args.objective,
        maximize=(False if args.minimize else None),
        max_passes=args.max_passes,
    )
    payload = recommendation(grid, scale, tr)

    names = list(grid.axes.keys())
    print(f"== Tune: {grid.name} @ {scale.name} ==")
    print(f"objective: {tr.objective} "
          f"({'maximize' if tr.maximize else 'minimize'}); "
          f"{tr.evaluations} evaluations over {tr.passes} passes\n")
    print("Descent trajectory:")
    print(format_table(
        [*names, tr.objective],
        [[p[n] for n in names] + [s] for p, s in tr.trajectory],
    ))
    print("\nRecommended point:")
    metric_names = [k for k in tr.metrics if k not in names]
    print(format_table(metric_names,
                       [[tr.metrics[k] for k in metric_names]]))

    out = args.out
    if out is None:
        out = f"out/sweep/tuned_{grid.name}_{scale.name}.json"
    if out != "-":
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                        + "\n")
        print(f"\n(recommendation written to {path})", file=sys.stderr)
    else:
        print(json.dumps(payload, indent=1, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
