"""On-disk result cache for regenerated experiments and sweep points.

Every experiment is a pure function of (experiment name, scale
configuration, source tree), so its report can be cached and replayed.
A sweep grid point is a pure function of one more input — the point's
full parameter dict — so its measurement dict caches the same way. The
key digests all inputs; any edit under ``src/repro`` — or any scale- or
parameter-field change — misses and recomputes, which keeps the cache
impossible to poison by code drift and makes two grid points of the
same experiment impossible to collide (each parameter assignment gets
its own key).

Entries are single JSON files under ``out/cache/`` carrying the exact
report text (or the exact measurement dict), the shape-check verdict,
and a self-checksum. A corrupt or truncated entry (interrupted write,
disk mishap) fails validation and is deleted, so the caller
transparently recomputes — the cache can only ever cost a miss, never a
wrong result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

__all__ = ["DEFAULT_CACHE_DIR", "code_digest", "cache_key",
           "load", "store", "load_values", "store_values"]

DEFAULT_CACHE_DIR = Path("out/cache")

#: bump to invalidate every existing entry on format changes
#: (v2: keys carry the sweep-point parameter dict)
_FORMAT_VERSION = 2

_code_digest: str | None = None


def code_digest() -> str:
    """Digest of every ``src/repro/**/*.py`` file (path + content).

    Computed once per process: the source tree cannot change under a
    running harness, and hashing ~50 files per experiment would cost
    more than some cache hits save.
    """
    global _code_digest
    if _code_digest is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(path.relative_to(root).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_digest = h.hexdigest()
    return _code_digest


def cache_key(experiment: str, scale,
              params: dict[str, Any] | None = None) -> str:
    """Digest identifying one (experiment, scale, params, tree) cell.

    ``params`` is the sweep point's *full* parameter dict; it is part
    of the key so two grid points of the same experiment and scale can
    never collide. ``None`` (a whole-experiment report, no grid) and
    ``{}`` hash differently from any non-empty parameter assignment.
    """
    ident = {
        "version": _FORMAT_VERSION,
        "experiment": experiment,
        "scale": asdict(scale),
        "params": (None if params is None
                   else {k: params[k] for k in sorted(params)}),
        "code": code_digest(),
    }
    blob = json.dumps(ident, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def load(key: str, cache_dir: str | Path = DEFAULT_CACHE_DIR):
    """Return the cached ``(report, shapes_hold)`` or None on miss.

    A malformed entry — unparseable JSON, missing fields, or a report
    whose checksum does not match — counts as a miss and is removed so
    the recomputed result can take its place.
    """
    path = Path(cache_dir) / f"{key}.json"
    try:
        payload = json.loads(path.read_text())
        report = payload["report"]
        shapes_hold = payload["shapes_hold"]
        checksum = payload["sha256"]
        if not isinstance(report, str) or not isinstance(shapes_hold, bool):
            raise ValueError("wrong field types")
        if hashlib.sha256(report.encode()).hexdigest() != checksum:
            raise ValueError("checksum mismatch")
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError):
        path.unlink(missing_ok=True)
        return None
    return report, shapes_hold


def store(key: str, experiment: str, report: str, shapes_hold: bool,
          cache_dir: str | Path = DEFAULT_CACHE_DIR) -> Path:
    """Write one cache entry; returns its path."""
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{key}.json"
    payload = {
        "experiment": experiment,
        "report": report,
        "shapes_hold": bool(shapes_hold),
        "sha256": hashlib.sha256(report.encode()).hexdigest(),
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=1))
    tmp.replace(path)
    return path


def _values_checksum(values: dict[str, Any]) -> str:
    blob = json.dumps(values, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def load_values(key: str,
                cache_dir: str | Path = DEFAULT_CACHE_DIR
                ) -> dict[str, Any] | None:
    """Return a cached sweep-point measurement dict, or None on miss.

    The same corruption discipline as :func:`load`: anything malformed
    is deleted and reported as a miss. JSON round-trips floats exactly
    (shortest-repr), so a cache hit is byte-identical to a recompute in
    every downstream CSV/report rendering.
    """
    path = Path(cache_dir) / f"{key}.json"
    try:
        payload = json.loads(path.read_text())
        values = payload["values"]
        checksum = payload["sha256"]
        if not isinstance(values, dict):
            raise ValueError("wrong field types")
        if _values_checksum(values) != checksum:
            raise ValueError("checksum mismatch")
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError):
        path.unlink(missing_ok=True)
        return None
    return values


def store_values(key: str, experiment: str, values: dict[str, Any],
                 cache_dir: str | Path = DEFAULT_CACHE_DIR) -> Path:
    """Write one sweep-point entry; returns its path."""
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{key}.json"
    payload = {
        "experiment": experiment,
        "values": values,
        "sha256": _values_checksum(values),
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=1))
    tmp.replace(path)
    return path
