"""Perf regression harness: measure the simulator, record the trajectory.

``python -m repro.bench perf`` runs the full experiment suite twice at
one scale — once on the optimized fast lanes (``batched=True,
fast_sim=True``) and once on the per-page reference path — and writes a
JSON record with, per experiment:

* wall seconds (machine- and load-dependent; interleave comparisons),
* simulated events dispatched (deterministic: same code + scale →
  same count, byte for byte),
* events per second (the honest single-machine throughput figure).

``perf --compare BASELINE CURRENT`` grades a fresh measurement against
a committed one. It never fails the build — CI runners are too noisy
for a wall-clock gate — but emits a GitHub ``::warning`` annotation
when the suite wall regresses beyond ``--warn-factor``.

The repo-root ``BENCH_perf.json`` is the committed trajectory. A
``seed_baseline`` section (the pre-fast-lane tree measured interleaved
on the same machine) is carried forward verbatim on regeneration so
the before/after record survives any number of refreshes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS
from repro.bench.scales import get_scale
from repro.sim.engine import track_environments, tracked_event_total

__all__ = ["measure_suite", "main"]


def measure_suite(scale) -> dict:
    """Run every experiment once at ``scale``; per-experiment metrics."""
    experiments = {}
    total_wall = 0.0
    total_events = 0
    for name, fn in EXPERIMENTS.items():
        track_environments(True)
        t0 = time.perf_counter()
        result = fn(scale)
        wall = time.perf_counter() - t0
        events = tracked_event_total()
        track_environments(False)
        experiments[name] = {
            "wall_s": round(wall, 3),
            "sim_events": events,
            "events_per_sec": round(events / wall) if wall > 0 else None,
            "shapes_hold": result.shapes_hold,
        }
        total_wall += wall
        total_events += events
        print(f"  {name:<10s} {wall:7.2f}s  {events:>10d} events",
              file=sys.stderr)
    return {
        "scale": scale.name,
        "config": {"batched": scale.batched, "fast_sim": scale.fast_sim},
        "experiments": experiments,
        "total_wall_s": round(total_wall, 2),
        "total_sim_events": total_events,
        "events_per_sec": (round(total_events / total_wall)
                           if total_wall > 0 else None),
    }


def _measure(scale_name: str, out_path: str, skip_reference: bool) -> int:
    scale = get_scale(scale_name)
    print(f"measuring optimized suite at scale '{scale.name}' ...",
          file=sys.stderr)
    optimized = measure_suite(
        replace(scale, batched=True, fast_sim=True))
    payload = {
        "description": "SlimIO reproduction perf trajectory "
                       "(see docs/PERFORMANCE.md)",
        "optimized": optimized,
    }
    if not skip_reference:
        print("measuring per-page reference path ...", file=sys.stderr)
        reference = measure_suite(
            replace(scale, batched=False, fast_sim=False))
        payload["reference"] = reference
        if reference["total_wall_s"]:
            payload["speedup_vs_reference"] = round(
                reference["total_wall_s"] / optimized["total_wall_s"], 2)

    out = Path(out_path)
    # the seed baseline was measured once on the pre-fast-lane tree and
    # cannot be regenerated from this tree — carry it forward verbatim
    try:
        previous = json.loads(out.read_text())
        if "seed_baseline" in previous:
            payload["seed_baseline"] = previous["seed_baseline"]
            seed_wall = previous["seed_baseline"].get("total_wall_s")
            if seed_wall:
                payload["speedup_vs_seed"] = round(
                    seed_wall / optimized["total_wall_s"], 2)
    except (OSError, ValueError):
        pass
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"(perf record written to {out})", file=sys.stderr)
    return 0


def _compare(base_path: str, curr_path: str, warn_factor: float) -> int:
    try:
        base = json.loads(Path(base_path).read_text())
        curr = json.loads(Path(curr_path).read_text())
        base_wall = base["optimized"]["total_wall_s"]
        curr_wall = curr["optimized"]["total_wall_s"]
    except (OSError, ValueError, KeyError) as exc:
        # a missing/unreadable record is not a perf regression
        print(f"perf compare skipped: {exc}", file=sys.stderr)
        return 0
    factor = curr_wall / base_wall if base_wall else float("inf")
    print(f"suite wall: baseline {base_wall:.2f}s, current "
          f"{curr_wall:.2f}s ({factor:.2f}x)")
    base_ev = base["optimized"].get("total_sim_events")
    curr_ev = curr["optimized"].get("total_sim_events")
    if base_ev and curr_ev and base_ev != curr_ev:
        print(f"note: simulated event totals differ "
              f"({base_ev} -> {curr_ev}); the model changed, so wall "
              f"deltas are not pure overhead")
    if factor > warn_factor:
        # GitHub annotation; deliberately not a failure — runner noise
        print(f"::warning ::perf-smoke: experiment suite wall "
              f"{curr_wall:.2f}s is {factor:.2f}x the committed "
              f"baseline {base_wall:.2f}s (warn threshold "
              f"{warn_factor:.1f}x)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf",
        description="Measure simulator throughput / compare perf records.",
    )
    parser.add_argument("--scale", default="test",
                        help="scale preset to measure (default: test)")
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="output JSON path (default: BENCH_perf.json)")
    parser.add_argument("--skip-reference", action="store_true",
                        help="skip the slow per-page reference "
                             "measurement (optimized lanes only)")
    parser.add_argument("--compare", nargs=2,
                        metavar=("BASELINE", "CURRENT"),
                        help="compare two perf records instead of "
                             "measuring")
    parser.add_argument("--warn-factor", type=float, default=2.0,
                        help="emit a warning when CURRENT suite wall "
                             "exceeds BASELINE by this factor "
                             "(default: 2.0)")
    args = parser.parse_args(argv)
    if args.compare:
        return _compare(args.compare[0], args.compare[1], args.warn_factor)
    return _measure(args.scale, args.out, args.skip_reference)


if __name__ == "__main__":
    sys.exit(main())
