"""Perf regression harness: measure the simulator, record the trajectory.

``python -m repro.bench perf`` runs the full experiment suite twice at
one scale — once on the optimized fast lanes (``batched=True,
fast_sim=True``) and once on the per-page reference path — and writes a
JSON record with, per experiment:

* wall seconds (machine- and load-dependent; interleave comparisons),
* simulated events dispatched (deterministic: same code + scale →
  same count, byte for byte),
* events per second (the honest single-machine throughput figure).

``perf --compare BASELINE CURRENT`` grades a fresh measurement against
a committed one and **fails** (exit 1) on a regression:

* wall clock beyond ``--fail-factor`` (generous — CI runners are
  noisy; ``--warn-factor`` still annotates below it), and
* simulated event count beyond ``--event-factor`` (tight, default
  1.05x: event counts are deterministic, so this is the
  machine-independent "tracing off costs <5%" overhead gate — a
  tracer must add *zero* simulator events).

``--warn-only`` is the escape hatch: every breach demotes to a
``::warning`` annotation and the exit stays 0. CI wires it to a PR
label so intentional model growth can land, visibly.

The repo-root ``BENCH_perf.json`` is the committed trajectory. A
``seed_baseline`` section (the pre-fast-lane tree measured interleaved
on the same machine) is carried forward verbatim on regeneration so
the before/after record survives any number of refreshes, and every
regeneration appends one row to a ``trajectory`` list so the perf
history reads straight out of the committed record.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS
from repro.bench.scales import get_scale
from repro.sim.engine import track_environments, tracked_event_total

__all__ = ["measure_suite", "append_trajectory", "compare_records", "main"]


def measure_suite(scale) -> dict:
    """Run every experiment once at ``scale``; per-experiment metrics."""
    experiments = {}
    total_wall = 0.0
    total_events = 0
    for name, fn in EXPERIMENTS.items():
        track_environments(True)
        t0 = time.perf_counter()
        result = fn(scale)
        wall = time.perf_counter() - t0
        events = tracked_event_total()
        track_environments(False)
        experiments[name] = {
            "wall_s": round(wall, 3),
            "sim_events": events,
            "events_per_sec": round(events / wall) if wall > 0 else None,
            "shapes_hold": result.shapes_hold,
        }
        total_wall += wall
        total_events += events
        print(f"  {name:<10s} {wall:7.2f}s  {events:>10d} events",
              file=sys.stderr)
    from repro.sim.compiled import engine_backend

    return {
        "scale": scale.name,
        "config": {"batched": scale.batched, "fast_sim": scale.fast_sim,
                   "fast_forward": scale.fast_forward,
                   "engine_backend": engine_backend()},
        "experiments": experiments,
        "total_wall_s": round(total_wall, 2),
        "total_sim_events": total_events,
        "events_per_sec": (round(total_events / total_wall)
                           if total_wall > 0 else None),
    }


def append_trajectory(previous: dict, optimized: dict) -> list[dict]:
    """The previous record's trajectory plus one row for this run.

    Rows keep only the deterministic shape (scale, experiment count,
    sim events) and the headline wall/throughput numbers — enough to
    plot the perf history straight out of the committed record without
    digging through git.
    """
    rows = [dict(r) for r in previous.get("trajectory", [])
            if isinstance(r, dict)]
    rows.append({
        "scale": optimized.get("scale"),
        "experiments": len(optimized.get("experiments", {})),
        "total_wall_s": optimized.get("total_wall_s"),
        "total_sim_events": optimized.get("total_sim_events"),
        "events_per_sec": optimized.get("events_per_sec"),
    })
    return rows


def _measure(scale_name: str, out_path: str, skip_reference: bool) -> int:
    scale = get_scale(scale_name)
    print(f"measuring optimized suite at scale '{scale.name}' ...",
          file=sys.stderr)
    optimized = measure_suite(
        replace(scale, batched=True, fast_sim=True, fast_forward=True))
    payload = {
        "description": "SlimIO reproduction perf trajectory "
                       "(see docs/PERFORMANCE.md)",
        "optimized": optimized,
    }
    if not skip_reference:
        print("measuring per-page reference path ...", file=sys.stderr)
        reference = measure_suite(
            replace(scale, batched=False, fast_sim=False,
                    fast_forward=False))
        payload["reference"] = reference
        if reference["total_wall_s"]:
            payload["speedup_vs_reference"] = round(
                reference["total_wall_s"] / optimized["total_wall_s"], 2)

    out = Path(out_path)
    # the seed baseline was measured once on the pre-fast-lane tree and
    # cannot be regenerated from this tree — carry it forward verbatim
    try:
        previous = json.loads(out.read_text())
    except (OSError, ValueError):
        previous = {}
    for carried in ("seed_baseline", "speedup_vs_seed_interleaved",
                    "notes"):
        if carried in previous:
            payload[carried] = previous[carried]
    if "seed_baseline" in payload:
        seed_wall = payload["seed_baseline"].get("total_wall_s")
        if seed_wall:
            payload["speedup_vs_seed"] = round(
                seed_wall / optimized["total_wall_s"], 2)
    payload["trajectory"] = append_trajectory(previous, optimized)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"(perf record written to {out})", file=sys.stderr)
    return 0


def compare_records(base: dict, curr: dict, *, warn_factor: float = 2.0,
                    fail_factor: float = 3.0,
                    event_factor: float = 1.05) -> tuple[list[str], list[str]]:
    """Grade CURRENT against BASELINE; returns (warnings, failures).

    Wall clock is machine-dependent, so it only *fails* beyond the
    generous ``fail_factor`` (warns beyond ``warn_factor``). Simulated
    event counts are deterministic — same code, same scale, same count
    — so per-experiment growth beyond ``event_factor`` fails outright:
    this is the machine-independent form of the "tracing disabled must
    cost <5%" overhead budget (a tracer schedules zero events, so any
    growth here is real model work, not observation).
    """
    warnings: list[str] = []
    failures: list[str] = []
    base_wall = base["optimized"]["total_wall_s"]
    curr_wall = curr["optimized"]["total_wall_s"]
    factor = curr_wall / base_wall if base_wall else float("inf")
    print(f"suite wall: baseline {base_wall:.2f}s, current "
          f"{curr_wall:.2f}s ({factor:.2f}x)")
    if factor > fail_factor:
        failures.append(
            f"suite wall {curr_wall:.2f}s is {factor:.2f}x the baseline "
            f"{base_wall:.2f}s (fail threshold {fail_factor:.1f}x)")
    elif factor > warn_factor:
        warnings.append(
            f"suite wall {curr_wall:.2f}s is {factor:.2f}x the baseline "
            f"{base_wall:.2f}s (warn threshold {warn_factor:.1f}x)")

    base_exp = base["optimized"].get("experiments", {})
    curr_exp = curr["optimized"].get("experiments", {})
    for name in sorted(set(base_exp) | set(curr_exp)):
        b = base_exp.get(name, {}).get("sim_events")
        c = curr_exp.get(name, {}).get("sim_events")
        if not b or not c:
            # an experiment added or retired since the baseline — the
            # suite totals are incomparable, but that is intentional
            # model growth, not a regression
            print(f"note: experiment '{name}' only in "
                  f"{'current' if c else 'baseline'} record; "
                  f"regenerate BENCH_perf.json to rebaseline")
            continue
        if c > b * event_factor:
            failures.append(
                f"{name}: simulated events grew {b} -> {c} "
                f"({c / b:.3f}x > {event_factor:.2f}x); event counts "
                f"are deterministic, so this is real added work")
        elif c != b:
            print(f"note: {name} simulated events changed {b} -> {c} "
                  f"(within {event_factor:.2f}x budget)")
    return warnings, failures


def _compare(base_path: str, curr_path: str, warn_factor: float,
             fail_factor: float, event_factor: float,
             warn_only: bool) -> int:
    try:
        base = json.loads(Path(base_path).read_text())
        curr = json.loads(Path(curr_path).read_text())
        warnings, failures = compare_records(
            base, curr, warn_factor=warn_factor, fail_factor=fail_factor,
            event_factor=event_factor)
    except (OSError, ValueError, KeyError) as exc:
        # a missing/unreadable record is not a perf regression
        print(f"perf compare skipped: {exc}", file=sys.stderr)
        return 0
    for msg in warnings:
        print(f"::warning ::perf-smoke: {msg}")
    if failures and warn_only:
        # escape hatch (CI: 'perf-exempt' PR label) — keep the breach
        # visible as annotations but let the build pass
        for msg in failures:
            print(f"::warning ::perf-smoke (exempted): {msg}")
        return 0
    for msg in failures:
        print(f"::error ::perf-smoke: {msg}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf",
        description="Measure simulator throughput / compare perf records.",
    )
    parser.add_argument("--scale", default="test",
                        help="scale preset to measure (default: test)")
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="output JSON path (default: BENCH_perf.json)")
    parser.add_argument("--skip-reference", action="store_true",
                        help="skip the slow per-page reference "
                             "measurement (optimized lanes only)")
    parser.add_argument("--compare", nargs=2,
                        metavar=("BASELINE", "CURRENT"),
                        help="compare two perf records instead of "
                             "measuring")
    parser.add_argument("--warn-factor", type=float, default=2.0,
                        help="annotate when CURRENT suite wall exceeds "
                             "BASELINE by this factor (default: 2.0)")
    parser.add_argument("--fail-factor", type=float, default=3.0,
                        help="fail (exit 1) when CURRENT suite wall "
                             "exceeds BASELINE by this factor "
                             "(default: 3.0)")
    parser.add_argument("--event-factor", type=float, default=1.05,
                        help="fail when any experiment's deterministic "
                             "simulated-event count exceeds BASELINE by "
                             "this factor (default: 1.05)")
    parser.add_argument("--warn-only", action="store_true",
                        help="demote compare failures to warnings "
                             "(escape hatch; CI maps the 'perf-exempt' "
                             "PR label to this flag)")
    args = parser.parse_args(argv)
    if args.compare:
        return _compare(args.compare[0], args.compare[1], args.warn_factor,
                        args.fail_factor, args.event_factor, args.warn_only)
    return _measure(args.scale, args.out, args.skip_reference)


if __name__ == "__main__":
    sys.exit(main())
