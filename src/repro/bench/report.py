"""Result containers and plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

__all__ = ["format_table", "format_dict_rows", "format_top_tables",
           "ExperimentResult"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_dict_rows(headers: Sequence[str],
                     rows: Sequence[dict]) -> str:
    """Render dict rows against a fixed header set, blanks for
    missing cells — safe for heterogeneous (success + error) rows."""
    return format_table(headers, [[r.get(h, "") for h in headers]
                                  for r in rows])


def format_top_tables(result, metric: str, n: int = 5,
                      maximize: bool = True) -> str:
    """Best-N and worst-N slices of a sweep, ranked by ``metric``.

    ``result`` is a :class:`repro.bench.sweep.SweepResult`. Only
    successful rows rank; the infeasible-corner count is reported in
    the footer so a sweep that silently lost half its grid to errors
    cannot read as full coverage.
    """
    headers = result.headers()
    best = result.top(metric, n=n, maximize=maximize)
    worst = result.top(metric, n=n, maximize=not maximize)
    ok = len(result.ok_rows())
    err = len(result.rows) - ok
    out = [f"Top {len(best)} by {metric} "
           f"({'max' if maximize else 'min'} first):",
           format_dict_rows(headers, best), "",
           f"Bottom {len(worst)} by {metric}:",
           format_dict_rows(headers, worst), "",
           f"({ok} feasible points, {err} infeasible)"]
    return "\n".join(out)


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment: str  # "Table 3", "Figure 4", ...
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    #: the values the paper reports, same headers where sensible
    paper_reference: str | None = None
    #: observations about whether the paper's shape holds in this run
    shape_checks: list[tuple[str, bool]] = field(default_factory=list)
    notes: str = ""
    #: raw series for figures: name -> (x array, y array)
    series: dict = field(default_factory=dict)
    #: per-run telemetry snapshots: run label -> MetricsRegistry.snapshot()
    telemetry: dict = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        self.rows.append(list(values))

    def check(self, description: str, ok: bool) -> None:
        self.shape_checks.append((description, bool(ok)))

    @property
    def shapes_hold(self) -> bool:
        return all(ok for _, ok in self.shape_checks)

    def format(self) -> str:
        out = [f"== {self.experiment}: {self.title} ==", ""]
        out.append(format_table(self.headers, self.rows))
        if self.series:
            from repro.bench.plots import timeline_chart

            out += ["", timeline_chart(self.series)]
        if self.paper_reference:
            out += ["", "Paper reference:", self.paper_reference]
        if self.shape_checks:
            out.append("")
            out.append("Shape checks:")
            for desc, ok in self.shape_checks:
                out.append(f"  [{'ok' if ok else 'MISS'}] {desc}")
        if self.notes:
            out += ["", self.notes]
        if self.telemetry:
            out.append("")
            out.append("Telemetry (key counters per run):")
            for label, snap in self.telemetry.items():
                picks = _telemetry_highlights(snap)
                if picks:
                    out.append(f"  {label}: " + "  ".join(picks))
        return "\n".join(out)


#: metrics surfaced in the per-run telemetry footer, (key, short label)
_HIGHLIGHT_METRICS = (
    ("ftl_waf", "waf"),
    ("server_wal_buffer_stalls_total", "wal-stalls"),
    ("fs_journal_commits_total", "journal-commits"),
    ("wal_group_commits_total", "group-commits"),
)


def _telemetry_highlights(snapshot: dict) -> list[str]:
    """Pick a handful of headline metrics out of a registry snapshot."""
    picks = []
    for key, label in _HIGHLIGHT_METRICS:
        for name, summary in snapshot.items():
            if name == key or name.startswith(key + "{"):
                picks.append(f"{label}={_fmt(summary.get('value', 0.0))}")
                break
    return picks
