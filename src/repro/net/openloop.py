"""Open-loop load driver: offered-load sweeps and knee detection.

The driver realizes one arrival schedule against one system: arrivals
are split round-robin across ``clients`` sessions, each owning one
connection (reconnecting on drop/churn).  A session sleeps until the
arrival's *intended* instant, then transmits the op group — if the
session is running late (pipeline window stalled, connection dropped),
the group goes out late but keeps its intended stamp, so the measured
latency includes every source of queueing.  This is the wrk2
"constant throughput" discipline: the load generator never lets the
server's slowness quietly thin the schedule.

A sweep runs the same schedule shape at increasing rates on fresh
systems and reports p50/p99/p999 and goodput per offered load; the
*saturation knee* is the first offered load whose p999 exceeds
``knee_factor`` × the best p999 on the curve — left of it latency is
flat, right of it the queue grows without bound and percentiles are
set by the horizon, not the service time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator, Sequence

import numpy as np

from repro.net.conn import Connection
from repro.net.frontend import NetFrontend
from repro.net.ops import OpStream
from repro.persist.snapshot import SnapshotKind
from repro.sim import Environment

__all__ = [
    "OpenLoopPoint",
    "run_open_loop",
    "summarize_point",
    "detect_knee",
    "curve_csv",
]


@dataclass
class OpenLoopPoint:
    """One offered-load point of the latency-vs-load curve."""

    offered: float            # arrival rate requested (groups/s)
    arrivals: int             # groups scheduled
    issued: int               # commands put on the wire
    completed: int
    shed: int
    dropped_cmds: int
    dropped_conns: int
    refused: int
    goodput: float            # completed commands / horizon
    mean: float
    p50: float
    p99: float
    p999: float
    p999_wal_only: float
    p999_wal_snapshot: float
    completed_wal_only: int
    completed_wal_snapshot: int
    peak_inflight: int
    max_conn_queue: int


def _session(env: Environment, fe: NetFrontend, stream: OpStream,
             times: np.ndarray, indices: Sequence[int],
             conn_lifetime: int | None,
             reconnect_backoff: float) -> Generator:
    conn: Connection | None = None
    groups_on_conn = 0
    for i in indices:
        t_int = float(times[i])
        if env.now < t_int:
            yield env.timeout(t_int - env.now)
        while conn is None or conn.closed:
            conn = yield from fe.listener.connect()
            if conn is None:
                yield env.timeout(reconnect_backoff)
            groups_on_conn = 0
        yield from conn.send(stream.group(i), t_int)
        groups_on_conn += 1
        if conn_lifetime is not None and groups_on_conn >= conn_lifetime:
            # connection churn: drain replies, close, reconnect lazily
            yield from conn.drain()
            yield from conn.close()
    if conn is not None and not conn.closed:
        yield from conn.drain()
        yield from conn.close()


def run_open_loop(env: Environment, fe: NetFrontend, stream: OpStream,
                  times: np.ndarray, *, clients: int,
                  horizon: float, servers: Sequence = (),
                  snapshot_at: float | None = None,
                  conn_lifetime: int | None = None,
                  reconnect_backoff: float = 100e-6) -> None:
    """Drive the whole schedule; returns once ``horizon`` sim-seconds
    have elapsed (whether or not every command completed — under
    overload the honest answer is "it didn't")."""
    if clients < 1:
        raise ValueError("clients must be >= 1")
    for k in range(clients):
        idx = range(k, len(times), clients)
        env.process(
            _session(env, fe, stream, times, idx, conn_lifetime,
                     reconnect_backoff),
            name=f"openloop-client{k}")
    if snapshot_at is not None and servers:
        def _snap() -> Generator:
            yield env.timeout(snapshot_at)
            for s in servers:
                s.start_snapshot(SnapshotKind.ON_DEMAND)
        env.process(_snap(), name="openloop-snapshot")
    env.run(until=env.now + horizon)
    fe.close()


def _pct(lat: np.ndarray, q: float) -> float:
    if len(lat) == 0:
        return 0.0
    return float(np.percentile(lat, q))


def summarize_point(fe: NetFrontend, offered: float, arrivals: int,
                    horizon: float,
                    snapshot_windows: Sequence[tuple[float, float]] = (),
                    ) -> OpenLoopPoint:
    """Reduce one run's completions to a curve point, split into
    WAL-only vs WAL&Snapshot phases by completion time."""
    comp = fe.completions
    if comp:
        t_int = np.array([c[0] for c in comp])
        t_done = np.array([c[1] for c in comp])
        lat = t_done - t_int
    else:
        t_done = np.empty(0)
        lat = np.empty(0)
    in_snap = np.zeros(len(lat), dtype=bool)
    for a, b in snapshot_windows:
        in_snap |= (t_done >= a) & (t_done <= b)
    st = fe.stats()
    return OpenLoopPoint(
        offered=offered,
        arrivals=arrivals,
        issued=int(st["issued"]),
        completed=len(lat),
        shed=int(st["shed"]),
        dropped_cmds=int(st["dropped_cmds"]),
        dropped_conns=int(st["dropped_conns"]),
        refused=int(st["refused"]),
        goodput=len(lat) / horizon if horizon > 0 else 0.0,
        mean=float(lat.mean()) if len(lat) else 0.0,
        p50=_pct(lat, 50.0),
        p99=_pct(lat, 99.0),
        p999=_pct(lat, 99.9),
        p999_wal_only=_pct(lat[~in_snap], 99.9),
        p999_wal_snapshot=_pct(lat[in_snap], 99.9),
        completed_wal_only=int((~in_snap).sum()),
        completed_wal_snapshot=int(in_snap.sum()),
        peak_inflight=int(st["peak_inflight"]),
        max_conn_queue=int(st["max_conn_queue"]),
    )


def detect_knee(points: Sequence[OpenLoopPoint],
                factor: float = 4.0) -> float | None:
    """The saturation knee: the lowest offered load whose p999 exceeds
    ``factor`` × the best (lowest) p999 on the curve.  ``None`` when
    the whole sweep stays flat (never pushed past saturation)."""
    with_lat = [p for p in points if p.completed > 0]
    if len(with_lat) < 2:
        return None
    floor = min(p.p999 for p in with_lat)
    if floor <= 0.0:
        return None
    for p in sorted(with_lat, key=lambda p: p.offered):
        if p.p999 > factor * floor:
            return p.offered
    return None


_CSV_FIELDS = (
    "offered", "arrivals", "issued", "completed", "shed", "dropped_cmds",
    "dropped_conns", "refused", "goodput", "mean", "p50", "p99", "p999",
    "p999_wal_only", "p999_wal_snapshot", "completed_wal_only",
    "completed_wal_snapshot", "peak_inflight", "max_conn_queue",
)


def curve_csv(points: Sequence[OpenLoopPoint]) -> str:
    """The latency-vs-offered-load curve as a CSV string (the net-smoke
    CI artifact)."""
    lines = [",".join(_CSV_FIELDS)]
    for p in points:
        row = []
        for f in _CSV_FIELDS:
            v = getattr(p, f)
            row.append(f"{v:.9g}" if isinstance(v, float) else str(v))
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"
