"""repro.net — the simulated connection front end.

Open-loop arrival processes, per-connection RESP2 framing and state
machines, bounded queues with configurable backpressure, a server-wide
admission controller, and the offered-load sweep driver.  Everything
runs on the simulated clock (slimlint SLIM009 forbids wall clocks and
real sockets in this package); latency is always measured from the
request's *intended* start, so there is no coordinated omission.
"""

from repro.net.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MmppArrivals,
    PoissonArrivals,
)
from repro.net.conn import BackpressurePolicy, Connection, NetConfig
from repro.net.frontend import AdmissionController, Listener, NetFrontend
from repro.net.openloop import (
    OpenLoopPoint,
    curve_csv,
    detect_knee,
    run_open_loop,
    summarize_point,
)
from repro.net.ops import MIXES, MixSpec, OpStream

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MmppArrivals",
    "DiurnalArrivals",
    "BackpressurePolicy",
    "NetConfig",
    "Connection",
    "AdmissionController",
    "Listener",
    "NetFrontend",
    "MixSpec",
    "MIXES",
    "OpStream",
    "OpenLoopPoint",
    "run_open_loop",
    "summarize_point",
    "detect_knee",
    "curve_csv",
]
