"""The server-wide front end: listener, admission control, accounting.

The :class:`NetFrontend` sits between open-loop client sessions and a
backend (:class:`~repro.imdb.server.Server` or the cluster router —
anything with an ``execute(op)`` generator).  It owns:

* the :class:`Listener` — a bounded accept backlog; a full backlog
  refuses the connection attempt (the client backs off and retries);
* the :class:`AdmissionController` — one server-wide bound on
  commands admitted (queued + executing) across *all* connections, so
  a thundering herd cannot grow server memory without limit no matter
  how many connections it spreads over;
* completion accounting — every finished command records
  ``(intended start, completion, op)`` so latency curves are computed
  against the open-loop schedule, never against the throttled actual
  send times.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator

from repro.net.conn import Connection, NetConfig
from repro.sim import Environment, Event, Store

__all__ = ["AdmissionController", "Listener", "NetFrontend"]

_STOP = object()


class AdmissionController:
    """Server-wide inflight-command bound with blocking acquire."""

    def __init__(self, env: Environment, limit: int):
        self.env = env
        self.limit = limit
        self.inflight = 0
        self.peak = 0
        self.rejections = 0
        self._waiters: deque[Event] = deque()

    def try_acquire(self) -> bool:
        if self.inflight < self.limit:
            self.inflight += 1
            if self.inflight > self.peak:
                self.peak = self.inflight
            return True
        self.rejections += 1
        return False

    def acquire(self) -> Generator:
        """Block until a slot is granted (BLOCK policy readers)."""
        while not self.try_acquire():
            ev = Event(self.env)
            self._waiters.append(ev)
            yield ev

    def release(self) -> None:
        self.inflight -= 1
        if self._waiters:
            # wake one waiter; it re-contends via try_acquire (no slot
            # handover, so a racing try_acquire may win — fine, the
            # woken reader just waits again)
            self._waiters.popleft().succeed()


class Listener:
    """A simulated listening socket with a bounded accept backlog."""

    def __init__(self, env: Environment, frontend, backlog: int,
                 accept_cost: float):
        self.env = env
        self.fe = frontend
        self.accept_cost = accept_cost
        self.backlog = Store(env, capacity=backlog)
        self.accepted = 0
        self.refused = 0
        self._proc = env.process(self._accept_loop(), name="listener")

    def connect(self) -> Generator:
        """Client side: attempt a connection (generator).

        Returns the :class:`Connection`, or ``None`` when the backlog
        is full (ECONNREFUSED — the caller should back off and retry).
        """
        if len(self.backlog.items) >= self.backlog.capacity:
            self.refused += 1
            return None
        ev = Event(self.env)
        yield self.backlog.put(ev)  # room verified: accepted at birth
        conn = yield ev
        return conn

    def close(self) -> None:
        self.backlog.put(_STOP)

    def _accept_loop(self) -> Generator:
        while True:
            ev = yield self.backlog.get()
            if ev is _STOP:
                return
            if self.accept_cost:
                yield self.env.timeout(self.accept_cost)
            self.accepted += 1
            ev.succeed(self.fe._new_connection())


class NetFrontend:
    """Everything above the backend: connections, limits, accounting."""

    def __init__(self, env: Environment, backend, cfg: NetConfig | None = None,
                 rtrace=None):
        self.env = env
        self.backend = backend
        self.cfg = cfg or NetConfig()
        #: request tracer shared with the backend (may be None)
        self.rtrace = rtrace
        self.admission = AdmissionController(env, self.cfg.max_inflight)
        self.listener = Listener(env, self, self.cfg.accept_queue,
                                 self.cfg.accept_cost)
        #: (t_intended, t_complete, op kind) per finished command
        self.completions: list[tuple[float, float, str]] = []
        self.issued = 0
        self.shed = 0
        self.dropped_conns = 0
        self.dropped_cmds = 0
        self.unsent = 0
        self._conn_seq = 0
        self.connections: list[Connection] = []

    # ------------------------------------------------------------ wiring
    def _new_connection(self) -> Connection:
        self._conn_seq += 1
        slow = (self.cfg.slow_every > 0
                and self._conn_seq % self.cfg.slow_every == 0)
        conn = Connection(self.env, self, self.cfg, self._conn_seq,
                          slow=slow)
        self.connections.append(conn)
        return conn

    def record_completion(self, op, t_intended: float,
                          t_complete: float) -> None:
        self.completions.append((t_intended, t_complete, op.op))

    # ------------------------------------------------------------ stats
    @property
    def completed(self) -> int:
        return len(self.completions)

    @property
    def max_conn_queue(self) -> int:
        return max((c.max_queue_seen for c in self.connections), default=0)

    def stats(self) -> dict[str, float]:
        return {
            "issued": float(self.issued),
            "completed": float(self.completed),
            "shed": float(self.shed),
            "dropped_conns": float(self.dropped_conns),
            "dropped_cmds": float(self.dropped_cmds),
            "unsent": float(self.unsent),
            "refused": float(self.listener.refused),
            "accepted": float(self.listener.accepted),
            "peak_inflight": float(self.admission.peak),
            "admission_rejections": float(self.admission.rejections),
            "max_conn_queue": float(self.max_conn_queue),
        }

    def close(self) -> None:
        """End of run: stop accepting; leave idle connection processes
        parked (they hold no events and cost nothing)."""
        self.listener.close()
