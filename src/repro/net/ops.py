"""Operation streams for the open-loop front end.

An :class:`OpStream` marries an arrival schedule to a workload mix: it
pre-generates one `ClientOp` per arrival, **in arrival order**, so the
op sequence is a pure function of (mix, seed, count) and never depends
on how connections interleave at runtime.  Scenario twists — a hotspot
shift mid-run, a TTL/expiry storm — are expressed at this level too,
keyed off the arrival index, which keeps every run deterministic.

Mixes follow the YCSB core-workload naming:

========  =========================================  ================
preset    shape                                      distribution
========  =========================================  ================
ycsb_a    50% read / 50% update                      zipfian
ycsb_b    95% read / 5% update                       zipfian
ycsb_c    100% read                                  zipfian
ycsb_d    95% read / 5% insert, reads skew to        latest
          recently inserted keys
ycsb_e    95% scan (multi-GET surrogate) / 5%        zipfian
          insert
ycsb_f    50% read / 50% read-modify-write           zipfian
========  =========================================  ================

Scans are modeled as short multi-GET runs over adjacent key indices
(the store has no range iterator); RMW is a GET immediately followed by
a SET on the same key from the same connection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.imdb.server import ClientOp
from repro.workloads.keys import ZipfianKeys, make_key, make_value

__all__ = ["MixSpec", "MIXES", "OpStream"]


@dataclass(frozen=True)
class MixSpec:
    """Fractions of each op class; must sum to <= 1 (rest = read)."""

    read: float = 1.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0
    scan: float = 0.0
    #: key-chooser: "zipfian" | "uniform" | "latest"
    distribution: str = "zipfian"
    #: max keys touched by one scan (uniform in [1, scan_max])
    scan_max: int = 8
    #: fraction of writes that carry a TTL (expiry storms raise this)
    ttl_fraction: float = 0.0
    ttl: float = 0.05

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw + self.scan
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"mix fractions sum to {total}, want 1.0")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise ValueError(f"unknown distribution {self.distribution!r}")


MIXES: dict[str, MixSpec] = {
    "ycsb_a": MixSpec(read=0.5, update=0.5),
    "ycsb_b": MixSpec(read=0.95, update=0.05),
    "ycsb_c": MixSpec(read=1.0),
    "ycsb_d": MixSpec(read=0.95, insert=0.05, distribution="latest"),
    "ycsb_e": MixSpec(read=0.0, scan=0.95, insert=0.05),
    "ycsb_f": MixSpec(read=0.5, rmw=0.5),
}


class OpStream:
    """Pre-generated sequence of op groups, one group per arrival.

    A *group* is a tuple of `ClientOp`s issued back-to-back on the same
    connection (scans and RMW expand to several commands; plain ops are
    singleton groups).  ``group(i)`` is deterministic in ``i``.
    """

    def __init__(self, mix: MixSpec, count: int, keyspace: int,
                 value_size: int = 128, seed: int = 7,
                 hotspot_shift_at: int | None = None,
                 ttl_storm: tuple[int, int] | None = None):
        self.mix = mix
        self.count = count
        self.keyspace = keyspace
        self.value_size = value_size
        self.seed = seed
        self.hotspot_shift_at = hotspot_shift_at
        self.ttl_storm = ttl_storm
        self._groups = self._generate()

    # -- key choosers -------------------------------------------------

    def _choose_keys(self, rng: np.random.Generator) -> np.ndarray:
        n, ks = self.count, self.keyspace
        if self.mix.distribution == "uniform":
            return rng.integers(0, ks, size=n)
        if self.mix.distribution == "latest":
            # rank 0 → newest key (YCSB "latest" semantics)
            z = ZipfianKeys(ks, seed=self.seed)
            return (ks - 1) - z.ranks(n)
        z = ZipfianKeys(ks, seed=self.seed)
        idx = z.draw(n)
        if self.hotspot_shift_at is not None and self.hotspot_shift_at < n:
            # mid-run hotspot move: same popularity curve, different
            # scramble, so the hot set lands on cold keys
            z2 = ZipfianKeys(ks, seed=self.seed + 0x51F7)
            idx[self.hotspot_shift_at:] = z2.draw(n - self.hotspot_shift_at)
        return idx

    # -- generation ---------------------------------------------------

    def _generate(self) -> list[tuple[ClientOp, ...]]:
        rng = np.random.default_rng(self.seed)
        keys = self._choose_keys(rng)
        roll = rng.random(self.count)
        scan_lens = rng.integers(1, self.mix.scan_max + 1, size=self.count)
        ttl_roll = rng.random(self.count)
        m = self.mix
        c_read = m.read
        c_update = c_read + m.update
        c_insert = c_update + m.insert
        c_rmw = c_insert + m.rmw

        groups: list[tuple[ClientOp, ...]] = []
        next_insert = self.keyspace  # inserts extend the keyspace
        for i in range(self.count):
            ttl_frac = m.ttl_fraction
            if self.ttl_storm is not None:
                lo, hi = self.ttl_storm
                if lo <= i < hi:
                    ttl_frac = 1.0
            ttl = m.ttl if ttl_roll[i] < ttl_frac else None
            k = make_key(int(keys[i]))
            r = roll[i]
            if r < c_read:
                groups.append((ClientOp("GET", k),))
            elif r < c_update:
                groups.append((ClientOp(
                    "SET", k, self._value(k), ttl=ttl),))
            elif r < c_insert:
                nk = make_key(next_insert)
                next_insert += 1
                groups.append((ClientOp(
                    "SET", nk, self._value(nk), ttl=ttl),))
            elif r < c_rmw:
                groups.append((ClientOp("GET", k),
                               ClientOp("SET", k, self._value(k), ttl=ttl)))
            else:  # scan: multi-GET over adjacent indices
                base = int(keys[i])
                ops = tuple(
                    ClientOp("GET", make_key((base + j) % self.keyspace))
                    for j in range(int(scan_lens[i])))
                groups.append(ops)
        return groups

    def _value(self, key: bytes) -> bytes:
        return make_value(key, self.value_size, incompressible_fraction=0.5)

    # -- access -------------------------------------------------------

    def group(self, i: int) -> tuple[ClientOp, ...]:
        return self._groups[i % len(self._groups)]

    def __len__(self) -> int:
        return self.count

    def with_count(self, count: int) -> "OpStream":
        """Regenerate the stream for a different arrival count."""
        return OpStream(self.mix, count, self.keyspace,
                        value_size=self.value_size, seed=self.seed,
                        hotspot_shift_at=self.hotspot_shift_at,
                        ttl_storm=self.ttl_storm)

    def scaled(self, **changes) -> "OpStream":
        """Regenerate with a modified mix (e.g. a TTL-storm variant)."""
        return OpStream(replace(self.mix, **changes), self.count,
                        self.keyspace, value_size=self.value_size,
                        seed=self.seed,
                        hotspot_shift_at=self.hotspot_shift_at,
                        ttl_storm=self.ttl_storm)
