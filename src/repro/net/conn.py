"""Per-connection state machines: framing, queues, backpressure.

A :class:`Connection` is one simulated TCP connection.  The client side
writes RESP2-encoded command bytes into the connection's inbox (in
fragments, paced by client bandwidth — slow clients trickle); the
server side runs two processes:

* a **reader** that feeds arriving chunks through a streaming
  :class:`~repro.imdb.resp.RespParser`, maps each complete frame to a
  :class:`~repro.imdb.server.ClientOp`, and *admits* it subject to the
  backpressure policy;
* a **dispatcher** that pops admitted commands off the bounded
  per-connection queue, executes them on the backend (a
  :class:`~repro.imdb.server.Server` or the cluster router — both
  expose the same ``execute`` generator), writes the RESP reply back at
  the client's drain rate, and completes the request.

Backpressure policies when the per-connection queue is full or the
server-wide admission limit is reached:

* ``BLOCK`` — the reader stops reading (TCP-style: bytes pile up in
  the inbox, the client's pipeline window eventually stalls it).
* ``SHED`` — reply ``-BUSY`` immediately; the command never reaches
  the backend.  The reply is a well-formed RESP error.
* ``DROP`` — close the connection, discarding its queue (admission
  slots are returned); the client sees the close and must reconnect.

Latency is measured from the request's **intended** start (its arrival
instant in the open-loop schedule), so queueing anywhere — client-side
window, inbox, connection queue, server CPU — is always included: no
coordinated omission.  Queue residency is recorded as ``net``-layer
spans on the request trace.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from collections.abc import Generator

from repro.imdb.resp import (
    ProtocolError,
    RespError,
    encode,
    encode_command,
    op_from_command,
    RespParser,
)
from repro.sim import Environment, Event, Store

__all__ = ["BackpressurePolicy", "NetConfig", "Connection"]

#: inbox/queue sentinel for connection teardown
_CLOSE = object()


class BackpressurePolicy(enum.Enum):
    BLOCK = "block"
    SHED = "shed"
    DROP = "drop"


@dataclass(frozen=True)
class NetConfig:
    """Connection-layer knobs (all times in sim seconds)."""

    #: pending-connection backlog on the listener; full = refused
    accept_queue: int = 64
    #: per-connection command queue bound
    conn_queue: int = 16
    #: server-wide admission limit (queued + executing commands)
    max_inflight: int = 256
    policy: BackpressurePolicy = BackpressurePolicy.BLOCK
    #: client-side pipelining window (commands in flight per connection)
    pipeline_depth: int = 1
    #: client writes are fragmented into chunks of this size
    fragment_bytes: int = 512
    #: client -> server path, bytes/s
    client_bandwidth: float = 100e6
    #: server -> client reply path, bytes/s
    server_bandwidth: float = 100e6
    #: every Nth accepted connection is a slow client (0 = none)
    slow_every: int = 0
    #: slow clients run both paths at this fraction of bandwidth
    slow_factor: float = 0.05
    #: per-command framing/dispatch CPU on the net thread
    parse_cpu: float = 0.5e-6
    #: listener accept(2) + session setup cost
    accept_cost: float = 2e-6
    busy_message: str = "BUSY server overloaded"
    #: keep every reply's wire bytes on the connection (tests only —
    #: unbounded memory under load)
    capture_replies: bool = False

    def __post_init__(self) -> None:
        if self.accept_queue < 1 or self.conn_queue < 1:
            raise ValueError("queue bounds must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.fragment_bytes < 1:
            raise ValueError("fragment_bytes must be >= 1")
        if not 0.0 < self.slow_factor <= 1.0:
            raise ValueError("slow_factor must be in (0, 1]")


class Connection:
    """One accepted connection; owned by a :class:`NetFrontend`."""

    def __init__(self, env: Environment, frontend, cfg: NetConfig,
                 conn_id: int, slow: bool = False):
        self.env = env
        self.fe = frontend
        self.cfg = cfg
        self.conn_id = conn_id
        self.slow = slow
        #: wire: the network itself is not the bottleneck we model, so
        #: the inbox is unbounded — backpressure acts via the reader
        self.inbox = Store(env)
        self.queue = Store(env, capacity=cfg.conn_queue)
        self.parser = RespParser()
        #: intended-start stamps for sent-but-not-yet-parsed commands
        #: (FIFO: frames come off the parser in send order)
        self._meta: deque[float] = deque()
        self.closed = False
        self.dropped = False
        self.max_queue_seen = 0
        #: reply wire bytes, oldest first (only with capture_replies)
        self.replies: list[bytes] = []
        self._outstanding = 0
        self._window_ev: Event | None = None
        self._reader = env.process(self._read_loop(),
                                   name=f"conn{conn_id}-rd")
        self._dispatcher = env.process(self._dispatch_loop(),
                                       name=f"conn{conn_id}-dx")

    # ------------------------------------------------------------ client side
    def send(self, group, t_intended: float) -> Generator:
        """Transmit one op group (generator; run from a client session).

        Respects the pipeline window: at most ``pipeline_depth``
        commands of this connection are unanswered at once.  Returns
        the number of commands actually put on the wire.
        """
        sent = 0
        for op in group:
            while self._outstanding >= self.cfg.pipeline_depth \
                    and not self.closed:
                if self._window_ev is None:
                    self._window_ev = Event(self.env)
                yield self._window_ev
            if self.closed:
                self.fe.unsent += len(group) - sent
                return sent
            data = encode_command(op)
            self._outstanding += 1
            self._meta.append(t_intended)
            self.fe.issued += 1
            bw = self._bandwidth(self.cfg.client_bandwidth)
            frag = self.cfg.fragment_bytes
            for i in range(0, len(data), frag):
                chunk = data[i:i + frag]
                yield self.env.timeout(len(chunk) / bw)
                if self.closed:
                    self.fe.unsent += len(group) - sent - 1
                    return sent
                yield self.inbox.put(chunk)
            sent += 1
        return sent

    def drain(self) -> Generator:
        """Wait until every sent command has been answered."""
        while self._outstanding > 0 and not self.closed:
            if self._window_ev is None:
                self._window_ev = Event(self.env)
            yield self._window_ev

    def close(self) -> Generator:
        """Graceful client-initiated close (after replies drained)."""
        if not self.closed:
            yield self.inbox.put(_CLOSE)

    @property
    def can_send(self) -> bool:
        return not self.closed

    # ------------------------------------------------------------ internals
    def _bandwidth(self, bw: float) -> float:
        return bw * self.cfg.slow_factor if self.slow else bw

    def _wake_window(self) -> None:
        ev = self._window_ev
        if ev is not None:
            self._window_ev = None
            ev.succeed()

    def _pay_write(self, nbytes: int) -> Generator:
        yield self.env.timeout(nbytes / self._bandwidth(
            self.cfg.server_bandwidth))

    # ------------------------------------------------------------ reader
    def _read_loop(self) -> Generator:
        env = self.env
        cfg = self.cfg
        while True:
            chunk = yield self.inbox.get()
            if chunk is _CLOSE or self.closed:
                # graceful close: the dispatcher drains what's queued,
                # then exits on the sentinel
                if not self.closed:
                    self.closed = True
                    yield self.queue.put(_CLOSE)
                self._wake_window()
                return
            self.parser.feed(chunk)
            while True:
                try:
                    done, value = self.parser.parse()
                except ProtocolError:
                    self._drop_close()
                    return
                if not done:
                    break
                if cfg.parse_cpu:
                    yield env.timeout(cfg.parse_cpu)
                try:
                    op = op_from_command(value)
                except ProtocolError:
                    self._drop_close()
                    return
                t_int = self._meta.popleft() if self._meta else env.now
                yield from self._admit(op, t_int)
                if self.dropped:
                    return

    def _admit(self, op, t_int: float) -> Generator:
        fe = self.fe
        pol = self.cfg.policy
        if pol is BackpressurePolicy.BLOCK:
            # reader stalls: bytes pile up in the inbox and the
            # client's pipeline window eventually stops the source
            yield from fe.admission.acquire()
            yield self.queue.put((op, t_int, self.env.now))
        elif pol is BackpressurePolicy.SHED:
            if len(self.queue.items) >= self.queue.capacity \
                    or not fe.admission.try_acquire():
                fe.shed += 1
                self._outstanding -= 1
                self._wake_window()
                busy = encode(RespError(self.cfg.busy_message))
                if self.cfg.capture_replies:
                    self.replies.append(busy)
                yield from self._pay_write(len(busy))
                return
            # admission held and room verified with no intervening
            # yield, so this put is accepted at birth
            yield self.queue.put((op, t_int, self.env.now))
        else:  # DROP
            if len(self.queue.items) >= self.queue.capacity \
                    or not fe.admission.try_acquire():
                fe.dropped_cmds += 1
                self._drop_close()
                return
            yield self.queue.put((op, t_int, self.env.now))
        self.max_queue_seen = max(self.max_queue_seen,
                                  len(self.queue.items))

    def _drop_close(self) -> None:
        """Server-initiated close: discard the queue, return admission
        slots, wake the client (which sees ``closed`` and reconnects)."""
        fe = self.fe
        discarded = [it for it in self.queue.items if it is not _CLOSE]
        self.queue.items.clear()
        for _ in discarded:
            fe.admission.release()
        fe.dropped_cmds += len(discarded)
        # commands on the wire but never parsed are lost too
        fe.dropped_cmds += len(self._meta)
        self._meta.clear()
        self.closed = True
        self.dropped = True
        fe.dropped_conns += 1
        self.queue.put(_CLOSE)  # room guaranteed: queue just cleared
        self._wake_window()

    # ------------------------------------------------------------ dispatcher
    def _dispatch_loop(self) -> Generator:
        env = self.env
        fe = self.fe
        while True:
            item = yield self.queue.get()
            if item is _CLOSE:
                return
            op, t_int, t_enq = item
            rt = fe.rtrace
            ctx = None
            t_dispatch = env.now
            if rt is not None:
                # the trace opens at the *intended* start, so queueing
                # delay is part of the trace the same way it is part of
                # the reported latency
                ctx = rt.start_request(op.op, layer="net", t0=t_int,
                                       conn=self.conn_id)
                if t_enq > t_int:
                    rt.add_span("client_backlog", "net", t_int, t_enq)
                if t_dispatch > t_enq:
                    rt.add_span("conn_queue", "net", t_enq, t_dispatch)
            ok = False
            try:
                result = yield from fe.backend.execute(op)
                ok = True
            finally:
                if ctx is not None and not ok:
                    rt.finish_request(ctx, ok=False)
            if op.op == "GET":
                reply = encode(result)
            elif op.op == "SET":
                reply = encode("OK")
            else:
                reply = encode(int(bool(result)))
            if self.cfg.capture_replies:
                self.replies.append(reply)
            if not self.closed:
                sp = rt.open_span("reply_write", "net",
                                  bytes=len(reply)) if rt is not None \
                    else None
                yield from self._pay_write(len(reply))
                if rt is not None:
                    rt.close_span(sp)
            if ctx is not None:
                rt.finish_request(ctx, ok=True)
            fe.record_completion(op, t_int, env.now)
            fe.admission.release()
            self._outstanding -= 1
            self._wake_window()
