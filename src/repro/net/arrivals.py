"""Open-loop arrival processes on the simulated clock.

A closed-loop client issues the next request when the previous one
returns, so a slow server quietly throttles its own load generator and
the latency distribution never sees the requests that *would* have
arrived (coordinated omission).  An open-loop process fixes the arrival
schedule up front: requests arrive when the process says they arrive,
whether or not the server has caught up, and queueing delay becomes
part of every reported latency.

All processes are seeded and pre-draw their whole schedule with numpy,
so a run is deterministic and the draw order never depends on how
connections interleave.

* :class:`PoissonArrivals` — memoryless arrivals at a constant mean
  rate (the M/G/1 textbook shape; what ``wrk2``-style generators emit).
* :class:`MmppArrivals` — a two-state Markov-modulated Poisson process:
  calm/burst states with exponentially distributed dwell times.  The
  mean rate matches ``rate``; the burst state runs ``burst``× hotter.
* :class:`DiurnalArrivals` — a sinusoidal rate ramp (the day/night
  cycle compressed to ``period`` seconds), realized by thinning a
  Poisson process at the peak rate.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MmppArrivals",
    "DiurnalArrivals",
]


class ArrivalProcess:
    """Base: a deterministic schedule generator with a mean rate."""

    #: headline mean arrivals per simulated second
    rate: float
    seed: int

    def times(self, duration: float, t0: float = 0.0) -> np.ndarray:
        """Absolute arrival instants in ``[t0, t0 + duration)``."""
        raise NotImplementedError

    def with_rate(self, rate: float) -> "ArrivalProcess":
        """A copy of this process re-targeted to a new mean rate
        (same shape parameters and seed) — the sweep primitive."""
        raise NotImplementedError

    def _check(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")


class PoissonArrivals(ArrivalProcess):
    """Constant-rate memoryless arrivals."""

    def __init__(self, rate: float, seed: int = 1):
        self.rate = float(rate)
        self.seed = seed
        self._check()

    def times(self, duration: float, t0: float = 0.0) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        # draw in batches until the cumulative sum clears the horizon
        n = max(16, int(duration * self.rate * 1.2) + 16)
        gaps = rng.exponential(1.0 / self.rate, size=n)
        t = np.cumsum(gaps)
        while t[-1] < duration:
            more = rng.exponential(1.0 / self.rate, size=n)
            t = np.concatenate([t, t[-1] + np.cumsum(more)])
        return t0 + t[t < duration]

    def with_rate(self, rate: float) -> "PoissonArrivals":
        return PoissonArrivals(rate, seed=self.seed)


class MmppArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (calm ⇄ burst).

    ``rate`` is the stationary mean; the burst state runs ``burst``
    times hotter than the calm state.  Dwell times in each state are
    exponential with means ``dwell_calm`` / ``dwell_burst`` seconds.
    """

    def __init__(self, rate: float, burst: float = 4.0,
                 dwell_calm: float = 0.2, dwell_burst: float = 0.05,
                 seed: int = 1):
        if burst < 1.0:
            raise ValueError("burst factor must be >= 1")
        if dwell_calm <= 0 or dwell_burst <= 0:
            raise ValueError("dwell times must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.dwell_calm = float(dwell_calm)
        self.dwell_burst = float(dwell_burst)
        self.seed = seed
        self._check()
        # stationary fractions, then solve the calm rate so the
        # long-run mean matches `rate`
        f_calm = dwell_calm / (dwell_calm + dwell_burst)
        f_burst = 1.0 - f_calm
        self.rate_calm = self.rate / (f_calm + self.burst * f_burst)
        self.rate_burst = self.burst * self.rate_calm

    def times(self, duration: float, t0: float = 0.0) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        chunks: list[np.ndarray] = []
        t = 0.0
        calm = True
        while t < duration:
            dwell = rng.exponential(
                self.dwell_calm if calm else self.dwell_burst)
            dwell = min(dwell, duration - t)
            lam = self.rate_calm if calm else self.rate_burst
            n = int(rng.poisson(lam * dwell))
            if n > 0:
                chunks.append(t + np.sort(rng.random(n)) * dwell)
            t += dwell
            calm = not calm
        if not chunks:
            return np.empty(0)
        return t0 + np.concatenate(chunks)

    def with_rate(self, rate: float) -> "MmppArrivals":
        return MmppArrivals(rate, burst=self.burst,
                            dwell_calm=self.dwell_calm,
                            dwell_burst=self.dwell_burst, seed=self.seed)


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate ramp between ``rate*(1-amp)`` and
    ``rate*(1+amp)`` with period ``period`` seconds, via thinning."""

    def __init__(self, rate: float, amp: float = 0.6, period: float = 1.0,
                 seed: int = 1):
        if not 0.0 <= amp < 1.0:
            raise ValueError("amp must be in [0, 1)")
        if period <= 0:
            raise ValueError("period must be positive")
        self.rate = float(rate)
        self.amp = float(amp)
        self.period = float(period)
        self.seed = seed
        self._check()

    def _rate_at(self, t: np.ndarray) -> np.ndarray:
        phase = 2.0 * np.pi * t / self.period
        # start the run in the trough so the ramp-up is visible
        return self.rate * (1.0 - self.amp * np.cos(phase))

    def times(self, duration: float, t0: float = 0.0) -> np.ndarray:
        peak = self.rate * (1.0 + self.amp)
        base = PoissonArrivals(peak, seed=self.seed)
        cand = base.times(duration)
        if len(cand) == 0:
            return cand
        rng = np.random.default_rng(self.seed ^ 0xD1E5)
        keep = rng.random(len(cand)) < self._rate_at(cand) / peak
        return t0 + cand[keep]

    def with_rate(self, rate: float) -> "DiurnalArrivals":
        return DiurnalArrivals(rate, amp=self.amp, period=self.period,
                               seed=self.seed)
