"""The in-memory database (Redis substitute).

* :mod:`repro.imdb.store` — the keyspace: a real dict of byte values
  with memory accounting and a page map for the CoW model.
* :mod:`repro.imdb.memory` — fork()/copy-on-write at page granularity:
  the source of the paper's snapshot-period memory doubling and the
  query-throughput dip that passthru alone cannot remove (Tables 1, 3).
* :mod:`repro.imdb.server` — the single-threaded query loop, the WAL
  hook, snapshot orchestration (WAL-triggered and on-demand), and all
  client-visible metrics (RPS timeline, SET/GET latency percentiles).
"""

from repro.imdb import resp
from repro.imdb.expiry import ExpiryConfig, ExpiryTable
from repro.imdb.memory import CowMemory, ForkModel
from repro.imdb.store import KVStore
from repro.imdb.server import ClientOp, ServerConfig, ServerMetrics, Server

__all__ = [
    "KVStore",
    "CowMemory",
    "ForkModel",
    "Server",
    "ServerConfig",
    "ServerMetrics",
    "ClientOp",
    "ExpiryConfig",
    "ExpiryTable",
    "resp",
]
