"""RESP2 — the REdis Serialization Protocol.

The wire format real clients speak. The simulator's clients call the
server API directly, but the codec makes the IMDB a complete Redis
substitute: traces captured from real deployments can be decoded into
:class:`~repro.imdb.server.ClientOp`s, and responses re-encoded for
byte-exact comparison with a reference server.

Implemented: simple strings (``+``), errors (``-``), integers (``:``),
bulk strings (``$``, including null), arrays (``*``, including null),
and the inline-command form. Streaming-safe: the parser reports "need
more bytes" instead of failing on a partial buffer.
"""

from __future__ import annotations


from repro.imdb.server import ClientOp

__all__ = [
    "RespError",
    "ProtocolError",
    "encode",
    "decode",
    "encode_command",
    "decode_command",
    "op_from_command",
    "RespParser",
]

CRLF = b"\r\n"

#: internal sentinel: a consumed-but-empty inline line (blank line
#: between commands); never surfaced by :meth:`RespParser.parse`
_SKIP = object()


class ProtocolError(Exception):
    """Malformed RESP input."""


class RespError:
    """A RESP error reply (``-ERR ...``)."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message

    def __eq__(self, other) -> bool:
        return isinstance(other, RespError) and other.message == self.message

    def __hash__(self) -> int:
        return hash(("RespError", self.message))

    def __repr__(self) -> str:
        return f"RespError({self.message!r})"


RespValue = None | int | bytes | str | list | RespError


def encode(value: RespValue) -> bytes:
    """Serialize one RESP value.

    Python mapping: ``str`` → simple string, ``bytes`` → bulk string,
    ``int`` → integer, ``None`` → null bulk, ``list`` → array,
    :class:`RespError` → error.
    """
    if value is None:
        return b"$-1\r\n"
    if isinstance(value, RespError):
        if "\r" in value.message or "\n" in value.message:
            raise ProtocolError("error messages cannot contain CR/LF")
        return b"-" + value.message.encode() + CRLF
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ProtocolError("booleans are not a RESP2 type")
    if isinstance(value, int):
        return b":" + str(value).encode() + CRLF
    if isinstance(value, str):
        if "\r" in value or "\n" in value:
            raise ProtocolError("simple strings cannot contain CR/LF")
        return b"+" + value.encode() + CRLF
    if isinstance(value, (bytes, bytearray)):
        payload = bytes(value)
        return b"$" + str(len(payload)).encode() + CRLF + payload + CRLF
    if isinstance(value, list):
        out = b"*" + str(len(value)).encode() + CRLF
        return out + b"".join(encode(v) for v in value)
    raise ProtocolError(f"cannot encode {type(value).__name__}")


class RespParser:
    """Incremental parser: feed bytes, pop complete values."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def parse(self) -> tuple[bool, RespValue]:
        """Try to pop one value; returns (complete, value)."""
        while True:
            got = self._parse_at(0)
            if got is None:
                return False, None
            value, end = got
            del self._buf[:end]
            if value is _SKIP:
                continue  # blank inline line: consumed, try again
            return True, value

    # -- internals ---------------------------------------------------------
    def _line_end(self, pos: int) -> int | None:
        idx = self._buf.find(CRLF, pos)
        return None if idx < 0 else idx

    def _parse_at(self, pos: int) -> tuple[RespValue, int] | None:
        if pos >= len(self._buf):
            return None
        kind = self._buf[pos:pos + 1]
        if kind in (b"\r", b"\n"):
            # A blank line between commands (Redis tolerates these in
            # inline mode). It must be consumed *before* the generic
            # header scan below: otherwise the leading CRLF would be
            # folded into the next frame's header and a typed frame
            # following it ("\r\n*1\r\n...") would be mis-framed as a
            # bogus inline command.
            if kind == b"\n":
                return _SKIP, pos + 1
            if pos + 1 >= len(self._buf):
                return None  # may be the first half of a CRLF
            if self._buf[pos + 1:pos + 2] != b"\n":
                raise ProtocolError("bare CR in inline command")
            return _SKIP, pos + 2
        if kind not in (b"+", b"-", b":", b"$", b"*"):
            # inline command: a bare line of space-separated words.
            # Inline mode is line-oriented, and real clients may send
            # bare-LF line endings, so the terminator is the first LF
            # (with an optional CR stripped) — unlike typed frames,
            # which require a strict CRLF.
            nl = self._buf.find(b"\n", pos)
            if nl < 0:
                return None
            line = bytes(self._buf[pos:nl])
            if line.endswith(b"\r"):
                line = line[:-1]
            words = [bytes(w) for w in line.split()]
            if not words:
                return _SKIP, nl + 1  # whitespace-only line
            return words, nl + 1
        eol = self._line_end(pos + 1)
        if eol is None:
            return None
        header = bytes(self._buf[pos + 1:eol])
        body_start = eol + 2
        if kind == b"+":
            return header.decode("latin-1"), body_start
        if kind == b"-":
            return RespError(header.decode("latin-1")), body_start
        if kind == b":":
            try:
                return int(header), body_start
            except ValueError as exc:
                raise ProtocolError(f"bad integer {header!r}") from exc
        if kind == b"$":
            try:
                n = int(header)
            except ValueError as exc:
                raise ProtocolError(f"bad bulk length {header!r}") from exc
            if n == -1:
                return None, body_start  # null bulk
            if n < 0:
                raise ProtocolError("negative bulk length")
            end = body_start + n + 2
            if len(self._buf) < end:
                return None
            if bytes(self._buf[body_start + n:end]) != CRLF:
                raise ProtocolError("bulk string not CRLF-terminated")
            return bytes(self._buf[body_start:body_start + n]), end
        if kind == b"*":
            try:
                n = int(header)
            except ValueError as exc:
                raise ProtocolError(f"bad array length {header!r}") from exc
            if n == -1:
                return None, body_start  # null array
            if n < 0:
                raise ProtocolError("negative array length")
            items = []
            cursor = body_start
            for _ in range(n):
                while True:  # tolerate stray blank lines between items
                    got = self._parse_at(cursor)
                    if got is None:
                        return None
                    item, cursor = got
                    if item is not _SKIP:
                        break
                items.append(item)
            return items, cursor
        raise ProtocolError(f"unreachable kind {kind!r}")


def decode(data: bytes) -> RespValue:
    """Parse exactly one complete value (convenience for tests)."""
    p = RespParser()
    p.feed(data)
    ok, value = p.parse()
    if not ok:
        raise ProtocolError("incomplete RESP value")
    if p.pending_bytes:
        raise ProtocolError(f"{p.pending_bytes} trailing bytes")
    return value


# ---------------------------------------------------------------------------
# command <-> ClientOp
# ---------------------------------------------------------------------------

def encode_command(op: ClientOp) -> bytes:
    """A ClientOp as the RESP array a client would send."""
    if op.op == "SET":
        parts: list[RespValue] = [b"SET", op.key, op.value]
        if op.ttl is not None:
            parts += [b"PX", str(int(round(op.ttl * 1000))).encode()]
        return encode(parts)
    if op.op == "GET":
        return encode([b"GET", op.key])
    return encode([b"DEL", op.key])


def decode_command(data: bytes) -> ClientOp:
    """One RESP command array → ClientOp (SET/GET/DEL subset)."""
    return op_from_command(decode(data))


def op_from_command(value: RespValue) -> ClientOp:
    """An already-parsed command (array or inline word list) → ClientOp.

    The connection layer parses frames incrementally with
    :class:`RespParser` and maps each one through here.
    """
    if not isinstance(value, list) or not value:
        raise ProtocolError("command must be a non-empty array")
    words = [v if isinstance(v, bytes) else str(v).encode() for v in value]
    name = words[0].upper()
    if name == b"GET" and len(words) == 2:
        return ClientOp("GET", words[1])
    if name == b"DEL" and len(words) == 2:
        return ClientOp("DEL", words[1])
    if name == b"SET" and len(words) >= 3:
        ttl = None
        i = 3
        while i < len(words):
            flag = words[i].upper()
            if flag == b"PX" and i + 1 < len(words):
                ttl = int(words[i + 1]) / 1000.0
                i += 2
            elif flag == b"EX" and i + 1 < len(words):
                ttl = float(int(words[i + 1]))
                i += 2
            else:
                raise ProtocolError(f"unsupported SET flag {flag!r}")
        return ClientOp("SET", words[1], words[2], ttl=ttl)
    raise ProtocolError(f"unsupported command {name!r}/{len(words)}")
