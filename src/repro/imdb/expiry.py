"""Key expiration (Redis TTL semantics).

Expiration matters to persistence exactly the way Redis documents it:

* a lazily- or actively-expired key is propagated as an explicit **DEL**
  to the WAL (replicas/AOF must not re-expire independently);
* snapshots simply omit expired keys (the child works on the fork-point
  dict, which the parent has already pruned of anything it noticed).

Semantics implemented:

* **lazy expiration** — a GET/SET/DEL on an expired key first removes
  it (and logs the DEL);
* **active cycle** — a background task samples the TTL table every
  ``cycle_interval`` and evicts what it finds expired, in bounded
  batches (Redis's activeExpireCycle).

The table maps keys to absolute simulated deadlines. It is owned by
the server (which knows the clock and the WAL); the store stays a dumb
byte container.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Generator

from repro.sim import Environment
from repro.sim.stats import Counter

__all__ = ["ExpiryTable", "ExpiryConfig"]


@dataclass(frozen=True)
class ExpiryConfig:
    """Active-cycle policy."""

    cycle_interval: float = 0.1
    max_evictions_per_cycle: int = 20

    def __post_init__(self) -> None:
        if self.cycle_interval <= 0:
            raise ValueError("cycle_interval must be positive")
        if self.max_evictions_per_cycle < 1:
            raise ValueError("max_evictions_per_cycle must be >= 1")


class ExpiryTable:
    """TTL deadlines with a heap for the active cycle."""

    def __init__(self, env: Environment, config: ExpiryConfig | None = None):
        self.env = env
        self.config = config or ExpiryConfig()
        self._deadline: dict[bytes, float] = {}
        self._heap: list[tuple[float, bytes]] = []
        self.counters = Counter()

    def __len__(self) -> int:
        return len(self._deadline)

    def set_ttl(self, key: bytes, ttl: float) -> None:
        """(Re)arm expiration ``ttl`` seconds from now."""
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        deadline = self.env.now + ttl
        self._deadline[key] = deadline
        heapq.heappush(self._heap, (deadline, key))

    def persist(self, key: bytes) -> bool:
        """Remove the TTL (Redis PERSIST); True if one existed."""
        return self._deadline.pop(key, None) is not None

    def ttl(self, key: bytes) -> float | None:
        """Remaining lifetime, None if no TTL set, 0 if already due."""
        deadline = self._deadline.get(key)
        if deadline is None:
            return None
        return max(deadline - self.env.now, 0.0)

    def is_expired(self, key: bytes) -> bool:
        deadline = self._deadline.get(key)
        return deadline is not None and self.env.now >= deadline

    def note_deleted(self, key: bytes) -> None:
        """Key removed by other means; drop its TTL."""
        self._deadline.pop(key, None)

    def due_keys(self, limit: int) -> list[bytes]:
        """Pop up to ``limit`` keys whose deadline has passed.

        Heap entries may be stale (TTL re-armed or key deleted); they
        are skipped against the authoritative dict.
        """
        out: list[bytes] = []
        now = self.env.now
        while self._heap and len(out) < limit:
            deadline, key = self._heap[0]
            if deadline > now:
                break
            heapq.heappop(self._heap)
            current = self._deadline.get(key)
            if current is None or current > now:
                continue  # stale entry
            del self._deadline[key]
            out.append(key)
            self.counters.add("active_evictions")
        return out

    def lazy_check(self, key: bytes) -> bool:
        """True if the key just expired (caller must delete + log DEL)."""
        if self.is_expired(key):
            del self._deadline[key]
            self.counters.add("lazy_evictions")
            return True
        return False

    def active_cycle(self, evict) -> Generator:
        """Background process: periodically evict due keys.

        ``evict(key)`` is a generator the server provides — it removes
        the key from the store and logs the DEL through the WAL.
        Terminates when :meth:`stop` is called.
        """
        self._running = True
        while self._running:
            kick = self.env.timeout(self.config.cycle_interval)
            yield kick
            for key in self.due_keys(self.config.max_evictions_per_cycle):
                yield from evict(key)
            self.counters.add("cycles")

    def stop(self) -> None:
        self._running = False
