"""The IMDB server: single-threaded query loop + persistence hooks.

Faithful to Redis's execution model:

* one CPU services commands in arrival order (clients queue on it);
* a SET appends to the WAL *inside* the command path — under
  Always-Log it stays there until the record is durable, under
  Periodical-Log it returns once buffered;
* a snapshot forks a child (stalling the parent for the page-table
  copy), the child serializes/compresses/writes the fork-point
  dataset through its own sink, and parent writes to still-shared
  pages pay the CoW fault + copy;
* a WAL-Snapshot fires automatically when the WAL reaches the trigger
  size; the WAL rotates (old generation retired) only after that
  snapshot is durable. On-Demand snapshots are started explicitly.
  At most one snapshot runs at a time (paper §2.1).

Metrics: per-op latency recorders, an RPS event stream with snapshot
windows (so analysis can split WAL-only vs WAL&Snapshot phases), and a
time-weighted memory footprint including CoW growth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Generator

from repro.imdb.expiry import ExpiryConfig, ExpiryTable
from repro.imdb.memory import CowMemory, ForkModel
from repro.imdb.store import KVStore
from repro.kernel.accounting import CpuAccount
from repro.obs.spans import maybe_span
from repro.persist.compress import CompressionModel, Compressor
from repro.persist.encoding import AofRecord, OP_DEL, OP_SET
from repro.persist.interfaces import SnapshotSink
from repro.persist.snapshot import (
    SnapshotCpuModel,
    SnapshotKind,
    SnapshotStats,
    SnapshotWriterProcess,
)
from repro.persist.wal import LoggingPolicy, WalManager
from repro.sim import Environment, Resource
from repro.sim.stats import IntervalRate, LatencyRecorder, TimeWeighted

__all__ = ["ClientOp", "ServerConfig", "ServerMetrics", "Server"]

US = 1e-6


@dataclass(frozen=True)
class ClientOp:
    """One client request.

    ``ttl`` (SET only) arms expiration, like ``SET key val EX ttl``;
    a plain SET clears any existing TTL (Redis semantics).
    """

    op: str  # "SET" | "GET" | "DEL"
    key: bytes
    value: bytes = b""
    ttl: float | None = None

    def __post_init__(self) -> None:
        if self.op not in ("SET", "GET", "DEL"):
            raise ValueError(f"unknown op {self.op!r}")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("ttl must be positive")
        if self.ttl is not None and self.op != "SET":
            raise ValueError("ttl only applies to SET")


@dataclass(frozen=True)
class ServerConfig:
    """Query-path CPU costs and snapshot policy."""

    set_cpu: float = 8.0 * US
    get_cpu: float = 5.0 * US
    del_cpu: float = 6.0 * US
    #: WAL size that triggers a WAL-Snapshot (None = never)
    wal_snapshot_trigger_bytes: int | None = None
    #: AOF buffer size that forces the main-thread write() even when
    #: the event loop is busy (one write per loop iteration in Redis)
    wal_write_batch_bytes: int = 128 * 1024
    snapshot_chunk_entries: int = 128
    fork_model: ForkModel = field(default_factory=ForkModel)
    snapshot_cpu: SnapshotCpuModel = field(default_factory=SnapshotCpuModel)

    def __post_init__(self) -> None:
        for f in ("set_cpu", "get_cpu", "del_cpu"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be >= 0")
        if self.snapshot_chunk_entries < 1:
            raise ValueError("snapshot_chunk_entries must be >= 1")


class ServerMetrics:
    """Everything the evaluation section reads off one run."""

    def __init__(self, env: Environment):
        self.env = env
        self.set_latency = LatencyRecorder("SET")
        self.get_latency = LatencyRecorder("GET")
        self.ops = IntervalRate("ops")
        self.memory = TimeWeighted(t0=env.now)
        self.snapshot_windows: list[tuple[float, float]] = []
        self.snapshots: list[SnapshotStats] = []

    def record_op(self, op: str, latency: float) -> None:
        self.ops.record(self.env.now)
        if op == "SET":
            self.set_latency.record(latency)
        elif op == "GET":
            self.get_latency.record(latency)

    def in_snapshot(self, t: float) -> bool:
        return any(t0 <= t <= t1 for t0, t1 in self.snapshot_windows)

    def phase_rps(self, t_end: float | None = None) -> dict[str, float]:
        """Mean RPS inside vs outside snapshot windows."""
        import numpy as np

        t = self.ops._t
        if not t:
            return {"wal_only": 0.0, "wal_snapshot": 0.0, "average": 0.0}
        arr = np.asarray(t)
        hi = t_end if t_end is not None else arr[-1]
        lo = arr[0]
        in_snap = np.zeros(len(arr), dtype=bool)
        snap_time = 0.0
        for t0, t1 in self.snapshot_windows:
            # clamp to the measured span (a snapshot may straddle the
            # metrics-reset boundary or the end of the run)
            t0c, t1c = max(t0, lo), min(t1, hi)
            if t1c > t0c:
                in_snap |= (arr >= t0c) & (arr <= t1c)
                snap_time += t1c - t0c
        total_time = hi - arr[0] if hi > arr[0] else 1e-12
        out_time = max(total_time - snap_time, 1e-12)
        n_in = int(in_snap.sum())
        n_out = len(arr) - n_in
        return {
            "wal_only": n_out / out_time,
            "wal_snapshot": n_in / snap_time if snap_time > 0 else 0.0,
            "average": len(arr) / total_time,
        }


class Server:
    """One IMDB instance bound to a WAL manager and a snapshot sink."""

    def __init__(
        self,
        env: Environment,
        store: KVStore,
        wal: WalManager | None,
        snapshot_sink_factory: Callable[[SnapshotKind], SnapshotSink] | None,
        config: ServerConfig | None = None,
        compressor: Compressor | None = None,
        compression_model: CompressionModel | None = None,
        name: str = "imdb",
    ):
        self.env = env
        self.store = store
        self.wal = wal
        self.sink_factory = snapshot_sink_factory
        self.config = config or ServerConfig()
        self.compressor = compressor or Compressor()
        self.compression_model = compression_model or self.compressor.model
        self.name = name
        self.cpu = Resource(env, capacity=1)
        self.account = wal.account if wal is not None else CpuAccount(env, name)
        self.cow = CowMemory(env, self.config.fork_model, store.page_size)
        self.expiry = ExpiryTable(env)
        self._expiry_proc = None
        self.metrics = ServerMetrics(env)
        self._sinks: dict[SnapshotKind, SnapshotSink] = {}
        self._snapshot_proc = None
        self._snapshot_pending = False
        self._stopped = False
        self.obs = None
        #: request tracer (:class:`repro.obs.trace.RequestTracer`);
        #: ``None`` = tracing off, the hot path does no trace work
        self.rtrace = None
        #: tenant name stamped on traces (cluster shard name)
        self.trace_tenant = ""

    def attach_obs(self, registry) -> None:
        """Register instruments: per-command latency, WAL-buffer
        stalls, and a callback gauge on resident memory."""
        self.obs = registry
        self._obs_latency = {
            op: registry.histogram("server_command_latency_seconds",
                                   op=op, server=self.name)
            for op in ("SET", "GET", "DEL")
        }
        self._obs_commands = {
            op: registry.counter("server_commands_total",
                                 op=op, server=self.name)
            for op in ("SET", "GET", "DEL")
        }
        self._obs_stalls = registry.counter(
            "server_wal_buffer_stalls_total", server=self.name
        )
        self._obs_stall_time = registry.histogram(
            "server_wal_buffer_stall_seconds", server=self.name
        )
        registry.gauge(
            "server_resident_bytes",
            fn=lambda: float(self.store.used_bytes + self.cow.extra_bytes),
            server=self.name,
        )

    # ------------------------------------------------------------------ queries
    def execute(self, op: ClientOp) -> Generator:
        """Serve one request; returns the value for GET, None otherwise.

        Latency = queueing on the server CPU + service + persistence
        per policy (measured from call to return, like a client does).
        """
        t_arrive = self.env.now
        rt = self.rtrace
        ctx = None
        owns_ctx = False
        if rt is not None:
            # a connection front end (repro.net) may have opened the
            # request trace already — nest under it instead of starting
            # a second root
            ctx = rt.current()
            if ctx is None:
                ctx = rt.start_request(
                    op.op, tenant=self.trace_tenant or self.name
                )
                owns_ctx = True
            elif not ctx.tenant:
                ctx.tenant = self.trace_tenant or self.name
        ok = False
        try:
            req = self.cpu.request()
            yield req
            if rt is not None and self.env.now > t_arrive:
                rt.add_span("cpu_queue", "server", t_arrive, self.env.now)
            sp_serve = rt.open_span("serve", "server") if rt is not None \
                else None
            try:
                result, wal_seq = yield from self._serve(op)
            finally:
                if rt is not None:
                    rt.close_span(sp_serve)
                self.cpu.release(req)
            if wal_seq is not None and self.wal.policy is LoggingPolicy.ALWAYS:
                # Always-Log: the reply waits for durability; concurrent
                # writers group-commit (the CPU is free meanwhile, matching
                # Redis's batched event-loop write+fsync)
                sp_wal = rt.open_span("wal_commit", "wal", seq=wal_seq) \
                    if rt is not None else None
                try:
                    yield from self.wal.ensure_durable(wal_seq)
                finally:
                    if rt is not None:
                        rt.close_span(sp_wal)
            elif wal_seq is not None and self.wal.over_buffer_limit:
                # Periodical-Log hard limit: the device (e.g. mid-GC) has
                # fallen behind; write queries block until the AOF buffer
                # drains — the Figure 4 nosedive mechanism
                t_stall = self.env.now
                sp_wal = rt.open_span("wal_commit", "wal", seq=wal_seq,
                                      stalled=True) \
                    if rt is not None else None
                try:
                    yield from self.wal.wait_capacity()
                finally:
                    if rt is not None:
                        rt.close_span(sp_wal)
                if self.obs is not None:
                    self._obs_stalls.inc()
                    self._obs_stall_time.observe(self.env.now - t_stall)
            ok = True
        finally:
            if ctx is not None and owns_ctx:
                rt.finish_request(ctx, ok=ok)
        latency = self.env.now - t_arrive
        self.metrics.record_op(op.op, latency)
        if self.obs is not None:
            self._obs_latency[op.op].observe(latency)
            self._obs_commands[op.op].inc()
        self._sample_memory()
        self._maybe_trigger_wal_snapshot()
        if self.wal is not None:
            idle = self.cpu.count == 0 and self.cpu.queue_len == 0
            if idle or self.wal.buffered_bytes >= self.config.wal_write_batch_bytes:
                # flushAppendOnlyFile on the main thread: when the event
                # loop goes idle, or once per batch under load
                self.wal.idle_drain(self.cpu)
        # durability is decided per policy above: Always-Log awaited
        # ensure_durable; Periodical-Log acks inside the everysec
        # window by contract (the paper's Figure 4 trade), so the
        # return is deliberately not flush-dominated
        return result  # slimflow: relaxed-durability — everysec window

    def _serve(self, op: ClientOp) -> Generator:
        cfg = self.config
        acct = self.account
        wal_seq = None
        # lazy expiration: touching an expired key removes it first and
        # propagates an explicit DEL (Redis semantics)
        if op.key in self.store and self.expiry.lazy_check(op.key):
            yield from self._evict_locked(op.key)
        if op.op == "GET":
            _cpu_ev = acct.charge("query_cpu", cfg.get_cpu)
            if _cpu_ev is not None:
                yield _cpu_ev
            return self.store.get(op.key), None
        if op.op == "SET":
            _cpu_ev = acct.charge("query_cpu", cfg.set_cpu)
            if _cpu_ev is not None:
                yield _cpu_ev
            if self.wal is not None:
                wal_seq = self.wal.stage(
                    AofRecord(op=OP_SET, key=op.key, value=op.value)
                )
            first, n = self.store.set(op.key, op.value)
            if op.ttl is not None:
                self.expiry.set_ttl(op.key, op.ttl)
            else:
                self.expiry.persist(op.key)  # plain SET clears the TTL
            yield from self.cow.touch(first, n, acct)
            return None, wal_seq
        # DEL
        _cpu_ev = acct.charge("query_cpu", cfg.del_cpu)
        if _cpu_ev is not None:
            yield _cpu_ev
        if self.wal is not None:
            wal_seq = self.wal.stage(AofRecord(op=OP_DEL, key=op.key))
        pages = self.store.pages_of(op.key)
        existed = self.store.delete(op.key)
        self.expiry.note_deleted(op.key)
        if existed and pages is not None:
            yield from self.cow.touch(pages[0], pages[1], acct)
        return existed, wal_seq

    def _evict_locked(self, key: bytes) -> Generator:
        """Remove an expired key (caller holds the CPU); logs the DEL.

        Returns the staged WAL sequence number (None without a WAL).
        """
        _cpu_ev = self.account.charge("query_cpu", self.config.del_cpu)
        if _cpu_ev is not None:
            yield _cpu_ev
        seq = None
        if self.wal is not None:
            seq = self.wal.stage(AofRecord(op=OP_DEL, key=key))
        pages = self.store.pages_of(key)
        if self.store.delete(key) and pages is not None:
            yield from self.cow.touch(pages[0], pages[1], self.account)
        return seq

    def start_expiry_cycle(self, config: ExpiryConfig | None = None):
        """Run Redis's active expiration cycle in the background."""
        if self._expiry_proc is not None:
            return self._expiry_proc
        if config is not None:
            self.expiry.config = config

        def evict(key):
            seq = None
            req = self.cpu.request()
            yield req
            try:
                if key in self.store:
                    seq = yield from self._evict_locked(key)
            finally:
                self.cpu.release(req)
            if seq is not None and self.wal.policy is LoggingPolicy.ALWAYS:
                # the propagated DEL obeys the logging policy
                yield from self.wal.ensure_durable(seq)

        self._expiry_proc = self.env.process(
            self.expiry.active_cycle(evict), name=f"{self.name}-expiry"
        )
        return self._expiry_proc

    # ------------------------------------------------------------------ snapshots
    @property
    def snapshot_in_progress(self) -> bool:
        return self.cow.snapshot_active or self._snapshot_pending

    def _sink_for(self, kind: SnapshotKind) -> SnapshotSink:
        sink = self._sinks.get(kind)
        if sink is None:
            if self.sink_factory is None:
                raise RuntimeError("server has no snapshot sink")
            sink = self.sink_factory(kind)
            self._sinks[kind] = sink
        return sink

    def start_snapshot(self, kind: SnapshotKind = SnapshotKind.ON_DEMAND):
        """Begin a snapshot; returns the child Process (its value is
        :class:`SnapshotStats`). No-op (returns None) if one is active.

        Queued like a command: the CPU slot is claimed synchronously so
        the fork happens after any in-flight command and before any
        later one — exactly Redis's BGSAVE-between-commands semantics.
        """
        if self.cow.snapshot_active or self._snapshot_pending or self._stopped:
            return None
        self._snapshot_pending = True
        req = self.cpu.request()
        self._snapshot_proc = self.env.process(
            self._snapshot_body(kind, req), name=f"{self.name}-snapshot"
        )
        return self._snapshot_proc

    def _snapshot_body(self, kind: SnapshotKind, req) -> Generator:
        yield req
        t0 = self.env.now
        # the span covers fork through durable publication; the child's
        # own snapshot_write span nests inside it on the same track
        with maybe_span(self.obs, "snapshot", track="snapshot",
                        kind=kind.value):
            try:
                # the fork instant: capture + share pages + switch the
                # WAL generation, all before any later command can run
                self.cow.arm(self.store.heap_pages)
                # expired-but-unevicted keys are omitted, as in Redis RDB
                items = [
                    (k, v) for k, v in self.store.snapshot_items()
                    if not self.expiry.is_expired(k)
                ]
                if kind is SnapshotKind.WAL_TRIGGERED and self.wal is not None:
                    self.wal.rotate_begin()
                self._snapshot_pending = False
                # page-table copy stalls the query path
                yield from self.cow.pt_copy_stall(self.account)
            finally:
                self.cpu.release(req)
            child = SnapshotWriterProcess(
                self.env,
                items,
                self._sink_for(kind),
                kind=kind,
                compressor=self.compressor,
                cpu_model=self.config.snapshot_cpu,
                compression_model=self.compression_model,
                chunk_entries=self.config.snapshot_chunk_entries,
                account=CpuAccount(self.env, f"{self.name}-snapshot-child"),
                obs=self.obs,
            )
            try:
                stats = yield from child.run()
            except Exception:
                self.cow.reap()
                self.metrics.snapshot_windows.append((t0, self.env.now))
                self._sample_memory()
                raise
            self.cow.reap()
            self.metrics.snapshot_windows.append((t0, self.env.now))
            self.metrics.snapshots.append(stats)
            self._sample_memory()
        if kind is SnapshotKind.WAL_TRIGGERED and self.wal is not None:
            # the pre-snapshot WAL generation is retired only now that
            # the covering snapshot is durable (§2.1 / §4.2 ordering)
            yield from self.wal.retire_previous()
        return stats

    def _maybe_trigger_wal_snapshot(self) -> None:
        trigger = self.config.wal_snapshot_trigger_bytes
        if (
            trigger is not None
            and self.wal is not None
            and self.wal.size >= trigger
            and not self.cow.snapshot_active
        ):
            self.start_snapshot(SnapshotKind.WAL_TRIGGERED)

    # ------------------------------------------------------------------ misc
    def _sample_memory(self) -> None:
        self.metrics.memory.update(
            self.env.now, self.store.used_bytes + self.cow.extra_bytes
        )

    def info(self) -> dict[str, float]:
        """A Redis ``INFO``-style snapshot of server state and metrics."""
        m = self.metrics
        out = {
            "keys": float(len(self.store)),
            "used_memory": float(self.store.used_bytes),
            "used_memory_peak": float(m.memory.peak),
            "total_commands_processed": float(len(m.ops)),
            "instantaneous_ops": m.ops.mean_rate(),
            "set_p999": m.set_latency.p(99.9),
            "get_p999": m.get_latency.p(99.9),
            "snapshot_in_progress": float(self.snapshot_in_progress),
            "snapshots_completed": float(len(m.snapshots)),
            "cow_copied_pages": float(self.cow.copied_pages),
            "cow_faults": float(self.cow.cow_faults),
        }
        if self.wal is not None:
            out["wal_bytes"] = float(self.wal.size)
            out["wal_buffered_bytes"] = float(self.wal.buffered_bytes)
        return out

    def reset_metrics(self) -> None:
        """Fresh metrics (drop warmup samples); state is untouched."""
        self.metrics = ServerMetrics(self.env)
        self._sample_memory()

    def stop(self) -> None:
        """End of run: stop background activity (WAL flusher, expiry)."""
        self._stopped = True
        self.expiry.stop()
        if self.wal is not None:
            self.wal.close()
