"""The keyspace: real bytes plus memory/page accounting.

Every entry lives in the Python dict (so persistence and recovery are
byte-exact), and is also assigned a range of 4 KiB "heap pages" by a
bump allocator. The page assignment is what the copy-on-write model
operates on: a SET during a snapshot touches the entry's pages, and
shared pages must be copied (see :mod:`repro.imdb.memory`).

Memory accounting mirrors how Redis reports ``used_memory``: payload
bytes plus a fixed per-entry overhead (dict entry, robj header, SDS
headers — collapsed into one constant).
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["KVStore"]

#: collapsed per-entry bookkeeping overhead (dict entry + robj + sds)
ENTRY_OVERHEAD = 64
PAGE_SIZE = 4096


class KVStore:
    """A flat binary-safe key-value store."""

    def __init__(self, page_size: int = PAGE_SIZE,
                 entry_overhead: int = ENTRY_OVERHEAD):
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.page_size = page_size
        self.entry_overhead = entry_overhead
        self._data: dict[bytes, bytes] = {}
        #: key -> (first_page, n_pages) in the simulated heap
        self._pages: dict[bytes, tuple[int, int]] = {}
        self._next_page = 0
        self._used_bytes = 0

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def get(self, key: bytes) -> bytes | None:
        return self._data.get(key)

    def _entry_pages(self, key: bytes, value: bytes) -> int:
        nbytes = len(key) + len(value) + self.entry_overhead
        return -(-nbytes // self.page_size)

    def set(self, key: bytes, value: bytes) -> tuple[int, int]:
        """Insert/overwrite; returns the (first_page, n_pages) touched.

        An overwrite reuses the entry's pages when the new value fits
        the old footprint (Redis updates SDS in place when possible);
        otherwise the entry is reallocated at the heap tail.
        """
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")
        old = self._data.get(key)
        new_pages = self._entry_pages(key, value)
        if old is not None:
            self._used_bytes -= len(key) + len(old) + self.entry_overhead
            first, n = self._pages[key]
            if new_pages > n:
                first, n = self._next_page, new_pages
                self._next_page += new_pages
                self._pages[key] = (first, n)
        else:
            first, n = self._next_page, new_pages
            self._next_page += new_pages
            self._pages[key] = (first, n)
        self._data[key] = value
        self._used_bytes += len(key) + len(value) + self.entry_overhead
        return self._pages[key]

    def delete(self, key: bytes) -> bool:
        old = self._data.pop(key, None)
        if old is None:
            return False
        self._used_bytes -= len(key) + len(old) + self.entry_overhead
        self._pages.pop(key)
        return True

    def pages_of(self, key: bytes) -> tuple[int, int] | None:
        return self._pages.get(key)

    # ------------------------------------------------------------------ metrics
    @property
    def used_bytes(self) -> int:
        """Logical memory footprint (Redis ``used_memory``)."""
        return self._used_bytes

    @property
    def heap_pages(self) -> int:
        """Pages ever allocated (the CoW-shareable extent at fork)."""
        return self._next_page

    # ------------------------------------------------------------------ bulk
    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return iter(self._data.items())

    def snapshot_items(self) -> list[tuple[bytes, bytes]]:
        """Frozen copy of the keyspace, as the fork child sees it."""
        return list(self._data.items())

    def load(self, data: dict[bytes, bytes]) -> None:
        """Bulk-replace contents (recovery)."""
        self._data.clear()
        self._pages.clear()
        self._next_page = 0
        self._used_bytes = 0
        for k, v in data.items():
            self.set(k, v)

    def as_dict(self) -> dict[bytes, bytes]:
        return dict(self._data)
