"""fork() and copy-on-write at page granularity.

When Redis snapshots, the parent forks; parent and child initially
share every heap page. A parent write to a shared page triggers a page
fault: the kernel locks the mapping, copies the page, and only then
lets the write proceed — this stall on the query path, plus the extra
resident memory of every copied page, is the paper's explanation for
the snapshot-period RPS drop that even SlimIO does not remove
("the drop in RPS during a snapshot is primarily caused by memory
copying and lock acquisition resulting from fork()'s CoW policy",
§5.2), and for peak memory ≈ 2× in Tables 1/3/4.

The model:

* ``fork()`` stalls the caller for the page-table copy
  (``pt_copy_per_page × heap_pages`` — the cost Async-Fork [29]
  attacks) and marks all current pages shared.
* ``touch(first, n)`` on the parent during a snapshot returns the
  pages that were still shared; the caller pays
  ``fault_overhead + page_copy_time`` per copied page and resident
  memory grows by a page each.
* ``reap()`` ends the snapshot: copied pages are reclaimed (the child
  exits and its references drop).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Generator

import numpy as np

from repro.kernel.accounting import CpuAccount
from repro.sim import Environment
from repro.sim.stats import TimeWeighted

__all__ = ["ForkModel", "CowMemory"]

US = 1e-6


@dataclass(frozen=True)
class ForkModel:
    """Latency constants of the fork/CoW machinery."""

    #: page-table copy per mapped page, paid synchronously at fork()
    pt_copy_per_page: float = 0.06 * US
    #: page-fault entry/exit overhead per CoW fault (trap, mm locks,
    #: anon_vma bookkeeping — measured CoW faults run 2-5 µs)
    fault_overhead: float = 2.5 * US
    #: copying one 4 KiB page with cold caches
    page_copy_time: float = 1.2 * US

    def __post_init__(self) -> None:
        for f in ("pt_copy_per_page", "fault_overhead", "page_copy_time"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be >= 0")


class CowMemory:
    """Tracks shared/copied pages across one fork generation."""

    def __init__(self, env: Environment, model: ForkModel | None = None,
                 page_size: int = 4096):
        self.env = env
        self.model = model or ForkModel()
        self.page_size = page_size
        self._shared = np.zeros(0, dtype=bool)
        self._snapshot_active = False
        self._armed_pages = 0
        self.copied_pages = 0
        self.cow_faults = 0
        #: resident memory beyond the base keyspace (copied pages)
        self.extra = TimeWeighted(t0=env.now)

    @property
    def snapshot_active(self) -> bool:
        return self._snapshot_active

    @property
    def extra_bytes(self) -> float:
        return self.extra.value

    # ------------------------------------------------------------------ fork
    def arm(self, heap_pages: int) -> None:
        """Mark all current pages shared (the fork instant, zero-time).

        Separate from :meth:`pt_copy_stall` so a caller can pin the
        fork point synchronously — no query may slip between the fork
        and the marking — and pay the page-table copy as a stall
        afterwards, like the real ``fork()`` does inside the kernel.
        """
        if self._snapshot_active:
            raise RuntimeError("a snapshot fork is already active")
        self._snapshot_active = True
        self._armed_pages = heap_pages
        if len(self._shared) < heap_pages:
            self._shared = np.zeros(max(heap_pages, 1), dtype=bool)
        self._shared[:heap_pages] = True
        self._shared[heap_pages:] = False

    def pt_copy_stall(self, account: CpuAccount) -> Generator:
        """The synchronous page-table copy cost of the armed fork."""
        _cpu_ev = account.charge(
            "fork", self._armed_pages * self.model.pt_copy_per_page
        )
        if _cpu_ev is not None:
            yield _cpu_ev

    def fork(self, heap_pages: int, account: CpuAccount) -> Generator:
        """Fork with ``heap_pages`` mapped; stalls for the PT copy."""
        self.arm(heap_pages)
        yield from self.pt_copy_stall(account)

    def touch(self, first_page: int, n_pages: int,
              account: CpuAccount) -> Generator:
        """Parent write to a page range; returns pages actually copied."""
        if not self._snapshot_active or n_pages == 0:
            return 0
        end = min(first_page + n_pages, len(self._shared))
        if first_page >= end:
            return 0  # pages allocated after the fork are never shared
        window = self._shared[first_page:end]
        to_copy = int(window.sum())
        if to_copy == 0:
            return 0
        window[:] = False
        self.cow_faults += 1
        self.copied_pages += to_copy
        _cpu_ev = account.charge(
            "cow",
            self.model.fault_overhead + to_copy * self.model.page_copy_time,
        )
        if _cpu_ev is not None:
            yield _cpu_ev
        self.extra.add(self.env.now, to_copy * self.page_size)
        return to_copy

    def reap(self) -> None:
        """Child exited: drop the CoW generation and its extra memory."""
        if not self._snapshot_active:
            raise RuntimeError("no active snapshot fork")
        self._snapshot_active = False
        self._shared[:] = False
        self.extra.update(self.env.now, 0.0)
