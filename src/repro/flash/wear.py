"""Wear and endurance accounting over an FTL.

The paper's WAF = 1.00 claim is ultimately an endurance claim: no
internal copies means every host byte costs exactly one program cycle.
This module turns the FTL's erase counters into the metrics an
endurance analysis uses — total program/erase cycles, wear skew across
segments, and a projected device lifetime at a given workload rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.ftl import FlashTranslationLayer

__all__ = ["WearReport", "wear_report"]


@dataclass(frozen=True)
class WearReport:
    """Endurance view of one FTL's history."""

    total_erases: int
    mean_erases_per_segment: float
    max_erases: int
    min_erases: int
    #: max/mean — 1.0 is perfectly levelled
    wear_skew: float
    waf: float
    host_bytes_written: int
    #: bytes of NAND programmed per host byte (== WAF)
    write_cost: float
    #: host bytes writable before any segment exceeds ``endurance_cycles``
    remaining_host_bytes: float

    def lifetime_multiplier(self, other: WearReport) -> float:
        """How much longer this device lasts vs ``other`` at equal load
        (ratio of their write costs, the paper's lifespan argument)."""
        if self.write_cost == 0:
            return float("inf")
        return other.write_cost / self.write_cost


def wear_report(ftl: FlashTranslationLayer,
                endurance_cycles: int = 3000) -> WearReport:
    """Summarize wear for ``ftl`` assuming ``endurance_cycles`` P/E."""
    if endurance_cycles < 1:
        raise ValueError("endurance_cycles must be >= 1")
    erases = ftl._seg_erase_count.astype(np.int64)
    total = int(erases.sum())
    mean = float(erases.mean()) if erases.size else 0.0
    mx = int(erases.max()) if erases.size else 0
    mn = int(erases.min()) if erases.size else 0
    skew = (mx / mean) if mean > 0 else 1.0
    waf = ftl.stats.waf
    page = ftl.geometry.page_size
    host_bytes = ftl.stats.host_pages_written * page

    # lifetime projection: cycles left on the most-worn segment, scaled
    # by how efficiently host bytes translate into programs
    seg_bytes = ftl.geometry.segment_bytes
    cycles_left = max(endurance_cycles - mx, 0)
    remaining = cycles_left * seg_bytes * ftl.geometry.segments / max(waf, 1e-9)

    return WearReport(
        total_erases=total,
        mean_erases_per_segment=mean,
        max_erases=mx,
        min_erases=mn,
        wear_skew=skew,
        waf=waf,
        host_bytes_written=host_bytes,
        write_cost=waf,
        remaining_host_bytes=remaining,
    )
