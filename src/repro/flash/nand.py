"""NAND array timing: die and channel occupancy.

Each die services one operation at a time (read / program / erase) and
each channel bus moves one page at a time. Host I/O and GC traffic
contend for the same dies — this contention is the physical mechanism
behind the paper's "Snapshot & WAL (under GC)" degradation (§3.1.4)
and the RPS nosedives of Figure 4.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.flash.geometry import FlashGeometry, NandTiming
from repro.sim import Environment, Resource
from repro.sim.stats import Counter

__all__ = ["NandArray"]


class NandArray:
    """Timing façade over the dies and channels of one device."""

    def __init__(
        self,
        env: Environment,
        geometry: FlashGeometry,
        timing: NandTiming | None = None,
    ):
        self.env = env
        self.geometry = geometry
        self.timing = timing or NandTiming()
        self._dies = [Resource(env, capacity=1) for _ in range(geometry.total_dies)]
        self._channels = [Resource(env, capacity=1) for _ in range(geometry.channels)]
        self.counters = Counter()
        #: accumulated die-busy time, for utilization reporting
        self.die_busy_time = 0.0

    # -- elemental operations (generators to be yielded from processes) ------
    def _occupy(self, die: int, duration: float) -> Generator:
        req = self._dies[die].request()
        yield req
        yield self.env.timeout(duration)
        self._dies[die].release(req)
        self.die_busy_time += duration

    def _transfer(self, die: int) -> Generator:
        ch = self.geometry.channel_of_die(die)
        req = self._channels[ch].request()
        yield req
        yield self.env.timeout(self.timing.channel_transfer)
        self._channels[ch].release(req)

    def read_page(self, ppn: int) -> Generator:
        """Sense the page on its die, then move it over the channel."""
        die = self.geometry.die_of_page(ppn)
        yield from self._occupy(die, self.timing.page_read)
        yield from self._transfer(die)
        self.counters.add("page_reads")

    def program_page(self, ppn: int) -> Generator:
        """Move data over the channel, then program the die."""
        die = self.geometry.die_of_page(ppn)
        yield from self._transfer(die)
        yield from self._occupy(die, self.timing.page_program)
        self.counters.add("page_programs")

    def erase_segment(self, seg: int) -> Generator:
        """Erase the segment's block on every die (in parallel).

        Each die pays one block-erase latency; the segment erase
        completes when the slowest die finishes.
        """
        procs = []
        for die in range(self.geometry.total_dies):
            procs.append(
                self.env.process(
                    self._occupy(die, self.timing.block_erase),
                    name=f"erase-seg{seg}-die{die}",
                )
            )
        yield self.env.all_of(procs)
        self.counters.add("segment_erases")
        self.counters.add("block_erases", self.geometry.total_dies)

    # -- reporting -------------------------------------------------------------
    def utilization(self, t_end: float | None = None) -> float:
        """Mean die utilization in [0, 1] over the run so far."""
        t = self.env.now if t_end is None else t_end
        if t <= 0:
            return 0.0
        return self.die_busy_time / (t * self.geometry.total_dies)
