"""NAND array timing: die and channel occupancy.

Each die services one operation at a time (read / program / erase) and
each channel bus moves one page at a time. Host I/O and GC traffic
contend for the same dies — this contention is the physical mechanism
behind the paper's "Snapshot & WAL (under GC)" degradation (§3.1.4)
and the RPS nosedives of Figure 4.

Batched bursts
--------------

Multi-page operations (:meth:`NandArray.program_pages`,
:meth:`NandArray.read_pages`) are the hot path: an N-page burst is
split into runs of pages sharing one channel and each run's transfer
pipeline is computed in closed form (arrival instants by repeated
addition from the channel-grant time) instead of one heap event per
page-step. Die occupancy stays per-page — that is the contention that
matters — but grants, releases, and completions are scheduled at
*absolute* instants (:meth:`Environment.at`), so the realized schedule
is a pure function of grant times.

``batched=False`` keeps the exact same side-effect schedule (the same
requests, releases, and completion instants, computed by the same
shared arithmetic) but additionally realizes per-page granularity:
one pacing process plus chopped per-page timeouts per page, the event
load a page-at-a-time model pays. Because the side-effect graph is
shared, batched and unbatched runs are identical by construction —
``batched`` only changes how many inert events the heap carries, which
is exactly what the perf harness measures.
"""

from __future__ import annotations

from array import array
from collections.abc import Generator, Sequence

from repro.flash.geometry import FlashGeometry, NandTiming
from repro.sim import Environment, Event, Resource
from repro.sim.stats import Counter

__all__ = ["NandArray"]


class NandArray:
    """Timing façade over the dies and channels of one device."""

    def __init__(
        self,
        env: Environment,
        geometry: FlashGeometry,
        timing: NandTiming | None = None,
        batched: bool = True,
    ):
        self.env = env
        self.geometry = geometry
        self.timing = timing or NandTiming()
        self.batched = batched
        self._dies = [Resource(env, capacity=1) for _ in range(geometry.total_dies)]
        self._channels = [Resource(env, capacity=1) for _ in range(geometry.channels)]
        self.counters = Counter()
        #: accumulated busy time per die, preallocated; summed on the
        #: (rare) reporting reads, bumped per operation on the hot path
        self._die_busy = memoryview(array("d", [0.0]) * geometry.total_dies)

    @property
    def die_busy_time(self) -> float:
        """Total die-busy time across the array (utilization numerator)."""
        return sum(self._die_busy)

    def die_busy(self, die: int) -> float:
        """Accumulated busy time of one die (hotspot attribution)."""
        return self._die_busy[die]

    # -- burst helpers ---------------------------------------------------------
    def _channel_runs(
        self, ppns: Sequence[int]
    ) -> list[tuple[int, list[tuple[int, int]]]]:
        """Split a page list into order-preserving same-channel runs.

        Returns ``[(channel, [(ppn, die), ...]), ...]``. Consecutive
        physical pages stripe across dies, so ``dies_per_channel``
        consecutive pages land on one channel — the natural transfer
        burst.
        """
        geo = self.geometry
        runs: list[tuple[int, list[tuple[int, int]]]] = []
        cur_ch = -1
        cur: list[tuple[int, int]] = []
        for ppn in ppns:
            die = geo.die_of_page(ppn)
            ch = geo.channel_of_die(die)
            if ch != cur_ch:
                if cur:
                    runs.append((cur_ch, cur))
                cur_ch, cur = ch, []
            cur.append((ppn, die))
        if cur:
            runs.append((cur_ch, cur))
        return runs

    def _pace(self, instants: list[float]) -> Generator:
        """Inert per-page pacing for the unbatched realization.

        Yields one heap event per chopped instant — the grant, done,
        and release round-trips a page-at-a-time model dispatches per
        step. Touches no shared state, so it cannot perturb the
        simulated schedule.
        """
        env = self.env
        for when in instants:
            if when >= env.now:
                yield env.at(when)

    @staticmethod
    def _on_grant(request, fn) -> None:
        """Run ``fn`` at the request's grant instant.

        A born-granted request (``callbacks is None``) is held already:
        run synchronously. Otherwise the grant fires through the heap.
        """
        if request.callbacks is None:
            fn(None)
        else:
            request.callbacks.append(fn)

    # -- programs --------------------------------------------------------------
    def program_pages(self, ppns: Sequence[int]) -> Event:
        """Program a burst of pages; returns an event firing when the
        last page completes.

        Per channel run: the channel is held for the whole transfer
        pipeline (one page arrives every ``channel_transfer``); each
        page's die is requested at channel-grant time (in page order)
        and programs as soon as both its data has arrived and its die
        is free.
        """
        done = self.env.event()
        if not ppns:
            done.succeed()
            return done
        state = [len(ppns)]
        for ch, pages in self._channel_runs(ppns):
            self._start_program_run(ch, pages, state, done)
        return done

    def _start_program_run(
        self,
        ch: int,
        pages: list[tuple[int, int]],
        state: list[int],
        done: Event,
    ) -> None:
        env = self.env
        t_tr = self.timing.channel_transfer
        t_prog = self.timing.page_program
        channel = self._channels[ch]
        creq = channel.request()

        def on_channel(_ev, _creq=creq) -> None:
            arrival = env.now
            arrivals: list[float] = []
            for _ in pages:
                arrival = arrival + t_tr
                arrivals.append(arrival)
            rel = env.at(arrivals[-1])
            rel.callbacks.append(lambda _e: channel.release(_creq))
            if not self.batched:
                # per page: transfer grant+done, program grant+done —
                # the four dispatch points of the chopped realization
                for a in arrivals:
                    env.process(
                        self._pace([a, a, a + t_prog, a + t_prog]),
                        name="nand-pace",
                    )
            for (_ppn, die), a in zip(pages, arrivals):
                self._program_on_die(die, a, t_prog, state, done)

        self._on_grant(creq, on_channel)

    def _program_on_die(
        self, die: int, arrival: float, t_prog: float, state: list[int], done: Event
    ) -> None:
        env = self.env
        resource = self._dies[die]
        dreq = resource.request()

        def on_die(_ev) -> None:
            grant = env.now
            start = arrival if arrival > grant else grant
            fin = env.at(start + t_prog)

            def on_done(_e) -> None:
                resource.release(dreq)
                self._die_busy[die] += t_prog
                self.counters.add("page_programs")
                state[0] -= 1
                if not state[0]:
                    done.succeed()

            fin.callbacks.append(on_done)

        self._on_grant(dreq, on_die)

    # -- reads -----------------------------------------------------------------
    def read_pages(self, ppns: Sequence[int]) -> Event:
        """Read a burst of pages; returns an event firing when the last
        transfer completes.

        Per channel run: all senses proceed in die-parallel; once the
        run's last sense lands, the channel is held once and the run's
        pages stream out back-to-back.
        """
        done = self.env.event()
        if not ppns:
            done.succeed()
            return done
        state = [len(ppns)]
        for ch, pages in self._channel_runs(ppns):
            self._start_read_run(ch, pages, state, done)
        return done

    def _start_read_run(
        self,
        ch: int,
        pages: list[tuple[int, int]],
        state: list[int],
        done: Event,
    ) -> None:
        env = self.env
        t_read = self.timing.page_read
        t_tr = self.timing.channel_transfer
        channel = self._channels[ch]
        senses = [len(pages)]

        def after_senses() -> None:
            creq = channel.request()

            def on_channel(_ev, _creq=creq) -> None:
                out = env.now
                for _ in pages:
                    out = out + t_tr
                rel = env.at(out)

                def on_done(_e) -> None:
                    channel.release(_creq)
                    self.counters.add("page_reads", len(pages))
                    state[0] -= len(pages)
                    if not state[0]:
                        done.succeed()

                rel.callbacks.append(on_done)

            self._on_grant(creq, on_channel)

        for _ppn, die in pages:
            self._read_on_die(die, t_read, t_tr, senses, after_senses)

    def _read_on_die(
        self, die: int, t_read: float, t_tr: float, senses: list[int], after_senses
    ) -> None:
        env = self.env
        resource = self._dies[die]
        dreq = resource.request()

        def on_die(_ev) -> None:
            sensed = env.now + t_read
            fin = env.at(sensed)
            if not self.batched:
                env.process(
                    self._pace([sensed, sensed, sensed + t_tr, sensed + t_tr]),
                    name="nand-pace",
                )

            def on_sense(_e) -> None:
                resource.release(dreq)
                self._die_busy[die] += t_read
                senses[0] -= 1
                if not senses[0]:
                    after_senses()

            fin.callbacks.append(on_sense)

        self._on_grant(dreq, on_die)

    # -- single-page wrappers (process composition via ``yield from``) ---------
    def read_page(self, ppn: int) -> Generator:
        """Sense the page on its die, then move it over the channel."""
        yield self.read_pages([ppn])

    def program_page(self, ppn: int) -> Generator:
        """Move data over the channel, then program the die."""
        yield self.program_pages([ppn])

    def erase_segment(self, seg: int) -> Generator:
        """Erase the segment's block on every die (in parallel).

        Each die pays one block-erase latency; the segment erase
        completes when the slowest die finishes.
        """
        yield self.erase_segment_ev(seg)

    def erase_segment_ev(self, seg: int) -> Event:
        env = self.env
        done = env.event()
        t_erase = self.timing.block_erase
        state = [self.geometry.total_dies]
        for die in range(self.geometry.total_dies):
            self._erase_on_die(die, t_erase, state, done)
        return done

    def _erase_on_die(
        self, die: int, t_erase: float, state: list[int], done: Event
    ) -> None:
        env = self.env
        resource = self._dies[die]
        dreq = resource.request()

        def on_die(_ev) -> None:
            fin = env.at(env.now + t_erase)
            if not self.batched:
                env.process(
                    self._pace([env.now + t_erase] * 2), name="nand-pace"
                )

            def on_done(_e) -> None:
                resource.release(dreq)
                self._die_busy[die] += t_erase
                state[0] -= 1
                if not state[0]:
                    self.counters.add("segment_erases")
                    self.counters.add("block_erases", self.geometry.total_dies)
                    done.succeed()

            fin.callbacks.append(on_done)

        self._on_grant(dreq, on_die)

    # -- reporting -------------------------------------------------------------
    def utilization(self, t_end: float | None = None) -> float:
        """Mean die utilization in [0, 1] over the run so far."""
        t = self.env.now if t_end is None else t_end
        if t <= 0:
            return 0.0
        return self.die_busy_time / (t * self.geometry.total_dies)
