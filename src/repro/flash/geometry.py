"""Flash geometry and NAND timing parameters.

Defaults mirror the paper's FEMU configuration (§5.1): 8 channels,
8 dies per channel, 4 KiB NAND pages, page read 40 µs, page program
200 µs, block erase 2 ms. The paper's device is 180 GB with 1 GiB
Reclaim Units; tests and benches use proportionally scaled geometries
(every knob below is public).

The FTL operates on *segments*: a segment takes one physical block from
every die, and consecutive pages of a segment stripe round-robin across
the dies, so sequential writes enjoy full die-level parallelism — the
same layout FEMU calls a superblock.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NandTiming", "FlashGeometry"]

US = 1e-6
MS = 1e-3


@dataclass(frozen=True)
class NandTiming:
    """NAND operation latencies in seconds (FEMU v9.0 defaults)."""

    page_read: float = 40 * US
    page_program: float = 200 * US
    block_erase: float = 2 * MS
    #: time to move one page across the channel bus (4 KiB at ~1.2 GB/s)
    channel_transfer: float = 3.3 * US

    def __post_init__(self) -> None:
        for name in ("page_read", "page_program", "block_erase", "channel_transfer"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class FlashGeometry:
    """Physical layout of the emulated device."""

    channels: int = 8
    dies_per_channel: int = 8
    blocks_per_die: int = 64
    pages_per_block: int = 256
    page_size: int = 4096

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "dies_per_channel",
            "blocks_per_die",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    # -- derived sizes -------------------------------------------------------
    @property
    def total_dies(self) -> int:
        return self.channels * self.dies_per_channel

    @property
    def segments(self) -> int:
        """Number of segments (superblocks): one block from every die."""
        return self.blocks_per_die

    @property
    def pages_per_segment(self) -> int:
        return self.pages_per_block * self.total_dies

    @property
    def segment_bytes(self) -> int:
        return self.pages_per_segment * self.page_size

    @property
    def total_pages(self) -> int:
        return self.segments * self.pages_per_segment

    @property
    def total_bytes(self) -> int:
        return self.total_pages * self.page_size

    # -- address mapping -------------------------------------------------------
    def die_of_page(self, ppn: int) -> int:
        """Physical page → die index (round-robin stripe within segment)."""
        return ppn % self.total_dies

    def channel_of_die(self, die: int) -> int:
        return die // self.dies_per_channel

    def segment_of_page(self, ppn: int) -> int:
        return ppn // self.pages_per_segment

    def page_offset_in_segment(self, ppn: int) -> int:
        return ppn % self.pages_per_segment

    def first_page_of_segment(self, seg: int) -> int:
        return seg * self.pages_per_segment

    @staticmethod
    def scaled(mb: int = 64, channels: int = 2, dies_per_channel: int = 2,
               pages_per_block: int = 64, page_size: int = 4096) -> FlashGeometry:
        """Convenience: a small geometry of roughly ``mb`` MiB.

        Used by tests and scaled benchmark runs; keeps the channel/die
        parallelism structure while shrinking capacity.
        """
        total_dies = channels * dies_per_channel
        seg_bytes = pages_per_block * total_dies * page_size
        segments = max(4, (mb * 1024 * 1024) // seg_bytes)
        return FlashGeometry(
            channels=channels,
            dies_per_channel=dies_per_channel,
            blocks_per_die=segments,
            pages_per_block=pages_per_block,
            page_size=page_size,
        )
