"""Page-mapped flash translation layer with streams, GC, and WAF.

One FTL class covers both devices in the paper:

* **Conventional SSD** — a single write stream: WAL entries, WAL
  snapshots, and On-Demand snapshots all interleave into the same open
  segments, so segments end up holding pages with mixed lifetimes and
  garbage collection must copy the still-valid (long-lived) pages
  before erasing. Those copies are the WAF > 1 of Table 3 and the
  latency spikes of Figure 4.
* **FDP SSD** — one stream per Placement ID. A stream owns its
  segments exclusively (a segment group per stream is exactly the
  Reclaim Unit of the FDP spec at our RU = segment granularity), so
  when the host deallocates a region its segments become fully invalid
  and GC erases them without copying a single page: WAF = 1.00.

The FTL tracks logical→physical mapping in preallocated buffers
(:mod:`repro.flash.l2p`): memoryview scalar access on the per-page hot
path, zero-copy numpy views over the same bytes for the vectorized
paths. GC runs as a background simulation process competing for the
same NAND dies as host I/O; write-amplification and stall statistics
are exposed per stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Generator, Sequence

import numpy as np

from repro.flash.geometry import FlashGeometry, NandTiming
from repro.flash.l2p import IntVec, L2PMap
from repro.flash.nand import NandArray
from repro.obs.spans import maybe_span
from repro.sim import Environment, Event
from repro.sim.stats import Counter

__all__ = ["FtlConfig", "FtlStats", "FlashTranslationLayer"]

# segment states
SEG_FREE = 0
SEG_OPEN = 1
SEG_FULL = 2

# write roles within a stream
ROLE_HOST = 0
ROLE_GC = 1


@dataclass(frozen=True)
class FtlConfig:
    """GC and overprovisioning policy knobs."""

    #: fraction of physical pages hidden from the logical space
    op_ratio: float = 0.10
    #: kick GC when free segments drop below this
    gc_trigger_segments: int = 4
    #: GC keeps reclaiming until free segments reach this
    gc_stop_segments: int = 6
    #: segments only GC may allocate from (host waits below this)
    gc_reserve_segments: int = 2
    #: concurrent page copies per GC batch (uses die parallelism)
    gc_copy_window: int = 16
    #: idle gap between background (copy-free) reclaims
    bg_reclaim_pause: float = 3e-3

    def __post_init__(self) -> None:
        if not 0.0 <= self.op_ratio < 0.5:
            raise ValueError("op_ratio must be in [0, 0.5)")
        if self.gc_reserve_segments < 1:
            raise ValueError("gc_reserve_segments must be >= 1")
        if self.gc_trigger_segments <= self.gc_reserve_segments:
            raise ValueError("gc_trigger must exceed gc_reserve")
        if self.gc_stop_segments < self.gc_trigger_segments:
            raise ValueError("gc_stop must be >= gc_trigger")
        if self.gc_copy_window < 1:
            raise ValueError("gc_copy_window must be >= 1")


@dataclass
class FtlStats:
    """Aggregate device-internal accounting."""

    host_pages_written: int = 0
    gc_pages_copied: int = 0
    segments_erased: int = 0
    copyfree_erases: int = 0
    host_stall_time: float = 0.0
    gc_runs: int = 0

    @property
    def total_pages_programmed(self) -> int:
        return self.host_pages_written + self.gc_pages_copied

    @property
    def waf(self) -> float:
        """Write amplification factor (1.00 = no internal copies)."""
        if self.host_pages_written == 0:
            return 1.0
        return self.total_pages_programmed / self.host_pages_written


class _Stream:
    """One write stream (a Placement ID in FDP terms)."""

    __slots__ = ("stream_id", "open_segment", "write_ptr", "pages_written",
                 "gc_pages_copied", "place_locks")

    def __init__(self, stream_id: int, env: Environment):
        self.stream_id = stream_id
        # one open segment per role: [host, gc]
        self.open_segment: list[int | None] = [None, None]
        self.write_ptr: list[int] = [0, 0]
        self.pages_written = 0
        self.gc_pages_copied = 0
        # placement must be atomic per (stream, role): allocation can
        # block, and concurrent page writes would otherwise race and
        # leak half-open segments
        from repro.sim import Resource

        self.place_locks = [Resource(env, 1), Resource(env, 1)]


class FlashTranslationLayer:
    """Mapping, allocation, and garbage collection for one device."""

    def __init__(
        self,
        env: Environment,
        geometry: FlashGeometry,
        timing: NandTiming | None = None,
        config: FtlConfig | None = None,
        nand: NandArray | None = None,
        batched: bool = True,
    ):
        self.env = env
        self.geometry = geometry
        self.config = config or FtlConfig()
        self.nand = nand or NandArray(env, geometry, timing, batched=batched)
        g = geometry
        if self.config.gc_stop_segments >= g.segments:
            raise ValueError(
                f"geometry has {g.segments} segments; GC watermarks need fewer"
            )

        self.num_lpns = int(g.total_pages * (1.0 - self.config.op_ratio))
        # logical→physical and inverse maps (-1 = unmapped/invalid).
        # All per-page/per-segment state is preallocated (L2PMap /
        # IntVec): memoryviews (*_mv) for the scalar hot path, numpy
        # views over the same bytes for the vectorized paths.
        self._map = L2PMap(self.num_lpns, g.total_pages)
        self._l2p = self._map.fwd_np
        self._p2l = self._map.rev_np
        self._l2p_mv = self._map.fwd
        self._p2l_mv = self._map.rev
        self._seg_state_v = IntVec(g.segments, SEG_FREE, "b")
        self._seg_valid_v = IntVec(g.segments, 0, "i")
        self._seg_stream_v = IntVec(g.segments, -1, "i")
        self._seg_erase_v = IntVec(g.segments, 0, "q")
        self._seg_state = self._seg_state_v.np
        self._seg_valid = self._seg_valid_v.np
        self._seg_stream = self._seg_stream_v.np
        self._seg_erase_count = self._seg_erase_v.np
        self._seg_state_mv = self._seg_state_v.mv
        self._seg_valid_mv = self._seg_valid_v.mv
        self._seg_stream_mv = self._seg_stream_v.mv
        self._seg_erase_mv = self._seg_erase_v.mv
        self._free: deque[int] = deque(range(g.segments))

        self._streams: dict[int, _Stream] = {}
        self.stats = FtlStats()
        self.counters = Counter()
        self.obs = None
        #: request tracer (None = tracing off); host writes carrying a
        #: trace scope record alloc-stall and NAND-program leaf spans
        self.rtrace = None
        self._space_waiters: list[Event] = []
        self._gc_kick: Event | None = None
        self._bg_wake: Event | None = None
        self._invalidation: Event | None = None
        self._gc_proc = env.process(self._gc_loop(), name="ftl-gc")

    # ------------------------------------------------------------------ telemetry
    def attach_obs(self, registry) -> None:
        """Register instruments on a :class:`repro.obs.MetricsRegistry`.

        The WAF gauge is callback-bound to :attr:`FtlStats.waf`, so its
        exported value is the live ratio at read time; the free-segment
        gauge's low watermark records how close the device came to GC
        starvation.
        """
        self.obs = registry
        self._obs_waf = registry.gauge("ftl_waf", fn=lambda: self.stats.waf)
        self._obs_free = registry.gauge("ftl_free_segments")
        self._obs_free.set(float(len(self._free)))
        self._obs_erased = registry.counter("ftl_segments_erased_total")
        self._obs_stalls = registry.counter("ftl_alloc_stalls_total")
        self._obs_gc_copies: dict[int, object] = {}

    # ------------------------------------------------------------------ streams
    def register_stream(self, stream_id: int) -> None:
        """Declare a write stream (an FDP Placement ID)."""
        if stream_id in self._streams:
            raise ValueError(f"stream {stream_id} already registered")
        self._streams[stream_id] = _Stream(stream_id, self.env)

    @property
    def stream_ids(self) -> list[int]:
        return sorted(self._streams)

    def stream_stats(self, stream_id: int) -> tuple[int, int]:
        """(host pages written, GC pages copied) within one stream."""
        s = self._streams[stream_id]
        return s.pages_written, s.gc_pages_copied

    def waf_for_streams(self, stream_ids) -> float:
        """WAF over a subset of streams (per-tenant attribution).

        A tenant whose Placement IDs are shared with another tenant
        sees the shared streams' traffic in full — attribution is by
        stream, not by submitter, exactly as a real FDP device would
        account Reclaim-Unit traffic.
        """
        host = copied = 0
        for sid in set(stream_ids):
            if sid not in self._streams:
                continue
            h, c = self.stream_stats(sid)
            host += h
            copied += c
        if host == 0:
            return 1.0
        return (host + copied) / host

    # ------------------------------------------------------------------ queries
    @property
    def free_segments(self) -> int:
        return len(self._free)

    def mapped_ppn(self, lpn: int) -> int:
        """Current physical page of ``lpn`` (-1 if unmapped)."""
        self._check_lpn(lpn)
        return self._l2p_mv[lpn]

    def segment_valid_count(self, seg: int) -> int:
        return self._seg_valid_mv[seg]

    def segment_stream(self, seg: int) -> int:
        return self._seg_stream_mv[seg]

    def erase_count(self, seg: int) -> int:
        return self._seg_erase_mv[seg]

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.num_lpns:
            raise ValueError(f"lpn {lpn} out of range [0, {self.num_lpns})")

    # ------------------------------------------------------------------ host ops
    def write(self, lpn: int, stream_id: int) -> Generator:
        """Host page write (a simulation generator).

        Maps the page into the stream's open segment and pays the NAND
        program plus any allocation stall while the device is out of
        free segments (GC pressure — the Figure 4 nosedives).
        """
        self._check_lpn(lpn)
        if stream_id not in self._streams:
            raise ValueError(f"unknown stream {stream_id}")
        rt = self.rtrace
        t0 = self.env.now
        ppn = yield from self._place(lpn, stream_id, ROLE_HOST)
        stall = self.env.now - t0
        self.stats.host_stall_time += stall
        if rt is not None and stall > 0:
            rt.add_span("ftl_alloc_stall", "ftl", t0, self.env.now,
                        stream=stream_id)
        t1 = self.env.now
        yield from self.nand.program_page(ppn)
        if rt is not None:
            rt.add_span("nand_program", "nand", t1, self.env.now,
                        stream=stream_id, pages=1)
        self.stats.host_pages_written += 1
        self._streams[stream_id].pages_written += 1

    def read(self, lpn: int) -> Generator:
        """Host page read; unmapped pages cost nothing (returned zeroed)."""
        self._check_lpn(lpn)
        ppn = self._l2p_mv[lpn]
        if ppn < 0:
            return False
        yield from self.nand.read_page(ppn)
        return True

    def write_burst(self, lpn_start: int, count: int, stream_id: int) -> Generator:
        """Host multi-page write: one placement pass, one NAND burst.

        Equivalent to ``count`` individual :meth:`write` calls in
        accounting (stall time, WAF, per-stream counters) but takes the
        (stream, role) place lock once and programs the whole extent as
        a single pipelined burst.
        """
        if count <= 0:
            return
        self._check_lpn(lpn_start)
        self._check_lpn(lpn_start + count - 1)
        if stream_id not in self._streams:
            raise ValueError(f"unknown stream {stream_id}")
        # Chunk at segment granularity: data streams into a real FTL at
        # channel speed, so segment allocations for a long extent are
        # paced by the programs of the previous segment — mapping the
        # whole extent at one instant would let a single burst drain
        # the free list faster than background GC can interleave its
        # copy-free erases.
        chunk = self.geometry.pages_per_segment
        rt = self.rtrace
        i = 0
        while i < count:
            take = min(chunk, count - i)
            t0 = self.env.now
            ppns = yield from self._place_chunked(
                range(lpn_start + i, lpn_start + i + take),
                stream_id,
                ROLE_HOST,
            )
            # every page of the chunk experienced the same allocation wait
            self.stats.host_stall_time += (self.env.now - t0) * take
            if rt is not None and self.env.now > t0:
                rt.add_span("ftl_alloc_stall", "ftl", t0, self.env.now,
                            stream=stream_id)
            t1 = self.env.now
            yield self.nand.program_pages(ppns)
            if rt is not None:
                rt.add_span("nand_program", "nand", t1, self.env.now,
                            stream=stream_id, pages=take)
            self.stats.host_pages_written += take
            self._streams[stream_id].pages_written += take
            i += take

    def read_burst(self, lpn_start: int, count: int) -> Generator:
        """Host multi-page read; unmapped pages cost nothing.

        Returns the number of mapped pages actually sensed.
        """
        if count <= 0:
            return 0
        self._check_lpn(lpn_start)
        self._check_lpn(lpn_start + count - 1)
        ppns = self._l2p[lpn_start : lpn_start + count]
        mapped = ppns[ppns >= 0]
        if mapped.size:
            yield self.nand.read_pages(mapped.tolist())
        return int(mapped.size)

    def deallocate(self, lpn_start: int, count: int) -> None:
        """TRIM a logical range: invalidate without writing.

        This is how SlimIO retires an old WAL or snapshot slot; on the
        FDP device it leaves whole Reclaim Units invalid, enabling
        copy-free erases.
        """
        if count < 0:
            raise ValueError("negative deallocate count")
        self._check_lpn(lpn_start)
        if count:
            self._check_lpn(lpn_start + count - 1)
        lpns = np.arange(lpn_start, lpn_start + count)
        ppns = self._l2p[lpns]
        live = ppns[ppns >= 0]
        if live.size:
            segs = live // self.geometry.pages_per_segment
            self._p2l[live] = -1
            np.subtract.at(self._seg_valid, segs, 1)
            self._l2p[lpns] = -1
        self.counters.add("deallocated_pages", int(live.size))
        if live.size:
            self._on_invalidation()
        self._maybe_kick_gc()

    # ------------------------------------------------------------------ placement
    def _place(self, lpn: int, stream_id: int, role: int) -> Generator:
        """Assign a physical page; returns the ppn (mapping is atomic)."""
        stream = self._streams[stream_id]
        lock = stream.place_locks[role].request()
        yield lock
        try:
            seg = stream.open_segment[role]
            if (
                seg is None
                or stream.write_ptr[role] >= self.geometry.pages_per_segment
            ):
                if seg is not None:
                    self._seg_state_mv[seg] = SEG_FULL
                    stream.open_segment[role] = None
                    self._maybe_kick_gc()
                seg = yield from self._alloc_segment(stream_id, role)
                stream.open_segment[role] = seg
                stream.write_ptr[role] = 0
            ppn = (
                self.geometry.first_page_of_segment(seg)
                + stream.write_ptr[role]
            )
            stream.write_ptr[role] += 1
        finally:
            stream.place_locks[role].release(lock)

        old = self._map.map(lpn, ppn)
        if old >= 0:
            self._seg_valid_mv[self.geometry.segment_of_page(old)] -= 1
            self._on_invalidation()
        self._seg_valid_mv[self.geometry.segment_of_page(ppn)] += 1
        return ppn

    def _alloc_segment(self, stream_id: int, role: int) -> Generator:
        floor = 0 if role == ROLE_GC else self.config.gc_reserve_segments
        while True:
            self._maybe_kick_gc()
            if len(self._free) > floor:
                seg = self._free.popleft()
                self._seg_state_mv[seg] = SEG_OPEN
                self._seg_stream_mv[seg] = stream_id
                if self.obs is not None:
                    self._obs_free.set(float(len(self._free)))
                return seg
            # out of space for this caller: wait for GC to reclaim
            waiter = self.env.event()
            self._space_waiters.append(waiter)
            self.counters.add("alloc_stalls")
            if self.obs is not None:
                self._obs_stalls.inc()
            yield waiter

    def _place_chunked(
        self, lpns: Sequence[int], stream_id: int, role: int
    ) -> Generator:
        """Assign physical pages to a whole extent under one lock hold.

        Splits the extent at segment boundaries; each chunk's mapping
        update is vectorized. Returns the assigned ppns in lpn order.
        """
        stream = self._streams[stream_id]
        g = self.geometry
        lock = stream.place_locks[role].request()
        yield lock
        ppns: list[int] = []
        try:
            i, n = 0, len(lpns)
            while i < n:
                seg = stream.open_segment[role]
                if seg is None or stream.write_ptr[role] >= g.pages_per_segment:
                    if seg is not None:
                        self._seg_state_mv[seg] = SEG_FULL
                        stream.open_segment[role] = None
                        self._maybe_kick_gc()
                    seg = yield from self._alloc_segment(stream_id, role)
                    stream.open_segment[role] = seg
                    stream.write_ptr[role] = 0
                take = min(g.pages_per_segment - stream.write_ptr[role], n - i)
                base = g.first_page_of_segment(seg) + stream.write_ptr[role]
                stream.write_ptr[role] += take
                self._map_range(lpns[i : i + take], base, seg)
                ppns.extend(range(base, base + take))
                i += take
        finally:
            stream.place_locks[role].release(lock)
        return ppns

    def _map_range(self, lpns: Sequence[int], base: int, seg: int) -> None:
        """Map ``lpns`` onto the consecutive ppns starting at ``base``."""
        arr = np.asarray(lpns, dtype=np.int64)
        if np.unique(arr).size != arr.size:
            # Duplicate lpns within one burst: vectorized scatter would
            # let an early ppn's reverse mapping survive; fall back to
            # page-at-a-time semantics (the later write supersedes).
            for lpn, ppn in zip(lpns, range(base, base + len(lpns))):
                self._map_one(int(lpn), ppn)
            return
        old = self._l2p[arr]
        live = old[old >= 0]
        if live.size:
            self._p2l[live] = -1
            np.subtract.at(
                self._seg_valid, live // self.geometry.pages_per_segment, 1
            )
        new = np.arange(base, base + arr.size, dtype=np.int64)
        self._l2p[arr] = new
        self._p2l[new] = arr
        self._seg_valid_mv[seg] += arr.size
        if live.size:
            self._on_invalidation()

    def _map_one(self, lpn: int, ppn: int) -> None:
        old = self._map.map(lpn, ppn)
        if old >= 0:
            self._seg_valid_mv[self.geometry.segment_of_page(old)] -= 1
            self._on_invalidation()
        self._seg_valid_mv[self.geometry.segment_of_page(ppn)] += 1

    # ------------------------------------------------------------------ GC
    def _maybe_kick_gc(self) -> None:
        if (
            len(self._free) < self.config.gc_trigger_segments
            and self._gc_kick is not None
            and not self._gc_kick.triggered
        ):
            self._gc_kick.succeed()

    def _pick_victim(self) -> int | None:
        """Greedy: the FULL segment with the fewest valid pages.

        A 100%-valid segment is never a victim — copying it gains no
        space (a real FTL would burn endurance for nothing); the GC
        waits for invalidations instead.
        """
        full = np.flatnonzero(self._seg_state == SEG_FULL)
        if full.size == 0:
            return None
        best = int(full[np.argmin(self._seg_valid[full])])
        if self._seg_valid_mv[best] >= self.geometry.pages_per_segment:
            return None
        return best

    def _close_reclaimable_opens(self) -> None:
        """Close host open segments that carry invalid pages.

        Invalid space pinned in an open segment is unreachable to GC;
        closing the segment (the stream simply opens a new one on its
        next write) converts it into a victim candidate — the FTL
        analogue of padding out a partially written block.
        """
        for stream in self._streams.values():
            for role in (ROLE_HOST, ROLE_GC):
                seg = stream.open_segment[role]
                if seg is None:
                    continue
                written = stream.write_ptr[role]
                if written > 0 and self._seg_valid_mv[seg] < written:
                    self._seg_state_mv[seg] = SEG_FULL
                    stream.open_segment[role] = None
                    stream.write_ptr[role] = 0
                    self.counters.add("forced_closes")

    def _on_invalidation(self) -> None:
        if self._invalidation is not None and not self._invalidation.triggered:
            self._invalidation.succeed()
        if self._bg_wake is not None and not self._bg_wake.triggered:
            self._bg_wake.succeed()

    def _pick_dead(self) -> int | None:
        """A fully-invalid FULL segment (copy-free reclaim), if any."""
        full = np.flatnonzero(
            (self._seg_state == SEG_FULL) & (self._seg_valid == 0)
        )
        return int(full[0]) if full.size else None

    def _gc_loop(self) -> Generator:
        while True:
            if len(self._free) >= self.config.gc_trigger_segments:
                # background reclaim: erase wholesale-dead segments as
                # they appear (TRIM of a WAL generation / snapshot slot)
                # instead of letting erases cluster into a storm when
                # free space finally runs out
                dead = self._pick_dead()
                if dead is not None:
                    yield from self._reclaim(dead)
                    self.counters.add("background_reclaims")
                    # pace background erases so they interleave with
                    # host I/O instead of forming a blackout train
                    yield self.env.timeout(self.config.bg_reclaim_pause)
                    continue
                # single-writer kick handoff: only this loop assigns
                # the wake events; writers only succeed the parked ones
                self._gc_kick = self.env.event()  # slimlint: ignore[SLIM010] single-writer handoff
                self._bg_wake = self.env.event()  # slimlint: ignore[SLIM010] single-writer handoff
                self._maybe_kick_gc()
                yield self.env.any_of([self._gc_kick, self._bg_wake])
                self._gc_kick = None  # slimlint: ignore[SLIM010] single-writer handoff
                self._bg_wake = None  # slimlint: ignore[SLIM010] single-writer handoff
            # reclaim until the stop watermark
            while len(self._free) < self.config.gc_stop_segments:
                victim = self._pick_victim()
                if victim is None:
                    self._close_reclaimable_opens()
                    victim = self._pick_victim()
                if victim is None:
                    # nothing gains space right now: sleep until some
                    # page is invalidated (overwrite or TRIM). If every
                    # writer is blocked on allocation too, the event
                    # heap drains and the run fails loudly — a genuinely
                    # wedged configuration, not silent GC churn.
                    self._invalidation = self.env.event()  # slimlint: ignore[SLIM010] single-writer handoff
                    yield self._invalidation
                    self._invalidation = None  # slimlint: ignore[SLIM010] single-writer handoff
                    continue
                yield from self._reclaim(victim)
            self.stats.gc_runs += 1

    def _reclaim(self, victim: int) -> Generator:
        """Copy a victim's valid pages, then erase it."""
        g = self.geometry
        base = g.first_page_of_segment(victim)
        stream_id = self._seg_stream_mv[victim]
        with maybe_span(self.obs, "gc_reclaim", track="gc",
                        stream=stream_id) as gc_span:
            copied = 0
            window: list[tuple[int, int]] = []
            for off in range(g.pages_per_segment):
                ppn = base + off
                lpn = self._p2l_mv[ppn]
                if lpn < 0:
                    continue
                window.append((lpn, ppn))
                copied += 1
                if len(window) >= self.config.gc_copy_window:
                    yield from self._copy_window(window, stream_id)
                    window = []
            if window:
                yield from self._copy_window(window, stream_id)
            if copied == 0:
                self.stats.copyfree_erases += 1
            if self.obs is not None:
                # labels are recorded at span exit, so blame analysis
                # can tell copying reclaims from copy-free erases
                gc_span.labels["copied"] = copied
            yield from self.nand.erase_segment(victim)
        self._seg_state_mv[victim] = SEG_FREE
        self._seg_stream_mv[victim] = -1
        self._seg_valid_mv[victim] = 0
        self._seg_erase_mv[victim] += 1
        self._free.append(victim)
        self.stats.segments_erased += 1
        if self.obs is not None:
            self._obs_erased.inc()
            self._obs_free.set(float(len(self._free)))
        waiters, self._space_waiters = self._space_waiters, []
        for w in waiters:
            w.succeed()

    def _copy_window(
        self, pairs: list[tuple[int, int]], stream_id: int
    ) -> Generator:
        """Relocate one window of (lpn, src_ppn) victim candidates.

        Batched read of the still-valid sources, a post-read validity
        re-check (the host may rewrite an lpn while its copy is in
        flight), then one placement pass and one program burst for the
        survivors.
        """
        l2p = self._l2p_mv
        live = [(lpn, ppn) for lpn, ppn in pairs if l2p[lpn] == ppn]
        if not live:
            return
        yield self.nand.read_pages([ppn for _lpn, ppn in live])
        live = [(lpn, ppn) for lpn, ppn in live if l2p[lpn] == ppn]
        if not live:
            return
        dsts = yield from self._place_chunked(
            [lpn for lpn, _ppn in live], stream_id, ROLE_GC
        )
        yield self.nand.program_pages(dsts)
        n = len(live)
        self.stats.gc_pages_copied += n
        self._streams[stream_id].gc_pages_copied += n
        if self.obs is not None:
            c = self._obs_gc_copies.get(stream_id)
            if c is None:
                c = self.obs.counter("ftl_gc_pages_copied_total",
                                     stream=stream_id)
                self._obs_gc_copies[stream_id] = c
            c.inc(n)

    # ------------------------------------------------------------------ invariants
    def check_invariants(self) -> None:
        """Internal consistency; used by property-based tests."""
        g = self.geometry
        mapped = np.flatnonzero(self._l2p >= 0)
        ppns = self._l2p[mapped]
        if len(np.unique(ppns)) != len(ppns):
            raise AssertionError("two lpns map to one ppn")
        back = self._p2l[ppns]
        if not np.array_equal(back, mapped):
            raise AssertionError("l2p/p2l disagree")
        valid_by_seg = np.bincount(
            ppns // g.pages_per_segment, minlength=g.segments
        )
        if not np.array_equal(valid_by_seg, self._seg_valid):
            raise AssertionError("segment valid counts drifted")
        n_free = int(np.sum(self._seg_state == SEG_FREE))
        if n_free != len(self._free):
            raise AssertionError("free list does not match segment states")
        if np.any(self._seg_valid[self._seg_state == SEG_FREE] != 0):
            raise AssertionError("free segment holds valid pages")
