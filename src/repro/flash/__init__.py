"""NAND flash + FTL emulator (the FEMU substitute).

The paper evaluates on an FDP SSD emulated with FEMU v9.0. FEMU is a
timing model layered over host DRAM; this package re-implements the
same model natively on the discrete-event engine:

* :mod:`repro.flash.geometry` — channels × dies × blocks × pages plus
  FEMU's default NAND latencies (read 40 µs, program 200 µs, erase 2 ms).
* :mod:`repro.flash.nand` — per-die and per-channel occupancy, which is
  where GC-vs-host interference physically happens.
* :mod:`repro.flash.ftl` — a page-mapped FTL over *segments*
  (superblocks striped across all dies) with greedy garbage collection
  and write-amplification accounting. Streams are first-class: the
  conventional SSD is the 1-stream instance, the FDP SSD maps each
  Placement ID to its own stream whose segments form Reclaim Units.
"""

from repro.flash.geometry import FlashGeometry, NandTiming
from repro.flash.nand import NandArray
from repro.flash.ftl import FlashTranslationLayer, FtlConfig, FtlStats
from repro.flash.wear import WearReport, wear_report

__all__ = [
    "FlashGeometry",
    "NandTiming",
    "NandArray",
    "FlashTranslationLayer",
    "FtlConfig",
    "FtlStats",
    "WearReport",
    "wear_report",
]
