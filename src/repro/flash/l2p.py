"""Preallocated logical↔physical mapping state for the FTL hot path.

The FTL's per-page bookkeeping is touched on every host write, GC
copy, and TRIM. Two access patterns with opposite needs share it:

* **scalar** — ``_place``/``_map_one``/``_reclaim`` read and write one
  entry at a time. Indexing a numpy array from Python boxes every
  element into an ``np.int64`` (and unboxes on store) — several times
  the cost of a plain buffer access.
* **vector** — burst mapping, TRIM, victim selection, and the
  invariant checker want whole-array numpy semantics
  (``np.subtract.at``, fancy indexing, masks).

:class:`IntVec` serves both from one preallocated ``array`` buffer: a
``memoryview`` for O(1) unboxed scalar access and a zero-copy
``np.frombuffer`` view for vector math. There is a single source of
truth — writes through either personality are visible to the other —
and the buffer never reallocates, so GB-scale maps cost exactly
``n * itemsize`` bytes with no per-op allocation.

:class:`L2PMap` packages the forward and reverse page maps on top,
and :class:`DictL2P` is the obvious dict-of-ints reference
implementation the equivalence test replays traces against.
"""

from __future__ import annotations

from array import array

import numpy as np

__all__ = ["IntVec", "L2PMap", "DictL2P"]


class IntVec:
    """Fixed-size numeric vector with scalar and vector personalities.

    ``vec.mv[i]`` (memoryview) for hot scalar reads/writes;
    ``vec.np`` (ndarray view over the same bytes) for vectorized
    operations. ``typecode`` follows the :mod:`array` module ('q' =
    int64, 'i' = int32, 'b' = int8, 'd' = float64).
    """

    __slots__ = ("buf", "mv", "np")

    def __init__(self, n: int, fill=0, typecode: str = "q"):
        if n < 0:
            raise ValueError(f"negative IntVec size {n}")
        self.buf = array(typecode, [fill]) * n
        self.mv = memoryview(self.buf)
        self.np = np.frombuffer(self.buf, dtype=np.dtype(typecode))

    def __len__(self) -> int:
        return len(self.buf)


class L2PMap:
    """Forward (lpn→ppn) and reverse (ppn→lpn) page maps, -1 = unmapped.

    Exposes the raw personalities — ``fwd``/``rev`` memoryviews and
    ``fwd_np``/``rev_np`` ndarray views — so the FTL's scalar paths
    and vector paths each use the cheapest access for the job. The
    convenience methods below exist for the equivalence test and for
    callers that don't care about the last nanosecond.
    """

    __slots__ = ("num_lpns", "num_ppns", "_fwd", "_rev",
                 "fwd", "rev", "fwd_np", "rev_np")

    def __init__(self, num_lpns: int, num_ppns: int):
        self.num_lpns = num_lpns
        self.num_ppns = num_ppns
        self._fwd = IntVec(num_lpns, fill=-1, typecode="q")
        self._rev = IntVec(num_ppns, fill=-1, typecode="q")
        self.fwd = self._fwd.mv
        self.rev = self._rev.mv
        self.fwd_np = self._fwd.np
        self.rev_np = self._rev.np

    # ------------------------------------------------------------ scalar ops
    def lookup(self, lpn: int) -> int:
        """Physical page of ``lpn`` (-1 if unmapped)."""
        return self.fwd[lpn]

    def rlookup(self, ppn: int) -> int:
        """Logical page stored at ``ppn`` (-1 if invalid)."""
        return self.rev[ppn]

    def map(self, lpn: int, ppn: int) -> int:
        """Point ``lpn`` at ``ppn``; returns the superseded ppn (-1 if
        the lpn was unmapped). The superseded physical page's reverse
        entry is cleared — its segment-valid accounting is the FTL's
        job, not the map's."""
        old = self.fwd[lpn]
        if old >= 0:
            self.rev[old] = -1
        self.fwd[lpn] = ppn
        self.rev[ppn] = lpn
        return old

    def unmap(self, lpn: int) -> int:
        """TRIM one lpn; returns the freed ppn (-1 if it was unmapped)."""
        old = self.fwd[lpn]
        if old >= 0:
            self.rev[old] = -1
            self.fwd[lpn] = -1
        return old

    # ------------------------------------------------------------ snapshots
    def to_dict(self) -> dict[int, int]:
        """Forward map as a dict (mapped entries only) — test helper."""
        mapped = np.flatnonzero(self.fwd_np >= 0)
        return {int(l): int(p) for l, p in zip(mapped, self.fwd_np[mapped])}


class DictL2P:
    """Dict-backed reference with the same operation contract.

    Kept deliberately naive: the equivalence test replays a randomized
    trace through both implementations and compares after every
    operation, so any divergence in the array fast path shows up with
    the offending op attached.
    """

    __slots__ = ("num_lpns", "num_ppns", "_fwd", "_rev")

    def __init__(self, num_lpns: int, num_ppns: int):
        self.num_lpns = num_lpns
        self.num_ppns = num_ppns
        self._fwd: dict[int, int] = {}
        self._rev: dict[int, int] = {}

    def lookup(self, lpn: int) -> int:
        return self._fwd.get(lpn, -1)

    def rlookup(self, ppn: int) -> int:
        return self._rev.get(ppn, -1)

    def map(self, lpn: int, ppn: int) -> int:
        old = self._fwd.get(lpn, -1)
        if old >= 0:
            del self._rev[old]
        self._fwd[lpn] = ppn
        self._rev[ppn] = lpn
        return old

    def unmap(self, lpn: int) -> int:
        old = self._fwd.pop(lpn, -1)
        if old >= 0:
            del self._rev[old]
        return old

    def to_dict(self) -> dict[int, int]:
        return dict(self._fwd)
