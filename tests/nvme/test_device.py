"""NVMe device tests: data plane round-trips, FDP stream routing."""

import pytest

from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.nvme import DeallocateCmd, NvmeDevice, ReadCmd, WriteCmd
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)
CFG = FtlConfig(op_ratio=0.25, gc_trigger_segments=3, gc_stop_segments=4,
                gc_reserve_segments=2)


def make_device(fdp=False, segments=16):
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=segments,
                      pages_per_block=8)
    dev = NvmeDevice(env, g, FAST, CFG, fdp=fdp)
    return env, dev


def submit(env, dev, cmd):
    out = []

    def proc():
        r = yield from dev.submit(cmd)
        out.append(r)

    p = env.process(proc())
    env.run(until=p)
    return out[0]


def test_write_read_roundtrip():
    env, dev = make_device()
    page = dev.lba_size
    payload = bytes(range(256)) * (page // 256)
    submit(env, dev, WriteCmd(lba=3, nlb=1, data=payload))
    got = submit(env, dev, ReadCmd(lba=3, nlb=1))
    assert got == payload


def test_multipage_write_roundtrip():
    env, dev = make_device()
    page = dev.lba_size
    payload = bytes([7]) * page + bytes([9]) * page
    submit(env, dev, WriteCmd(lba=0, nlb=2, data=payload))
    assert submit(env, dev, ReadCmd(lba=0, nlb=2)) == payload
    assert dev.stats.pages_written == 2


def test_read_unwritten_returns_zeroes():
    env, dev = make_device()
    got = submit(env, dev, ReadCmd(lba=5, nlb=1))
    assert got == bytes(dev.lba_size)


def test_write_without_data_stores_zero_page():
    env, dev = make_device()
    submit(env, dev, WriteCmd(lba=2, nlb=1))
    assert dev.peek(2) == bytes(dev.lba_size)


def test_data_length_must_match_nlb():
    env, dev = make_device()
    with pytest.raises(ValueError):
        submit(env, dev, WriteCmd(lba=0, nlb=2, data=b"short"))


def test_extent_bounds_enforced():
    env, dev = make_device()
    with pytest.raises(ValueError):
        submit(env, dev, ReadCmd(lba=dev.num_lbas, nlb=1))
    with pytest.raises(ValueError):
        submit(env, dev, WriteCmd(lba=dev.num_lbas - 1, nlb=2,
                                  data=bytes(2 * dev.lba_size)))


def test_command_validation():
    with pytest.raises(ValueError):
        WriteCmd(lba=-1, nlb=1)
    with pytest.raises(ValueError):
        ReadCmd(lba=0, nlb=0)
    with pytest.raises(ValueError):
        WriteCmd(lba=0, nlb=1, pid=-1)


def test_deallocate_drops_data_and_mapping():
    env, dev = make_device()
    page = dev.lba_size
    submit(env, dev, WriteCmd(lba=0, nlb=2, data=bytes([1]) * 2 * page))
    submit(env, dev, DeallocateCmd(lba=0, nlb=2))
    assert dev.peek(0, 2) == bytes(2 * page)
    assert dev.ftl.mapped_ppn(0) == -1
    assert dev.stats.deallocate_cmds == 1


def test_conventional_device_ignores_pid():
    env, dev = make_device(fdp=False)
    page = dev.lba_size
    # arbitrary PID on purpose: conventional devices must ignore it
    submit(env, dev, WriteCmd(lba=0, nlb=1, data=bytes(page), pid=5))  # slimlint: ignore[SLIM002]
    # single registered stream on conventional device
    assert dev.ftl.stream_ids == [0]


def test_fdp_device_routes_pid_to_stream():
    env, dev = make_device(fdp=True)
    page = dev.lba_size
    # arbitrary in-range PID: the test is the PID→stream routing itself
    submit(env, dev, WriteCmd(lba=0, nlb=1, data=bytes(page), pid=3))  # slimlint: ignore[SLIM002]
    ppn = dev.ftl.mapped_ppn(0)
    seg = dev.geometry.segment_of_page(ppn)
    assert dev.ftl.segment_stream(seg) == 3


def test_fdp_out_of_range_pid_falls_back_to_default():
    env, dev = make_device(fdp=True)
    page = dev.lba_size
    # deliberately out-of-range PID: the fallback is what's under test
    submit(env, dev, WriteCmd(lba=0, nlb=1, data=bytes(page), pid=99))  # slimlint: ignore[SLIM002]
    ppn = dev.ftl.mapped_ppn(0)
    seg = dev.geometry.segment_of_page(ppn)
    assert dev.ftl.segment_stream(seg) == 0


def test_fdp_supports_eight_pids_like_paper_device():
    env, dev = make_device(fdp=True)
    assert dev.num_pids == 8
    assert dev.ftl.stream_ids == list(range(8))


def test_write_latency_recorded():
    env, dev = make_device()
    submit(env, dev, WriteCmd(lba=0, nlb=1, data=bytes(dev.lba_size)))
    assert len(dev.write_latency) == 1
    assert dev.write_latency.mean() > 0


def test_multipage_write_uses_die_parallelism():
    env, dev = make_device()
    page = dev.lba_size
    t0 = env.now
    submit(env, dev, WriteCmd(lba=0, nlb=2, data=bytes(2 * page)))
    # 2 pages on 2 dies: duration ~one program, not two
    assert env.now - t0 == pytest.approx(2e-6)


def test_capacity_properties():
    env, dev = make_device()
    assert dev.capacity_bytes == dev.num_lbas * dev.lba_size
    assert dev.num_lbas < dev.geometry.total_pages  # overprovisioning
    assert dev.waf == 1.0


def test_unknown_command_type_rejected():
    env, dev = make_device()

    class Bogus:
        pass

    def proc():
        yield from dev.submit(Bogus())

    env.process(proc())
    with pytest.raises(TypeError):
        env.run()
