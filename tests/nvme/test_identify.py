"""Identify structure tests + engine capability validation."""


from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.nvme import NvmeDevice
from repro.nvme.identify import identify
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)
CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                gc_reserve_segments=2)


def make(fdp):
    env = Environment()
    g = FlashGeometry(channels=2, dies_per_channel=2, blocks_per_die=24,
                      pages_per_block=16)
    return NvmeDevice(env, g, FAST, CFG, fdp=fdp)


def test_identify_conventional():
    dev = make(fdp=False)
    ident = identify(dev)
    assert not ident.fdp.enabled
    assert ident.fdp.num_handles == 0
    assert "FDP" not in ident.controller.model
    assert ident.namespace.num_lbas == dev.num_lbas
    assert ident.namespace.capacity_bytes == dev.capacity_bytes


def test_identify_fdp():
    dev = make(fdp=True)
    ident = identify(dev)
    assert ident.fdp.enabled
    assert ident.fdp.num_handles == 8
    assert ident.fdp.ru_bytes == dev.geometry.segment_bytes
    assert ident.controller.model.endswith("-FDP")


def test_identity_reflects_geometry():
    dev = make(fdp=True)
    ident = identify(dev)
    assert ident.namespace.lba_size == 4096
    assert ident.fdp.ru_bytes == (
        dev.geometry.pages_per_segment * dev.geometry.page_size)


def test_placement_policy_fits_device_handles():
    """The engine's PID assignment must fit the advertised handles."""
    from repro.core import PlacementPolicy

    dev = make(fdp=True)
    ident = identify(dev)
    policy = PlacementPolicy()
    assert policy.max_pid < ident.fdp.num_handles
