"""LBA partitions: rebasing, bounds enforcement, even carving."""

import pytest

from repro.nvme import LbaPartition, ReadCmd, WriteCmd, partition_evenly

from tests.nvme.test_device import make_device, submit


def submit_part(env, part, cmd):
    out = []

    def proc():
        r = yield from part.submit(cmd)
        out.append(r)

    p = env.process(proc())
    env.run(until=p)
    return out[0]


def test_partition_evenly_tiles_namespace():
    env, dev = make_device()
    parts = partition_evenly(dev, 4)
    assert len(parts) == 4
    assert [p.name for p in parts] == ["shard0", "shard1", "shard2", "shard3"]
    assert all(p.num_lbas == dev.num_lbas // 4 for p in parts)
    for a, b in zip(parts, parts[1:]):
        assert a.base + a.num_lbas == b.base


def test_rebase_and_isolation():
    env, dev = make_device()
    p0, p1 = partition_evenly(dev, 2)
    page = dev.lba_size
    payload = b"\xAB" * page
    submit_part(env, p1, WriteCmd(lba=3, nlb=1, data=payload))
    # the write landed at the device-global offset...
    assert dev.peek(p1.base + 3) == payload
    # ...is readable back through the partition at its local LBA...
    assert submit_part(env, p1, ReadCmd(lba=3, nlb=1)) == payload
    assert p1.peek(3) == payload
    # ...and is invisible at partition 0's local LBA 3
    assert p0.peek(3) != payload
    assert p1.written_lbas() == 1
    assert p0.written_lbas() == 0


def test_out_of_range_extents_rejected():
    env, dev = make_device()
    part = partition_evenly(dev, 2)[0]
    with pytest.raises(ValueError, match="outside partition"):
        submit_part(env, part, WriteCmd(lba=part.num_lbas, nlb=1,
                                        data=b"\x00" * dev.lba_size))
    with pytest.raises(ValueError, match="outside partition"):
        part.peek(part.num_lbas)


def test_partition_constructor_validation():
    env, dev = make_device()
    with pytest.raises(ValueError):
        LbaPartition(dev, 0, 0)
    with pytest.raises(ValueError):
        LbaPartition(dev, dev.num_lbas - 4, 8)


def test_partition_evenly_validation():
    env, dev = make_device()
    with pytest.raises(ValueError):
        partition_evenly(dev, 0)
    with pytest.raises(ValueError):
        partition_evenly(dev, dev.num_lbas)  # below minimum layout


def test_partition_passthrough_surface():
    env, dev = make_device(fdp=True)
    part = partition_evenly(dev, 2)[1]
    assert part.lba_size == dev.lba_size
    assert part.fdp is True
    assert part.num_pids == dev.num_pids
    assert part.ftl is dev.ftl
    assert part.capacity_bytes == part.num_lbas * dev.lba_size
