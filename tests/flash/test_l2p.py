"""Array-backed L2P vs the dict reference, op-for-op.

A randomized seeded trace of map/unmap/lookup operations replays
through :class:`L2PMap` (preallocated array + memoryview + numpy
views) and :class:`DictL2P`; every operation's return value and every
intermediate state must agree, so any divergence in the fast path
surfaces with the offending op index attached.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.l2p import DictL2P, IntVec, L2PMap

N_LPNS = 256
N_PPNS = 320


def test_intvec_dual_personality_shares_one_buffer():
    v = IntVec(8, fill=-1, typecode="q")
    assert list(v.np) == [-1] * 8
    v.mv[3] = 42
    assert v.np[3] == 42          # scalar write visible to the view
    v.np[5:] = 7
    assert v.mv[5] == v.mv[7] == 7  # vector write visible to scalars
    assert len(v) == 8


@pytest.mark.parametrize("seed", [0, 1, 2026])
def test_l2p_matches_dict_reference_op_for_op(seed):
    rng = np.random.default_rng(seed)
    arr = L2PMap(N_LPNS, N_PPNS)
    ref = DictL2P(N_LPNS, N_PPNS)
    free_ppns = list(range(N_PPNS))

    for i in range(4_000):
        op = rng.integers(0, 4)
        lpn = int(rng.integers(0, N_LPNS))
        if op == 0 and free_ppns:  # map to a fresh ppn
            ppn = free_ppns.pop(int(rng.integers(0, len(free_ppns))))
            old_a = arr.map(lpn, ppn)
            old_d = ref.map(lpn, ppn)
            assert old_a == old_d, f"op {i}: map returned {old_a}!={old_d}"
            if old_a >= 0:
                free_ppns.append(old_a)
        elif op == 1:  # unmap (TRIM)
            freed_a = arr.unmap(lpn)
            freed_d = ref.unmap(lpn)
            assert freed_a == freed_d, f"op {i}: unmap {freed_a}!={freed_d}"
            if freed_a >= 0:
                free_ppns.append(freed_a)
        elif op == 2:  # forward lookup
            assert arr.lookup(lpn) == ref.lookup(lpn), f"op {i}"
        else:  # reverse lookup
            ppn = int(rng.integers(0, N_PPNS))
            assert arr.rlookup(ppn) == ref.rlookup(ppn), f"op {i}"

    assert arr.to_dict() == ref.to_dict()
    # reverse map is the exact inverse at the end of the trace
    for lpn, ppn in arr.to_dict().items():
        assert arr.rlookup(ppn) == lpn


def test_l2p_vector_views_see_scalar_ops():
    m = L2PMap(16, 16)
    m.map(3, 7)
    m.map(4, 8)
    assert list(np.flatnonzero(m.fwd_np >= 0)) == [3, 4]
    assert m.rev_np[7] == 3 and m.rev_np[8] == 4
    # vectorized TRIM through the numpy personality (the FTL's
    # deallocate path) stays visible to the scalar personality
    m.fwd_np[3:5] = -1
    m.rev_np[7:9] = -1
    assert m.lookup(3) == -1 and m.rlookup(8) == -1


def test_ftl_invariants_hold_after_random_workload():
    """End-to-end: drive the real FTL on the array-backed state with a
    seeded random mix of writes, bursts, and TRIMs, then let its own
    cross-checking invariant pass (l2p/p2l inversality, per-segment
    valid counts) validate the bookkeeping."""
    from repro.flash import FlashGeometry, FlashTranslationLayer
    from repro.sim import Environment

    env = Environment()
    geo = FlashGeometry.scaled(mb=8, channels=2, dies_per_channel=2,
                               pages_per_block=8)
    ftl = FlashTranslationLayer(env, geo)
    ftl.register_stream(0)
    ftl.register_stream(1)
    rng = np.random.default_rng(7)
    n = ftl.num_lpns

    def driver():
        for _ in range(300):
            op = rng.integers(0, 3)
            if op == 0:
                yield from ftl.write(int(rng.integers(0, n)),
                                     int(rng.integers(0, 2)))
            elif op == 1:
                start = int(rng.integers(0, n - 16))
                yield from ftl.write_burst(start, 16,
                                           int(rng.integers(0, 2)))
            else:
                start = int(rng.integers(0, n - 8))
                ftl.deallocate(start, 8)
            ftl.check_invariants()

    env.run(until=env.process(driver()))
    ftl.check_invariants()
