"""Geometry and timing parameter tests."""

import pytest

from repro.flash import FlashGeometry, NandTiming


def test_default_geometry_matches_paper_structure():
    g = FlashGeometry()
    assert g.channels == 8
    assert g.dies_per_channel == 8
    assert g.total_dies == 64
    assert g.page_size == 4096


def test_default_timing_matches_femu_defaults():
    t = NandTiming()
    assert t.page_read == pytest.approx(40e-6)
    assert t.page_program == pytest.approx(200e-6)
    assert t.block_erase == pytest.approx(2e-3)


def test_derived_sizes_consistent():
    g = FlashGeometry(channels=2, dies_per_channel=2, blocks_per_die=8,
                      pages_per_block=16, page_size=4096)
    assert g.total_dies == 4
    assert g.segments == 8
    assert g.pages_per_segment == 64
    assert g.segment_bytes == 64 * 4096
    assert g.total_pages == 8 * 64
    assert g.total_bytes == g.total_pages * 4096


def test_page_striping_round_robin_across_dies():
    g = FlashGeometry(channels=2, dies_per_channel=2, blocks_per_die=4,
                      pages_per_block=8)
    dies = [g.die_of_page(p) for p in range(8)]
    assert dies == [0, 1, 2, 3, 0, 1, 2, 3]


def test_channel_of_die():
    g = FlashGeometry(channels=2, dies_per_channel=3, blocks_per_die=4,
                      pages_per_block=8)
    assert g.channel_of_die(0) == 0
    assert g.channel_of_die(2) == 0
    assert g.channel_of_die(3) == 1


def test_segment_addressing_roundtrip():
    g = FlashGeometry(channels=2, dies_per_channel=2, blocks_per_die=8,
                      pages_per_block=16)
    for seg in range(g.segments):
        base = g.first_page_of_segment(seg)
        assert g.segment_of_page(base) == seg
        assert g.page_offset_in_segment(base) == 0
        last = base + g.pages_per_segment - 1
        assert g.segment_of_page(last) == seg


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        FlashGeometry(channels=0)
    with pytest.raises(ValueError):
        FlashGeometry(page_size=0)


def test_negative_timing_rejected():
    with pytest.raises(ValueError):
        NandTiming(page_read=-1)


def test_scaled_geometry_size_in_range():
    g = FlashGeometry.scaled(mb=64)
    assert g.total_bytes >= 48 * 1024 * 1024
    assert g.total_bytes <= 96 * 1024 * 1024


def test_scaled_geometry_minimum_segments():
    g = FlashGeometry.scaled(mb=1)
    assert g.segments >= 4
