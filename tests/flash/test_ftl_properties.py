"""Property-based FTL tests: invariants under random write/trim traces."""

from hypothesis import given, settings, strategies as st

from repro.flash import FlashGeometry, FlashTranslationLayer, FtlConfig, NandTiming
from repro.sim import Environment

FAST = NandTiming(page_read=1e-7, page_program=2e-7, block_erase=1e-6,
                  channel_transfer=0.0)


def build(streams):
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=10,
                      pages_per_block=4)
    cfg = FtlConfig(op_ratio=0.3, gc_trigger_segments=3, gc_stop_segments=4,
                    gc_reserve_segments=2)
    ftl = FlashTranslationLayer(env, g, FAST, cfg)
    for s in streams:
        ftl.register_stream(s)
    return env, ftl


@st.composite
def trace(draw):
    """A random sequence of (op, lpn, stream) actions."""
    n = draw(st.integers(min_value=1, max_value=300))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["write", "write", "write", "trim"]))
        lpn = draw(st.integers(min_value=0, max_value=40))
        stream = draw(st.integers(min_value=0, max_value=1))
        ops.append((kind, lpn, stream))
    return ops


@given(trace())
@settings(max_examples=40, deadline=None)
def test_invariants_hold_under_random_traces(ops):
    env, ftl = build(streams=(0, 1))
    max_lpn = min(41, ftl.num_lpns)

    def driver():
        for kind, lpn, stream in ops:
            lpn = lpn % max_lpn
            if kind == "write":
                yield from ftl.write(lpn, stream)
            else:
                ftl.deallocate(lpn, 1)

    p = env.process(driver())
    env.run(until=p)
    ftl.check_invariants()
    assert ftl.stats.waf >= 1.0


@given(trace())
@settings(max_examples=25, deadline=None)
def test_latest_write_wins_mapping(ops):
    """After any trace, each lpn's mapping reflects its last operation."""
    env, ftl = build(streams=(0, 1))
    max_lpn = min(41, ftl.num_lpns)
    last: dict[int, str] = {}

    def driver():
        for kind, lpn, stream in ops:
            lpn = lpn % max_lpn
            if kind == "write":
                yield from ftl.write(lpn, stream)
                last[lpn] = "write"
            else:
                ftl.deallocate(lpn, 1)
                last[lpn] = "trim"

    p = env.process(driver())
    env.run(until=p)
    for lpn, op in last.items():
        if op == "write":
            assert ftl.mapped_ppn(lpn) >= 0
        else:
            assert ftl.mapped_ppn(lpn) == -1


@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=400))
@settings(max_examples=25, deadline=None)
def test_waf_one_when_everything_is_one_lifetime_class(lpns):
    """A single hot working set in one stream: GC victims are always
    fully-invalid, so WAF must stay exactly 1.0 (the FDP claim)."""
    env, ftl = build(streams=(0,))

    def driver():
        for lpn in lpns:
            yield from ftl.write(lpn % 16, 0)

    p = env.process(driver())
    env.run(until=p)
    # all data is uniformly hot; greedy GC picks 0-valid segments whenever
    # the working set (16 pages = 2 segments) is much smaller than capacity
    assert ftl.stats.waf == 1.0
    ftl.check_invariants()
