"""NAND array timing tests: die occupancy and parallelism."""

import pytest

from repro.flash import FlashGeometry, NandArray, NandTiming
from repro.sim import Environment


def small_geom():
    return FlashGeometry(channels=2, dies_per_channel=2, blocks_per_die=4,
                         pages_per_block=8)


def test_single_program_latency():
    env = Environment()
    nand = NandArray(env, small_geom(), NandTiming(channel_transfer=0.0))

    def proc():
        yield from nand.program_page(0)

    p = env.process(proc())
    env.run(until=p)
    assert env.now == pytest.approx(200e-6)
    assert nand.counters["page_programs"] == 1


def test_single_read_latency():
    env = Environment()
    nand = NandArray(env, small_geom(), NandTiming(channel_transfer=0.0))

    def proc():
        yield from nand.read_page(0)

    p = env.process(proc())
    env.run(until=p)
    assert env.now == pytest.approx(40e-6)


def test_same_die_serializes():
    env = Environment()
    g = small_geom()
    nand = NandArray(env, g, NandTiming(channel_transfer=0.0))
    # pages 0 and 4 are on the same die (4 dies, round robin)
    assert g.die_of_page(0) == g.die_of_page(4)

    def proc(ppn):
        yield from nand.program_page(ppn)

    env.process(proc(0))
    env.process(proc(4))
    env.run()
    assert env.now == pytest.approx(400e-6)


def test_different_dies_parallel():
    env = Environment()
    g = small_geom()
    nand = NandArray(env, g, NandTiming(channel_transfer=0.0))

    def proc(ppn):
        yield from nand.program_page(ppn)

    for ppn in range(4):  # four pages on four distinct dies
        env.process(proc(ppn))
    env.run()
    assert env.now == pytest.approx(200e-6)


def test_channel_contention_adds_transfer_time():
    env = Environment()
    g = small_geom()
    t = NandTiming(channel_transfer=10e-6)
    nand = NandArray(env, g, t)
    # dies 0 and 1 share channel 0
    assert g.channel_of_die(0) == g.channel_of_die(1)

    def proc(ppn):
        yield from nand.program_page(ppn)

    env.process(proc(0))  # die 0
    env.process(proc(1))  # die 1, same channel
    env.run()
    # transfers serialize (10+10), programs overlap after each transfer
    assert env.now == pytest.approx(10e-6 + 10e-6 + 200e-6)


def test_erase_segment_parallel_across_dies():
    env = Environment()
    g = small_geom()
    nand = NandArray(env, g, NandTiming(channel_transfer=0.0))

    def proc():
        yield from nand.erase_segment(0)

    p = env.process(proc())
    env.run(until=p)
    assert env.now == pytest.approx(2e-3)  # one erase latency, all dies parallel
    assert nand.counters["segment_erases"] == 1
    assert nand.counters["block_erases"] == g.total_dies


def test_utilization_accounting():
    env = Environment()
    g = small_geom()
    nand = NandArray(env, g, NandTiming(channel_transfer=0.0))

    def proc():
        yield from nand.program_page(0)

    p = env.process(proc())
    env.run(until=p)
    # one die busy 200us out of 4 dies * 200us
    assert nand.utilization() == pytest.approx(0.25)


def test_utilization_zero_at_start():
    env = Environment()
    nand = NandArray(env, small_geom())
    assert nand.utilization() == 0.0
