"""FTL tests: mapping, GC, WAF, stream separation."""

import pytest

from repro.flash import FlashGeometry, FlashTranslationLayer, FtlConfig, NandTiming
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)


def make_ftl(segments=16, pages_per_block=8, dies=2, op=0.25, streams=(0,),
             config=None):
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=dies, blocks_per_die=segments,
                      pages_per_block=pages_per_block)
    cfg = config or FtlConfig(op_ratio=op, gc_trigger_segments=3,
                              gc_stop_segments=4, gc_reserve_segments=2)
    ftl = FlashTranslationLayer(env, g, FAST, cfg)
    for s in streams:
        ftl.register_stream(s)
    return env, ftl


def run_writes(env, ftl, lpns, stream=0):
    def writer():
        for lpn in lpns:
            yield from ftl.write(lpn, stream)

    p = env.process(writer())
    env.run(until=p)


def test_write_then_mapped():
    env, ftl = make_ftl()
    run_writes(env, ftl, [0, 1, 2])
    assert ftl.mapped_ppn(0) >= 0
    assert ftl.mapped_ppn(1) == ftl.mapped_ppn(0) + 1  # sequential placement
    ftl.check_invariants()


def test_overwrite_invalidates_old_page():
    env, ftl = make_ftl()
    run_writes(env, ftl, [5, 5, 5])
    seg0 = 0
    # two stale versions + one live in the open segment
    assert ftl.segment_valid_count(seg0) == 1
    ftl.check_invariants()


def test_unknown_stream_rejected():
    env, ftl = make_ftl()

    def writer():
        yield from ftl.write(0, 99)

    env.process(writer())
    with pytest.raises(ValueError):
        env.run()


def test_lpn_bounds_checked():
    env, ftl = make_ftl()
    with pytest.raises(ValueError):
        ftl.mapped_ppn(ftl.num_lpns)
    with pytest.raises(ValueError):
        ftl.deallocate(ftl.num_lpns - 1, 2)


def test_deallocate_clears_mapping():
    env, ftl = make_ftl()
    run_writes(env, ftl, [0, 1, 2, 3])
    ftl.deallocate(0, 4)
    for lpn in range(4):
        assert ftl.mapped_ppn(lpn) == -1
    assert ftl.segment_valid_count(0) == 0
    ftl.check_invariants()


def test_deallocate_unmapped_is_noop():
    env, ftl = make_ftl()
    ftl.deallocate(0, 8)
    ftl.check_invariants()


def test_read_unmapped_returns_false():
    env, ftl = make_ftl()

    results = []

    def reader():
        ok = yield from ftl.read(3)
        results.append(ok)

    p = env.process(reader())
    env.run(until=p)
    assert results == [False]


def test_read_mapped_returns_true_and_costs_time():
    env, ftl = make_ftl()
    run_writes(env, ftl, [3])
    t0 = env.now
    results = []

    def reader():
        ok = yield from ftl.read(3)
        results.append(ok)

    p = env.process(reader())
    env.run(until=p)
    assert results == [True]
    assert env.now > t0


def test_gc_reclaims_overwritten_segments():
    env, ftl = make_ftl(segments=8, pages_per_block=4, dies=2, op=0.25)
    pages_per_seg = ftl.geometry.pages_per_segment
    # hammer a small working set so most pages become stale
    lpns = list(range(pages_per_seg)) * 12
    run_writes(env, ftl, lpns)
    assert ftl.stats.segments_erased > 0
    assert ftl.free_segments >= ftl.config.gc_reserve_segments
    ftl.check_invariants()


def test_waf_accounting_exceeds_one_with_mixed_lifetimes():
    """Cold data + hot overwrites in ONE stream -> GC must copy cold pages."""
    env, ftl = make_ftl(segments=10, pages_per_block=4, dies=2, op=0.25)
    pages_per_seg = ftl.geometry.pages_per_segment
    cold = list(range(2 * pages_per_seg))                     # written once
    hot = list(range(2 * pages_per_seg, 2 * pages_per_seg + 4)) * (
        6 * pages_per_seg
    )  # overwritten many times, interleaving segments with cold
    trace = []
    for i, c in enumerate(cold):
        trace.append(c)
        trace.extend(hot[i * 3 : i * 3 + 3])
    trace.extend(hot[len(cold) * 3 :])
    run_writes(env, ftl, trace)
    assert ftl.stats.gc_pages_copied > 0
    assert ftl.stats.waf > 1.0
    ftl.check_invariants()


def test_stream_separation_keeps_waf_at_one():
    """Same trace as mixed test but cold/hot in separate streams (FDP)."""
    env, ftl = make_ftl(segments=10, pages_per_block=4, dies=2, op=0.25,
                        streams=(0, 1))
    pages_per_seg = ftl.geometry.pages_per_segment
    n_cold = 2 * pages_per_seg
    hot_lpns = [n_cold + (i % 4) for i in range(6 * pages_per_seg)]

    def writer():
        hot_i = 0
        for c in range(n_cold):
            yield from ftl.write(c, 0)          # cold stream
            for _ in range(3):
                if hot_i < len(hot_lpns):
                    yield from ftl.write(hot_lpns[hot_i], 1)  # hot stream
                    hot_i += 1
        while hot_i < len(hot_lpns):
            yield from ftl.write(hot_lpns[hot_i], 1)
            hot_i += 1

    p = env.process(writer())
    env.run(until=p)
    # GC only ever elects fully-invalid (hot) segments: no copies
    assert ftl.stats.waf == pytest.approx(1.0)
    ftl.check_invariants()


def test_streams_never_share_segments():
    env, ftl = make_ftl(streams=(0, 1, 2))
    pages = ftl.geometry.pages_per_segment

    def writer():
        for i in range(pages // 2):
            yield from ftl.write(i, 0)
            yield from ftl.write(pages + i, 1)
            yield from ftl.write(2 * pages + i, 2)

    p = env.process(writer())
    env.run(until=p)
    owners = {}
    for lpn in range(3 * pages):
        ppn = ftl.mapped_ppn(lpn)
        if ppn < 0:
            continue
        seg = ftl.geometry.segment_of_page(ppn)
        stream = lpn // pages
        owners.setdefault(seg, stream)
        assert owners[seg] == stream, "segment shared between streams"
    ftl.check_invariants()


def test_duplicate_stream_registration_rejected():
    env, ftl = make_ftl()
    with pytest.raises(ValueError):
        ftl.register_stream(0)


def test_host_stall_time_under_pressure():
    env, ftl = make_ftl(segments=8, pages_per_block=4, dies=2, op=0.25)
    pages_per_seg = ftl.geometry.pages_per_segment
    lpns = list(range(pages_per_seg)) * 16
    run_writes(env, ftl, lpns)
    # with only 8 segments the writer must have waited for GC at least once
    assert ftl.counters["alloc_stalls"] > 0
    assert ftl.stats.host_stall_time > 0


def test_erase_counts_tracked():
    env, ftl = make_ftl(segments=8, pages_per_block=4, dies=2, op=0.25)
    pages_per_seg = ftl.geometry.pages_per_segment
    run_writes(env, ftl, list(range(pages_per_seg)) * 12)
    total_erases = sum(ftl.erase_count(s) for s in range(ftl.geometry.segments))
    assert total_erases == ftl.stats.segments_erased


def test_config_validation():
    with pytest.raises(ValueError):
        FtlConfig(op_ratio=0.9)
    with pytest.raises(ValueError):
        FtlConfig(gc_trigger_segments=1, gc_reserve_segments=2)
    with pytest.raises(ValueError):
        FtlConfig(gc_stop_segments=1, gc_trigger_segments=4)
    with pytest.raises(ValueError):
        FtlConfig(gc_copy_window=0)


def test_geometry_too_small_for_watermarks_rejected():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=1, blocks_per_die=3,
                      pages_per_block=4)
    with pytest.raises(ValueError):
        FlashTranslationLayer(env, g, FAST, FtlConfig(
            op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
            gc_reserve_segments=2))
