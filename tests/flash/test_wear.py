"""Wear/endurance accounting tests."""

import pytest

from repro.flash import FlashGeometry, FlashTranslationLayer, FtlConfig, NandTiming
from repro.flash.wear import wear_report
from repro.sim import Environment

FAST = NandTiming(page_read=1e-6, page_program=2e-6, block_erase=10e-6,
                  channel_transfer=0.0)


def churned_ftl(writes=600):
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=8,
                      pages_per_block=4)
    cfg = FtlConfig(op_ratio=0.25, gc_trigger_segments=3, gc_stop_segments=4,
                    gc_reserve_segments=2)
    ftl = FlashTranslationLayer(env, g, FAST, cfg)
    ftl.register_stream(0)

    def writer():
        for i in range(writes):
            yield from ftl.write(i % 8, 0)

    env.run(until=env.process(writer()))
    return ftl


def test_report_consistency():
    ftl = churned_ftl()
    rep = wear_report(ftl)
    assert rep.total_erases == ftl.stats.segments_erased
    assert rep.max_erases >= rep.mean_erases_per_segment >= rep.min_erases
    assert rep.wear_skew >= 1.0
    assert rep.waf == ftl.stats.waf
    assert rep.host_bytes_written == 600 * 4096


def test_fresh_device_report():
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=8,
                      pages_per_block=4)
    ftl = FlashTranslationLayer(env, g, FAST, FtlConfig(
        op_ratio=0.25, gc_trigger_segments=3, gc_stop_segments=4,
        gc_reserve_segments=2))
    rep = wear_report(ftl)
    assert rep.total_erases == 0
    assert rep.wear_skew == 1.0
    assert rep.remaining_host_bytes > 0


def test_lifetime_multiplier():
    ftl = churned_ftl()
    good = wear_report(ftl)
    import dataclasses

    bad = dataclasses.replace(good, write_cost=2.0, waf=2.0)
    assert good.lifetime_multiplier(bad) == pytest.approx(
        2.0 / good.write_cost)


def test_remaining_bytes_shrinks_with_wear():
    small = wear_report(churned_ftl(writes=200))
    large = wear_report(churned_ftl(writes=1200))
    assert large.remaining_host_bytes <= small.remaining_host_bytes


def test_endurance_validation():
    ftl = churned_ftl(writes=10)
    with pytest.raises(ValueError):
        wear_report(ftl, endurance_cycles=0)
