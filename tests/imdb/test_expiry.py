"""TTL expiration tests: lazy, active, persistence propagation."""

import pytest

from repro import LoggingPolicy, SystemConfig, build_slimio
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp
from repro.imdb.expiry import ExpiryConfig, ExpiryTable
from repro.persist import SnapshotKind
from repro.sim import Environment

CFG = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=48,
                           pages_per_block=16),
    nand=NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                    channel_transfer=0.0),
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    policy=LoggingPolicy.ALWAYS,
    wal_flush_interval=0.01,
)


def system_():
    return build_slimio(config=CFG)


def run(env, gen):
    return env.run(until=env.process(gen))


# ------------------------------------------------------------------ table unit
def test_table_ttl_bookkeeping():
    env = Environment()
    table = ExpiryTable(env)
    table.set_ttl(b"k", 5.0)
    assert table.ttl(b"k") == pytest.approx(5.0)
    assert not table.is_expired(b"k")
    env._now = 6.0
    assert table.is_expired(b"k")
    assert table.ttl(b"k") == 0.0


def test_table_persist_and_note_deleted():
    env = Environment()
    table = ExpiryTable(env)
    table.set_ttl(b"k", 1.0)
    assert table.persist(b"k")
    assert not table.persist(b"k")
    assert table.ttl(b"k") is None
    table.set_ttl(b"k", 1.0)
    table.note_deleted(b"k")
    assert len(table) == 0


def test_table_due_keys_skips_stale_entries():
    env = Environment()
    table = ExpiryTable(env)
    table.set_ttl(b"a", 1.0)
    table.set_ttl(b"b", 1.0)
    table.set_ttl(b"a", 10.0)  # re-armed: heap holds a stale entry
    env._now = 2.0
    due = table.due_keys(10)
    assert due == [b"b"]
    assert table.ttl(b"a") > 0


def test_table_validation():
    env = Environment()
    table = ExpiryTable(env)
    with pytest.raises(ValueError):
        table.set_ttl(b"k", 0)
    with pytest.raises(ValueError):
        ExpiryConfig(cycle_interval=0)


def test_clientop_ttl_validation():
    with pytest.raises(ValueError):
        ClientOp("SET", b"k", b"v", ttl=0)
    with pytest.raises(ValueError):
        ClientOp("GET", b"k", ttl=1.0)


# ------------------------------------------------------------------ server
def test_lazy_expiration_on_get():
    system = system_()
    env = system.env

    def proc():
        yield from system.server.execute(ClientOp("SET", b"k", b"v", ttl=0.01))
        v1 = yield from system.server.execute(ClientOp("GET", b"k"))
        yield env.timeout(0.02)
        v2 = yield from system.server.execute(ClientOp("GET", b"k"))
        return v1, v2

    v1, v2 = run(env, proc())
    assert v1 == b"v"
    assert v2 is None
    assert b"k" not in system.server.store
    system.stop()


def test_plain_set_clears_ttl():
    system = system_()
    env = system.env

    def proc():
        yield from system.server.execute(ClientOp("SET", b"k", b"v", ttl=0.01))
        yield from system.server.execute(ClientOp("SET", b"k", b"v2"))
        yield env.timeout(0.05)
        v = yield from system.server.execute(ClientOp("GET", b"k"))
        return v

    assert run(env, proc()) == b"v2"
    system.stop()


def test_active_cycle_evicts_without_access():
    system = system_()
    env = system.env
    system.server.start_expiry_cycle(
        ExpiryConfig(cycle_interval=0.005, max_evictions_per_cycle=10))

    def proc():
        for i in range(8):
            yield from system.server.execute(
                ClientOp("SET", b"e%d" % i, b"v", ttl=0.01))
        yield from system.server.execute(ClientOp("SET", b"stay", b"v"))
        yield env.timeout(0.05)

    run(env, proc())
    assert len(system.server.store) == 1
    assert system.server.store.get(b"stay") == b"v"
    assert system.server.expiry.counters["active_evictions"] == 8
    system.stop()


def test_expiration_propagates_del_to_wal():
    """Recovery must not resurrect expired keys (DEL is logged)."""
    system = system_()
    env = system.env
    system.server.start_expiry_cycle(ExpiryConfig(cycle_interval=0.005))

    def proc():
        yield from system.server.execute(ClientOp("SET", b"gone", b"v", ttl=0.01))
        yield from system.server.execute(ClientOp("SET", b"kept", b"v"))
        yield env.timeout(0.05)

    run(env, proc())
    system.crash()
    result = run(env, system.recover())
    assert b"gone" not in result.data
    assert result.data.get(b"kept") == b"v"
    system.stop()


def test_snapshot_omits_expired_keys():
    system = system_()
    env = system.env

    def proc():
        yield from system.server.execute(ClientOp("SET", b"dead", b"v", ttl=0.001))
        yield from system.server.execute(ClientOp("SET", b"live", b"v"))
        yield env.timeout(0.01)  # dead expires, but nothing touches it
        p = system.server.start_snapshot(SnapshotKind.ON_DEMAND)
        stats = yield p
        return stats

    stats = run(env, proc())
    assert stats.entries == 1
    system.stop()
