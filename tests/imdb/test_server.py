"""Server tests over the baseline file backends."""

import pytest

from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp, KVStore, Server, ServerConfig
from repro.kernel import BlockLayer, CpuAccount, F2fs, KernelCosts, PageCache
from repro.nvme import NvmeDevice
from repro.persist import LoggingPolicy, SnapshotKind, WalManager, recover_store
from repro.persist.file_backends import (
    FileAppendSink,
    FileSnapshotSink,
    FileSnapshotSource,
)
from repro.sim import Environment

FAST_NAND = NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                       channel_transfer=0.0)
FTL_CFG = FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                    gc_reserve_segments=2)


def build_server(policy=LoggingPolicy.PERIODICAL, trigger=None, segments=64):
    env = Environment()
    g = FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=segments,
                      pages_per_block=16)
    dev = NvmeDevice(env, g, FAST_NAND, FTL_CFG)
    costs = KernelCosts()
    blk = BlockLayer(env, dev, costs)
    cache = PageCache(env, blk, costs, dirty_limit_bytes=256 * 4096)
    fs = F2fs(env, blk, cache, extent_pages=16)
    acct = CpuAccount(env, "redis-main")
    wal = WalManager(env, FileAppendSink(fs), acct, policy=policy,
                     flush_interval=0.05)
    cfg = ServerConfig(wal_snapshot_trigger_bytes=trigger,
                       snapshot_chunk_entries=16)
    server = Server(env, KVStore(), wal,
                    lambda kind: FileSnapshotSink(fs, f"{kind.value}.rdb"),
                    cfg)
    return env, server, fs


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def test_set_then_get():
    env, server, fs = build_server()

    def proc():
        yield from server.execute(ClientOp("SET", b"k", b"v"))
        v = yield from server.execute(ClientOp("GET", b"k"))
        return v

    assert drive(env, proc()) == b"v"
    assert server.metrics.set_latency.mean() > 0
    assert server.metrics.get_latency.mean() > 0
    server.stop()


def test_del_returns_existence():
    env, server, fs = build_server()

    def proc():
        yield from server.execute(ClientOp("SET", b"k", b"v"))
        r1 = yield from server.execute(ClientOp("DEL", b"k"))
        r2 = yield from server.execute(ClientOp("DEL", b"k"))
        return r1, r2

    assert drive(env, proc()) == (True, False)
    server.stop()


def test_invalid_op_rejected():
    with pytest.raises(ValueError):
        ClientOp("FLUSHALL", b"")


def test_single_cpu_serializes_clients():
    env, server, fs = build_server()
    done = []

    def client(i):
        yield from server.execute(ClientOp("SET", b"k%d" % i, b"v"))
        done.append(env.now)

    for i in range(5):
        env.process(client(i))
    env.run(until=env.process(wait_all(env, 5, done)))
    assert len(set(done)) == 5  # strictly ordered completions
    server.stop()


def wait_all(env, n, done):
    while len(done) < n:
        yield env.timeout(1e-3)


def test_on_demand_snapshot_roundtrip():
    env, server, fs = build_server()

    def proc():
        for i in range(40):
            yield from server.execute(ClientOp("SET", b"key%d" % i, b"x" * 200))
        p = server.start_snapshot(SnapshotKind.ON_DEMAND)
        stats = yield p
        return stats

    stats = drive(env, proc())
    assert stats.ok
    assert stats.entries == 40
    assert len(server.metrics.snapshots) == 1
    assert len(server.metrics.snapshot_windows) == 1
    # recover from the published snapshot and compare
    acct = CpuAccount(env, "rec")
    source = FileSnapshotSource(fs, "on-demand-snapshot.rdb")
    result = drive(env, recover_store(env, source, None, acct))
    assert result.data == server.store.as_dict()
    server.stop()


def test_snapshot_captures_fork_point_not_later_writes():
    env, server, fs = build_server()

    def proc():
        yield from server.execute(ClientOp("SET", b"k", b"before"))
        p = server.start_snapshot(SnapshotKind.ON_DEMAND)
        yield from server.execute(ClientOp("SET", b"k", b"after"))
        stats = yield p
        return stats

    drive(env, proc())
    acct = CpuAccount(env, "rec")
    source = FileSnapshotSource(fs, "on-demand-snapshot.rdb")
    result = drive(env, recover_store(env, source, None, acct))
    assert result.data == {b"k": b"before"}
    assert server.store.get(b"k") == b"after"
    server.stop()


def test_cow_copies_during_snapshot_overwrites():
    env, server, fs = build_server()

    def proc():
        for i in range(30):
            yield from server.execute(ClientOp("SET", b"key%d" % i, b"x" * 4000))
        p = server.start_snapshot(SnapshotKind.ON_DEMAND)
        for i in range(30):
            yield from server.execute(ClientOp("SET", b"key%d" % i, b"y" * 4000))
        yield p

    drive(env, proc())
    assert server.cow.copied_pages > 0
    assert server.metrics.memory.peak > server.store.used_bytes
    server.stop()


def test_only_one_snapshot_at_a_time():
    env, server, fs = build_server()

    def proc():
        yield from server.execute(ClientOp("SET", b"k", b"v"))
        p1 = server.start_snapshot(SnapshotKind.ON_DEMAND)
        p2 = server.start_snapshot(SnapshotKind.WAL_TRIGGERED)
        assert p2 is None
        yield p1

    drive(env, proc())
    assert len(server.metrics.snapshots) == 1
    server.stop()


def test_wal_snapshot_trigger_fires_and_rotates():
    env, server, fs = build_server(policy=LoggingPolicy.ALWAYS, trigger=4000)

    def proc():
        for i in range(60):
            yield from server.execute(ClientOp("SET", b"key%d" % (i % 10),
                                               b"z" * 200))
        # wait for any in-flight snapshot to finish
        while server.snapshot_in_progress:
            yield env.timeout(1e-3)

    drive(env, proc())
    kinds = [s.kind for s in server.metrics.snapshots]
    assert SnapshotKind.WAL_TRIGGERED in kinds
    assert server.wal.counters["rotations"] >= 1
    # WAL was rotated: its current generation is smaller than the trigger
    assert server.wal.size < 4000 * 2
    server.stop()


def test_phase_rps_split():
    env, server, fs = build_server()

    def proc():
        for i in range(50):
            yield from server.execute(ClientOp("SET", b"k%d" % i, b"v" * 500))
        p = server.start_snapshot(SnapshotKind.ON_DEMAND)
        while server.snapshot_in_progress:
            yield from server.execute(ClientOp("SET", b"k%d" % (env.now % 50),
                                               b"w" * 500))
        yield p

    drive(env, proc())
    rps = server.metrics.phase_rps()
    assert rps["wal_only"] > 0
    assert rps["wal_snapshot"] > 0
    assert rps["average"] > 0
    server.stop()


def test_server_without_wal_or_sink():
    env = Environment()
    server = Server(env, KVStore(), None, None)

    def proc():
        yield from server.execute(ClientOp("SET", b"k", b"v"))
        v = yield from server.execute(ClientOp("GET", b"k"))
        return v

    assert drive(env, proc()) == b"v"
    assert server.start_snapshot() is not None or True  # sink missing -> error path

    server.stop()


def test_snapshot_without_sink_raises():
    env = Environment()
    server = Server(env, KVStore(), None, None)

    def proc():
        yield from server.execute(ClientOp("SET", b"k", b"v"))
        p = server.start_snapshot()
        yield p

    env.process(proc())
    with pytest.raises(RuntimeError):
        env.run()


def test_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(set_cpu=-1)
    with pytest.raises(ValueError):
        ServerConfig(snapshot_chunk_entries=0)
