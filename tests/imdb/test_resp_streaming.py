"""Property-style streaming tests for the RESP2 codec.

The connection layer feeds the parser arbitrary fragments — a frame
can be split at *any* byte boundary, including inside a CRLF, inside a
bulk-length header, or between array items.  These tests take a corpus
of frames covering every type (plus the nasty shapes: binary payloads
containing CRLF, null bulk/array, nesting, inline commands, blank
lines) and push every encoded frame through the parser split at every
possible boundary, asserting the reassembled value round-trips.
"""

import pytest

from repro.imdb import ClientOp
from repro.imdb.resp import (
    ProtocolError,
    RespError,
    RespParser,
    decode,
    decode_command,
    encode,
    encode_command,
    op_from_command,
)

# every RESP2 type, with the edge shapes a real byte stream produces
CORPUS = [
    "OK",
    "",
    RespError("ERR unknown command"),
    RespError("BUSY server overloaded"),
    0,
    -1,
    12345678901234567890,
    b"",
    b"x",
    b"hello world",
    b"\r\n",                       # binary payload that *is* a CRLF
    b"a\r\nb\rc\nd",               # CRLF/CR/LF embedded in a bulk body
    b"\x00\xff" * 33,              # arbitrary binary, crosses len 10
    None,                          # null bulk
    [],
    [b"PING"],
    [b"SET", b"k", b"v"],
    [1, "two", b"three", None],
    [[b"a", 1], [], [None, [b"deep", RespError("e")]]],
    [b"lens", b"9", b"10", b"11"],  # numeric-looking bulk strings
]


def _pairwise_splits(data: bytes):
    """Yield (head, tail) for every split point, plus whole-buffer."""
    for cut in range(len(data) + 1):
        yield data[:cut], data[cut:]


@pytest.mark.parametrize("value", CORPUS, ids=repr)
def test_every_split_boundary_reassembles(value):
    data = encode(value)
    for head, tail in _pairwise_splits(data):
        p = RespParser()
        got = []
        for chunk in (head, tail):
            p.feed(chunk)
            while True:
                ok, v = p.parse()
                if not ok:
                    break
                got.append(v)
            if got and chunk is head:
                # a prefix may only complete if it is the whole frame
                assert head == data
        assert got == [value]
        assert p.pending_bytes == 0


@pytest.mark.parametrize("value", CORPUS, ids=repr)
def test_byte_at_a_time(value):
    data = encode(value)
    p = RespParser()
    completions = []
    for i in range(len(data)):
        p.feed(data[i:i + 1])
        ok, got = p.parse()
        if ok:
            completions.append((i, got))
    assert completions == [(len(data) - 1, value)]


@pytest.mark.parametrize("value", CORPUS, ids=repr)
def test_round_trip(value):
    assert decode(encode(value)) == value


def test_back_to_back_frames_split_everywhere():
    """Two frames in one stream: every split must produce exactly the
    two values, in order, with nothing left over."""
    pairs = [
        (CORPUS[i], CORPUS[(i * 7 + 3) % len(CORPUS)])
        for i in range(len(CORPUS))
    ]
    for a, b in pairs:
        data = encode(a) + encode(b)
        for head, tail in _pairwise_splits(data):
            p = RespParser()
            got = []
            for chunk in (head, tail):
                p.feed(chunk)
                while True:
                    ok, v = p.parse()
                    if not ok:
                        break
                    got.append(v)
            assert got == [a, b]
            assert p.pending_bytes == 0


# -- inline commands and blank-line tolerance ------------------------------

INLINE_CASES = [
    (b"PING\r\n", [b"PING"]),
    (b"P\r\n", [b"P"]),                       # single-char command
    (b"SET k v\r\n", [b"SET", b"k", b"v"]),
    (b"  GET   key  \r\n", [b"GET", b"key"]),  # extra whitespace
    (b"GET key\n", [b"GET", b"key"]),          # bare-LF line ending
]


@pytest.mark.parametrize("raw,words", INLINE_CASES, ids=lambda x: repr(x))
def test_inline_commands_parse(raw, words):
    p = RespParser()
    p.feed(raw)
    ok, got = p.parse()
    assert ok and got == words
    assert p.pending_bytes == 0


@pytest.mark.parametrize("prefix", [b"\r\n", b"\n", b"\r\n\r\n", b"   \r\n"],
                         ids=repr)
def test_blank_lines_before_frames_are_skipped(prefix):
    """Redis tolerates blank lines between inline commands; they must
    not be folded into the next frame's header."""
    for value in (CORPUS[16], b"payload", [b"PING"]):
        data = prefix + encode(value)
        for head, tail in _pairwise_splits(data):
            p = RespParser()
            got = []
            for chunk in (head, tail):
                p.feed(chunk)
                while True:
                    ok, v = p.parse()
                    if not ok:
                        break
                    got.append(v)
            assert got == [value]
            assert p.pending_bytes == 0


def test_blank_line_then_inline():
    p = RespParser()
    p.feed(b"\r\nPING\r\n")
    ok, got = p.parse()
    assert ok and got == [b"PING"]


def test_bare_cr_inside_inline_is_an_error():
    p = RespParser()
    p.feed(b"\rX")
    with pytest.raises(ProtocolError):
        p.parse()


def test_half_crlf_waits_for_more():
    p = RespParser()
    p.feed(b"\r")
    ok, _ = p.parse()
    assert not ok                # could be the first half of a CRLF
    p.feed(b"\n+OK\r\n")
    ok, got = p.parse()
    assert ok and got == "OK"


# -- malformed input -------------------------------------------------------

@pytest.mark.parametrize("raw", [
    b":notanint\r\n",
    b"$x\r\n",
    b"$-2\r\n",
    b"*-2\r\n",
    b"*x\r\n",
    b"$3\r\nabcXY",               # bulk body not CRLF-terminated
], ids=repr)
def test_malformed_frames_raise(raw):
    p = RespParser()
    p.feed(raw)
    with pytest.raises(ProtocolError):
        p.parse()


def test_trailing_bytes_rejected_by_decode():
    with pytest.raises(ProtocolError):
        decode(encode(1) + b"x")


# -- command mapping -------------------------------------------------------

OPS = [
    ClientOp("SET", b"k", b"v"),
    ClientOp("SET", b"k", b"\r\n" * 8),
    ClientOp("SET", b"k", b"v", ttl=0.25),
    ClientOp("GET", b"key"),
    ClientOp("DEL", b"key"),
]


@pytest.mark.parametrize("op", OPS, ids=lambda o: o.op)
def test_command_round_trip(op):
    got = decode_command(encode_command(op))
    assert got.op == op.op and got.key == op.key
    assert got.value == op.value
    if op.ttl is None:
        assert got.ttl is None
    else:
        assert got.ttl == pytest.approx(op.ttl, abs=1e-3)


@pytest.mark.parametrize("op", OPS, ids=lambda o: o.op)
def test_command_streams_at_every_split(op):
    data = encode_command(op)
    for head, tail in _pairwise_splits(data):
        p = RespParser()
        p.feed(head)
        p.feed(tail)
        ok, frame = p.parse()
        assert ok
        assert op_from_command(frame).key == op.key


def test_inline_maps_to_op():
    p = RespParser()
    p.feed(b"SET k v\r\n")
    ok, frame = p.parse()
    assert ok
    op = op_from_command(frame)
    assert (op.op, op.key, op.value) == ("SET", b"k", b"v")


def test_ex_flag_seconds():
    op = op_from_command([b"SET", b"k", b"v", b"EX", b"2"])
    assert op.ttl == 2.0


@pytest.mark.parametrize("bad", [
    [],
    [b"GET"],
    [b"GET", b"a", b"b"],
    [b"SET", b"k"],
    [b"SET", b"k", b"v", b"XX"],
    [b"FLUSHALL"],
    b"not-a-list",
], ids=repr)
def test_unsupported_commands_raise(bad):
    with pytest.raises(ProtocolError):
        op_from_command(bad)
