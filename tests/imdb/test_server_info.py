"""Server INFO surface tests."""

import math

from repro import SystemConfig, build_slimio
from repro.flash import FlashGeometry, FtlConfig, NandTiming
from repro.imdb import ClientOp
from repro.persist import SnapshotKind

CFG = SystemConfig(
    geometry=FlashGeometry(channels=1, dies_per_channel=2, blocks_per_die=48,
                           pages_per_block=16),
    nand=NandTiming(page_read=2e-6, page_program=5e-6, block_erase=20e-6,
                    channel_transfer=0.0),
    ftl=FtlConfig(op_ratio=0.2, gc_trigger_segments=3, gc_stop_segments=4,
                  gc_reserve_segments=2),
    wal_flush_interval=0.01,
)


def test_info_reflects_activity():
    system = build_slimio(config=CFG)
    env = system.env

    def proc():
        for i in range(25):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % i, b"v" * 600))
        yield from system.server.execute(ClientOp("GET", b"k0"))

    env.run(until=env.process(proc()))
    info = system.server.info()
    assert info["keys"] == 25
    assert info["used_memory"] > 25 * 600
    assert info["total_commands_processed"] == 26
    assert info["instantaneous_ops"] > 0
    assert not math.isnan(info["set_p999"])
    assert info["snapshot_in_progress"] == 0.0
    assert info["wal_bytes"] > 0
    system.stop()


def test_info_during_snapshot():
    system = build_slimio(config=CFG)
    env = system.env

    def proc():
        for i in range(20):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % i, b"v" * 3000))
        p = system.server.start_snapshot(SnapshotKind.ON_DEMAND)
        assert system.server.info()["snapshot_in_progress"] == 1.0
        # overwrite during the snapshot: CoW counters move
        for i in range(20):
            yield from system.server.execute(
                ClientOp("SET", b"k%d" % i, b"w" * 3000))
        yield p

    env.run(until=env.process(proc()))
    info = system.server.info()
    assert info["snapshots_completed"] == 1
    assert info["cow_copied_pages"] > 0
    assert info["cow_faults"] > 0
    assert info["snapshot_in_progress"] == 0.0
    system.stop()


def test_info_without_wal():
    from repro.imdb import KVStore, Server
    from repro.sim import Environment

    env = Environment()
    server = Server(env, KVStore(), None, None)
    info = server.info()
    assert "wal_bytes" not in info
    assert info["keys"] == 0
