"""KVStore tests: semantics, memory accounting, page map."""

import pytest

from repro.imdb import KVStore


def test_set_get_delete():
    s = KVStore()
    s.set(b"k", b"v")
    assert s.get(b"k") == b"v"
    assert b"k" in s
    assert len(s) == 1
    assert s.delete(b"k")
    assert s.get(b"k") is None
    assert not s.delete(b"k")


def test_overwrite_updates_value():
    s = KVStore()
    s.set(b"k", b"old")
    s.set(b"k", b"new")
    assert s.get(b"k") == b"new"
    assert len(s) == 1


def test_type_checking():
    s = KVStore()
    with pytest.raises(TypeError):
        s.set("str", b"v")
    with pytest.raises(TypeError):
        s.set(b"k", "str")


def test_memory_accounting():
    s = KVStore(entry_overhead=64)
    s.set(b"key", b"x" * 100)
    assert s.used_bytes == 3 + 100 + 64
    s.set(b"key", b"x" * 10)
    assert s.used_bytes == 3 + 10 + 64
    s.delete(b"key")
    assert s.used_bytes == 0


def test_page_assignment_contiguous():
    s = KVStore(page_size=4096)
    first, n = s.set(b"a", b"v" * 5000)  # ~5KB + overhead -> 2 pages
    assert (first, n) == (0, 2)
    first2, n2 = s.set(b"b", b"v" * 100)
    assert first2 == 2  # bump allocated after the first entry


def test_overwrite_in_place_when_fits():
    s = KVStore(page_size=4096)
    p1 = s.set(b"k", b"v" * 3000)
    p2 = s.set(b"k", b"v" * 1000)  # fits the old footprint
    assert p1 == p2


def test_overwrite_relocates_when_grows():
    s = KVStore(page_size=4096)
    p1 = s.set(b"k", b"v" * 100)
    p2 = s.set(b"k", b"v" * 9000)
    assert p2[0] > p1[0]
    assert p2[1] > p1[1]


def test_heap_pages_monotonic():
    s = KVStore(page_size=4096)
    s.set(b"a", b"v" * 100)
    h1 = s.heap_pages
    s.set(b"b", b"v" * 100)
    assert s.heap_pages > h1


def test_snapshot_items_frozen():
    s = KVStore()
    s.set(b"a", b"1")
    frozen = s.snapshot_items()
    s.set(b"a", b"2")
    assert dict(frozen) == {b"a": b"1"}


def test_load_replaces_contents():
    s = KVStore()
    s.set(b"old", b"x")
    s.load({b"new": b"y"})
    assert s.as_dict() == {b"new": b"y"}
    assert s.get(b"old") is None
    assert s.used_bytes > 0


def test_pages_of_missing_key():
    assert KVStore().pages_of(b"ghost") is None


def test_invalid_page_size():
    with pytest.raises(ValueError):
        KVStore(page_size=0)
