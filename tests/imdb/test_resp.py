"""RESP codec tests (unit + property)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.imdb import ClientOp
from repro.imdb.resp import (
    ProtocolError,
    RespError,
    RespParser,
    decode,
    decode_command,
    encode,
    encode_command,
)


# ------------------------------------------------------------------ encode
def test_encode_scalar_types():
    assert encode("OK") == b"+OK\r\n"
    assert encode(RespError("ERR nope")) == b"-ERR nope\r\n"
    assert encode(42) == b":42\r\n"
    assert encode(-7) == b":-7\r\n"
    assert encode(b"hi") == b"$2\r\nhi\r\n"
    assert encode(b"") == b"$0\r\n\r\n"
    assert encode(None) == b"$-1\r\n"


def test_encode_array():
    assert encode([b"a", 1, None]) == b"*3\r\n$1\r\na\r\n:1\r\n$-1\r\n"
    assert encode([]) == b"*0\r\n"


def test_encode_rejections():
    with pytest.raises(ProtocolError):
        encode("has\r\nnewline")
    with pytest.raises(ProtocolError):
        encode(RespError("bad\nmsg"))
    with pytest.raises(ProtocolError):
        encode(True)
    with pytest.raises(ProtocolError):
        encode(3.14)


# ------------------------------------------------------------------ decode
def test_decode_roundtrip_basics():
    for v in ("PONG", 0, 123, b"binary\x00bytes", None,
              [b"nested", [1, 2], None], RespError("ERR x")):
        assert decode(encode(v)) == v


def test_decode_null_array():
    assert decode(b"*-1\r\n") is None


def test_decode_incomplete_raises():
    with pytest.raises(ProtocolError, match="incomplete"):
        decode(b"$5\r\nhel")
    with pytest.raises(ProtocolError, match="trailing"):
        decode(b":1\r\n:2\r\n")


def test_decode_malformed():
    with pytest.raises(ProtocolError):
        decode(b":notanum\r\n")
    with pytest.raises(ProtocolError):
        decode(b"$-5\r\n")
    with pytest.raises(ProtocolError):
        decode(b"$3\r\nhelloXX\r\n")  # wrong terminator position


def test_inline_command():
    assert decode(b"PING\r\n") == [b"PING"]
    assert decode(b"SET k v\r\n") == [b"SET", b"k", b"v"]


# ------------------------------------------------------------------ streaming
def test_parser_handles_partial_feeds():
    p = RespParser()
    payload = encode([b"SET", b"key", b"value" * 100])
    for i in range(0, len(payload), 7):
        ok, _ = p.parse()
        assert not ok or i >= len(payload)
        p.feed(payload[i:i + 7])
    ok, value = p.parse()
    assert ok
    assert value == [b"SET", b"key", b"value" * 100]
    assert p.pending_bytes == 0


def test_parser_pops_multiple_values():
    p = RespParser()
    p.feed(encode(1) + encode(2) + encode(b"x"))
    got = []
    while True:
        ok, v = p.parse()
        if not ok:
            break
        got.append(v)
    assert got == [1, 2, b"x"]


# ------------------------------------------------------------------ commands
def test_command_roundtrip():
    for op in (ClientOp("SET", b"k", b"v"),
               ClientOp("SET", b"k", b"v", ttl=2.5),
               ClientOp("GET", b"k"),
               ClientOp("DEL", b"k")):
        back = decode_command(encode_command(op))
        assert back.op == op.op and back.key == op.key
        assert back.value == op.value
        if op.ttl is None:
            assert back.ttl is None
        else:
            assert back.ttl == pytest.approx(op.ttl, abs=1e-3)


def test_decode_command_ex_flag():
    op = decode_command(encode([b"SET", b"k", b"v", b"EX", b"10"]))
    assert op.ttl == 10.0


def test_decode_command_rejections():
    with pytest.raises(ProtocolError):
        decode_command(encode([b"FLUSHALL"]))
    with pytest.raises(ProtocolError):
        decode_command(encode([b"SET", b"k", b"v", b"NX"]))
    with pytest.raises(ProtocolError):
        decode_command(encode(b"notanarray"))


# ------------------------------------------------------------------ properties
resp_values = st.recursive(
    st.one_of(
        st.none(),
        st.integers(min_value=-(2**63), max_value=2**63 - 1),
        st.binary(max_size=200),
        st.text(alphabet=st.characters(blacklist_characters="\r\n",
                                       min_codepoint=32, max_codepoint=126),
                max_size=50),
        st.builds(RespError,
                  st.text(alphabet=st.characters(
                      blacklist_characters="\r\n",
                      min_codepoint=32, max_codepoint=126), max_size=50)),
    ),
    lambda children: st.lists(children, max_size=5),
    max_leaves=25,
)


@given(resp_values)
@settings(max_examples=150, deadline=None)
def test_property_roundtrip(value):
    assert decode(encode(value)) == value


@given(resp_values, st.integers(min_value=1, max_value=13))
@settings(max_examples=60, deadline=None)
def test_property_roundtrip_chunked(value, chunk):
    wire = encode(value)
    p = RespParser()
    result = None
    done = False
    for i in range(0, len(wire), chunk):
        p.feed(wire[i:i + chunk])
        ok, v = p.parse()
        if ok:
            assert not done, "value completed twice"
            result, done = v, True
    if not done:
        ok, result = p.parse()
        assert ok
    assert result == value


@given(st.binary(min_size=0, max_size=64),
       st.binary(min_size=0, max_size=256))
@settings(max_examples=80, deadline=None)
def test_property_set_command_roundtrip(key, value):
    op = ClientOp("SET", key, value)
    assert decode_command(encode_command(op)) == op
